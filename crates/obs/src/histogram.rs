//! Log-linear latency histogram.
//!
//! Values (u64, conventionally nanoseconds) land in buckets that are
//! exact up to 15 and then log-linear: 16 sub-buckets per power of two,
//! HDR-histogram style. Bucket width at value `v` is `2^(msb(v)-4)`, so
//! a quantile estimate (bucket midpoint) is off by at most half a bucket
//! width: a **relative error ≤ 1/32 (3.125%)**, which the unit tests
//! assert. Recording is two relaxed atomic adds plus two atomic
//! min/max — no locks, safe to hammer from any number of threads.

use std::sync::atomic::{AtomicU64, Ordering};

const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS; // 16 sub-buckets per octave
const OCTAVES: usize = (u64::BITS - SUB_BITS) as usize; // 60
pub(crate) const BUCKETS: usize = SUB as usize + OCTAVES * SUB as usize; // 976

/// Guaranteed bound on the relative error of quantile estimates.
pub const QUANTILE_RELATIVE_ERROR: f64 = 1.0 / 32.0;

/// Map a value to its bucket index.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
    SUB as usize + octave * SUB as usize + sub
}

/// The inclusive lower bound of a bucket.
pub(crate) fn bucket_lower(b: usize) -> u64 {
    if b < SUB as usize {
        return b as u64;
    }
    let octave = (b - SUB as usize) / SUB as usize;
    let sub = ((b - SUB as usize) % SUB as usize) as u64;
    (SUB + sub) << octave
}

/// The representative (midpoint) value reported for a bucket.
pub(crate) fn bucket_mid(b: usize) -> u64 {
    if b < SUB as usize {
        return b as u64;
    }
    let octave = (b - SUB as usize) / SUB as usize;
    let width = 1u64 << octave;
    bucket_lower(b) + width / 2
}

/// A concurrent log-linear histogram.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the array through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = v
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("BUCKETS-sized vec"));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Lock-free.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record an elapsed [`std::time::Duration`] in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimate quantile `q` in [0, 1]. Returns 0 for an empty histogram.
    /// The estimate is the midpoint of the bucket holding the target
    /// rank, with relative error ≤ [`QUANTILE_RELATIVE_ERROR`].
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, slot) in self.buckets.iter().enumerate() {
            seen += slot.load(Ordering::Relaxed);
            if seen >= target {
                // Clamp the midpoint into the observed min..max range so
                // single-value histograms report that exact value.
                let mid = bucket_mid(b);
                let lo = self.min.load(Ordering::Relaxed);
                let hi = self.max.load(Ordering::Relaxed);
                return mid.clamp(lo, hi);
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count();
        let sum = self.sum();
        HistogramSnapshot {
            name: name.to_owned(),
            count,
            sum,
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Zero every cell (test/bench support; racing recorders may leave
    /// a partially applied record behind).
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_mid(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_round_trip() {
        // Every bucket's lower bound must map back into that bucket, and
        // the bucket below must end just under it.
        for b in 0..BUCKETS {
            let lo = bucket_lower(b);
            assert_eq!(bucket_index(lo), b, "lower bound of bucket {b}");
            if lo > 0 {
                assert_eq!(bucket_index(lo - 1), b - 1, "predecessor of bucket {b}");
            }
        }
        // Spot-check the log-linear transition.
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32); // first 2-wide bucket
        assert_eq!(bucket_index(33), 32);
        assert_eq!(bucket_index(34), 33);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantile_error_is_bounded() {
        // Uniform-ish values across several octaves: the estimate of any
        // quantile must be within the documented relative error of the
        // true order statistic.
        let h = Histogram::new();
        let values: Vec<u64> = (0..10_000u64).map(|i| 100 + i * 37).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort();
        for q in [0.01, 0.25, 0.50, 0.90, 0.95, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1] as f64;
            let est = h.quantile(q) as f64;
            let rel = (est - truth).abs() / truth;
            assert!(
                rel <= QUANTILE_RELATIVE_ERROR,
                "q={q}: est {est} vs truth {truth} (rel {rel:.4})"
            );
        }
    }

    #[test]
    fn single_value_reports_exactly() {
        let h = Histogram::new();
        h.record(1_000_003);
        assert_eq!(h.quantile(0.5), 1_000_003);
        assert_eq!(h.quantile(0.99), 1_000_003);
        let s = h.snapshot("x");
        assert_eq!((s.count, s.min, s.max), (1, 1_000_003, 1_000_003));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 25_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(1 + (t * per_thread + i) % 10_000);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.count(), threads * per_thread);
        let bucket_total: u64 = h
            .buckets
            .iter()
            .map(|b| b.load(std::sync::atomic::Ordering::Relaxed))
            .sum();
        assert_eq!(bucket_total, threads * per_thread);
        assert!(h.quantile(0.5) > 0);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let h = Histogram::new();
        let s = h.snapshot("empty");
        assert_eq!((s.count, s.min, s.max, s.p99), (0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }
}
