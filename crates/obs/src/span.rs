//! Lightweight timing spans.
//!
//! A [`Span`] measures wall-clock time from `enter` to drop and records
//! it into a histogram. When collection is disabled ([`crate::enabled`]
//! is false) `Span::enter` returns an inert value without reading the
//! clock, so leaving instrumentation in place costs one relaxed atomic
//! load per call site.

use std::sync::Arc;
use std::time::Instant;

use crate::histogram::Histogram;
use crate::registry::{enabled, Registry};

/// An in-flight timed section. Records elapsed nanoseconds on drop.
#[must_use = "a span records when dropped; binding it to _ drops immediately"]
pub struct Span {
    // None when collection is disabled: no clock read, no record.
    active: Option<(Instant, Arc<Histogram>)>,
}

impl Span {
    /// Start a span against a named histogram in the global registry.
    /// Resolves the handle through the registry lock — for hot loops
    /// prefer [`Span::with`] with a pre-resolved handle.
    pub fn enter(name: &str) -> Span {
        if !enabled() {
            return Span { active: None };
        }
        Span::with(Registry::global().histogram(name))
    }

    /// Start a span against a pre-resolved histogram handle. Still
    /// no-ops when collection is disabled.
    pub fn with(hist: Arc<Histogram>) -> Span {
        if !enabled() {
            return Span { active: None };
        }
        Span {
            active: Some((Instant::now(), hist)),
        }
    }

    /// A span that never records, regardless of the enable flag.
    pub fn noop() -> Span {
        Span { active: None }
    }

    /// Elapsed time so far, if the span is live.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.active
            .as_ref()
            .map(|(t, _)| t.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }

    /// Finish explicitly (equivalent to dropping).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.active.take() {
            hist.record_duration(start.elapsed());
        }
    }
}

/// Time a closure against a named histogram, returning its result.
pub fn timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let _span = Span::enter(name);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{disable, enable};

    #[test]
    fn span_records_into_histogram() {
        enable();
        let hist = Registry::global().histogram("test.span.records");
        let before = hist.count();
        {
            let _s = Span::with(Arc::clone(&hist));
            std::hint::black_box(1 + 1);
        }
        assert_eq!(hist.count(), before + 1);
    }

    #[test]
    fn disabled_span_is_inert() {
        // Use a private registry-free check: a noop span never records.
        let hist = Arc::new(Histogram::new());
        disable();
        {
            let s = Span::with(Arc::clone(&hist));
            assert!(s.elapsed_ns().is_none());
        }
        assert_eq!(hist.count(), 0);
        enable();
    }

    #[test]
    fn timed_returns_value() {
        enable();
        let v = timed("test.span.timed", || 42);
        assert_eq!(v, 42);
        assert!(Registry::global().histogram("test.span.timed").count() >= 1);
    }
}
