//! Hierarchical tracing into an always-on flight recorder.
//!
//! Where [`crate::Span`] aggregates durations into histograms, a
//! [`TraceSpan`] records an *individual* timed section — with a trace
//! id, a span id, a parent link, key-value attributes, and point
//! events — into a process-wide bounded ring buffer (the
//! [`FlightRecorder`]). The ring is lock-free on the happy path: a
//! writer reserves a slot with one `fetch_add` and takes a per-slot
//! `try_lock`; if the slot is contended the record is dropped and a
//! counter bumped, so recording never blocks an executor thread.
//!
//! Tracing has its own gate ([`enabled`]), separate from the metrics
//! gate, and is **off by default**: a disabled `TraceSpan` constructor
//! does one relaxed load and returns an inert guard — no clock read,
//! no allocation. Parenting is implicit through a thread-local span
//! stack; crossing threads (parallel partitions) is explicit via
//! [`TraceSpan::child_of`] with a captured [`SpanContext`].
//!
//! Two exporters ship with the recorder:
//!
//! * [`export_chrome_trace`] renders records as Chrome trace-event
//!   JSON (load in Perfetto / `chrome://tracing`);
//! * a slow-request log ([`capture_slow_query`], [`slow_queries`])
//!   keeps the plan fingerprint and full EXPLAIN ANALYZE tree of any
//!   request over [`set_slow_query_threshold`].
//!
//! ```
//! cr_obs::trace::enable();
//! {
//!     let mut root = cr_obs::trace::TraceSpan::root("request");
//!     root.attr("user", "alice");
//!     let _child = cr_obs::trace::TraceSpan::child("scan");
//! }
//! let spans = cr_obs::trace::recorder().snapshot();
//! assert!(spans.iter().any(|s| s.name == "scan" && s.parent.is_some()));
//! cr_obs::trace::disable();
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::histogram::Histogram;

// ---------------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------------

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Is tracing on? One relaxed load — safe on any hot path.
#[inline]
pub fn enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turn span recording on.
pub fn enable() {
    TRACE_ENABLED.store(true, Ordering::Relaxed);
}

/// Turn span recording off. In-flight spans still record on drop.
pub fn disable() {
    TRACE_ENABLED.store(false, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Ids and clock
// ---------------------------------------------------------------------------

/// Identifies one causally-linked tree of spans (one request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifies one span within the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// A span's coordinates, cheap to copy across threads so workers can
/// attach children to a parent on another thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    pub trace: TraceId,
    pub span: SpanId,
}

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

fn next_trace_id() -> TraceId {
    TraceId(NEXT_TRACE.fetch_add(1, Ordering::Relaxed))
}

fn next_span_id() -> SpanId {
    SpanId(NEXT_SPAN.fetch_add(1, Ordering::Relaxed))
}

/// Reset the trace/span id counters to 1 (deterministic tests only;
/// racing with live spans makes ids collide).
pub fn reset_ids() {
    NEXT_TRACE.store(1, Ordering::Relaxed);
    NEXT_SPAN.store(1, Ordering::Relaxed);
}

static MANUAL_MODE: AtomicBool = AtomicBool::new(false);
static MANUAL_NOW: AtomicU64 = AtomicU64::new(0);

/// Switch the trace clock between wall time and a manual counter that
/// only moves via [`advance_manual_clock`] (deterministic tests).
/// Entering manual mode resets the manual clock to zero.
pub fn set_manual_clock(on: bool) {
    MANUAL_NOW.store(0, Ordering::Relaxed);
    MANUAL_MODE.store(on, Ordering::Relaxed);
}

/// Advance the manual trace clock by `ns` (no-op in wall-clock mode).
pub fn advance_manual_clock(ns: u64) {
    MANUAL_NOW.fetch_add(ns, Ordering::Relaxed);
}

/// Nanoseconds on the trace clock: wall time since the first call, or
/// the manual counter when [`set_manual_clock`] is on.
pub fn now_ns() -> u64 {
    if MANUAL_MODE.load(Ordering::Relaxed) {
        return MANUAL_NOW.load(Ordering::Relaxed);
    }
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

static NEXT_THREAD: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD_ORDINAL: u32 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<SpanContext>> = const { RefCell::new(Vec::new()) };
}

fn thread_ordinal() -> u32 {
    THREAD_ORDINAL.with(|t| *t)
}

/// The innermost live span on this thread, if any — capture it before
/// spawning workers and hand it to [`TraceSpan::child_of`].
pub fn current_context() -> Option<SpanContext> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

// ---------------------------------------------------------------------------
// Records and the ring
// ---------------------------------------------------------------------------

/// One finished span as stored in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Monotone sequence number (ring position; survives wraparound).
    pub seq: u64,
    pub trace: TraceId,
    pub span: SpanId,
    pub parent: Option<SpanId>,
    pub name: String,
    /// Small per-process thread ordinal (not the OS tid).
    pub thread: u32,
    /// Start on the trace clock ([`now_ns`]).
    pub start_ns: u64,
    pub dur_ns: u64,
    pub attrs: Vec<(&'static str, String)>,
    /// `(timestamp_ns, message)` point events inside the span.
    pub events: Vec<(u64, String)>,
}

/// Default ring capacity: 8192 spans ≈ the last few hundred requests
/// at ~20 spans each, in ~2 MiB.
pub const DEFAULT_CAPACITY: usize = 8192;

/// A bounded ring of the most recent [`SpanRecord`]s. Writers reserve
/// a slot with one `fetch_add` then `try_lock` only that slot; a
/// contended slot drops the record (counted) rather than blocking.
pub struct FlightRecorder {
    slots: Box<[Mutex<Option<SpanRecord>>]>,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` spans (min 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let n = capacity.max(1);
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || Mutex::new(None));
        FlightRecorder {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans ever recorded (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans lost to slot contention (writer met a locked slot).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Store a finished span. Lock-free slot reservation; never blocks.
    pub fn record(&self, mut rec: SpanRecord) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut guard) => {
                rec.seq = seq;
                *guard = Some(rec);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The retained spans, oldest first. Takes each slot lock briefly;
    /// meant for exporters and system tables, not hot paths.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|slot| {
                slot.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .clone()
            })
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Empty the ring and zero the counters (tests, `crtrace --fresh`).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            *slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) = None;
        }
        self.head.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// The process-wide flight recorder ([`DEFAULT_CAPACITY`] slots).
pub fn recorder() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::with_capacity(DEFAULT_CAPACITY))
}

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

struct LiveSpan {
    ctx: SpanContext,
    parent: Option<SpanId>,
    name: String,
    start_ns: u64,
    attrs: Vec<(&'static str, String)>,
    events: Vec<(u64, String)>,
    hist: Option<Arc<Histogram>>,
}

/// An in-flight traced section. Records a [`SpanRecord`] into the
/// global [`recorder`] on drop; inert (no clock, no allocation) when
/// tracing is disabled.
#[must_use = "a trace span records when dropped; binding it to _ drops immediately"]
pub struct TraceSpan {
    live: Option<LiveSpan>,
}

impl TraceSpan {
    fn start(trace: TraceId, parent: Option<SpanId>, name: &str) -> TraceSpan {
        let ctx = SpanContext {
            trace,
            span: next_span_id(),
        };
        SPAN_STACK.with(|s| s.borrow_mut().push(ctx));
        TraceSpan {
            live: Some(LiveSpan {
                ctx,
                parent,
                name: name.to_owned(),
                start_ns: now_ns(),
                attrs: Vec::new(),
                events: Vec::new(),
                hist: None,
            }),
        }
    }

    /// Open a root span: a fresh trace with no parent.
    pub fn root(name: &str) -> TraceSpan {
        if !enabled() {
            return TraceSpan { live: None };
        }
        TraceSpan::start(next_trace_id(), None, name)
    }

    /// Open a child of the innermost live span on this thread, or a
    /// fresh root when the stack is empty.
    pub fn child(name: &str) -> TraceSpan {
        if !enabled() {
            return TraceSpan { live: None };
        }
        match current_context() {
            Some(parent) => TraceSpan::start(parent.trace, Some(parent.span), name),
            None => TraceSpan::start(next_trace_id(), None, name),
        }
    }

    /// Open a child of an explicit parent context — the cross-thread
    /// link for parallel partitions. Also anchors this thread's stack
    /// so further [`TraceSpan::child`] calls nest under it.
    pub fn child_of(parent: SpanContext, name: &str) -> TraceSpan {
        if !enabled() {
            return TraceSpan { live: None };
        }
        TraceSpan::start(parent.trace, Some(parent.span), name)
    }

    /// A span that never records, regardless of the enable flag.
    pub fn noop() -> TraceSpan {
        TraceSpan { live: None }
    }

    /// Is this span actually recording?
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }

    /// This span's coordinates (to hand to [`TraceSpan::child_of`]).
    pub fn context(&self) -> Option<SpanContext> {
        self.live.as_ref().map(|l| l.ctx)
    }

    /// Rename the span — for sites where the precise operator name is
    /// only known after work started.
    pub fn set_name(&mut self, name: &str) {
        if let Some(l) = self.live.as_mut() {
            l.name.clear();
            l.name.push_str(name);
        }
    }

    /// Attach a key-value attribute.
    pub fn attr(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(l) = self.live.as_mut() {
            l.attrs.push((key, value.into()));
        }
    }

    /// Record a timestamped point event inside the span.
    pub fn event(&mut self, message: impl Into<String>) {
        if let Some(l) = self.live.as_mut() {
            l.events.push((now_ns(), message.into()));
        }
    }

    /// Also record the span's duration into a pre-resolved histogram
    /// on drop (one span, both systems).
    pub fn with_histogram(mut self, hist: Arc<Histogram>) -> TraceSpan {
        if let Some(l) = self.live.as_mut() {
            l.hist = Some(hist);
        }
        self
    }

    /// Elapsed trace-clock nanoseconds so far, if live.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.live
            .as_ref()
            .map(|l| now_ns().saturating_sub(l.start_ns))
    }

    /// Finish explicitly (equivalent to dropping).
    pub fn finish(self) {}
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur_ns = now_ns().saturating_sub(live.start_ns);
        // Spans are scope guards, so per-thread lifetimes are LIFO;
        // still, only pop if the top really is us (a mem::forget'd
        // child must not make us pop someone else's frame).
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&live.ctx) {
                stack.pop();
            }
        });
        if let Some(h) = &live.hist {
            h.record(dur_ns);
        }
        recorder().record(SpanRecord {
            seq: 0, // assigned by the ring
            trace: live.ctx.trace,
            span: live.ctx.span,
            parent: live.parent,
            name: live.name,
            thread: thread_ordinal(),
            start_ns: live.start_ns,
            dur_ns,
            attrs: live.attrs,
            events: live.events,
        });
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Nanoseconds as the microsecond float Chrome expects, exact to 1ns.
fn ns_to_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Render span records as Chrome trace-event JSON (complete "X"
/// events) — loadable in Perfetto or `chrome://tracing`. Trace, span,
/// and parent ids plus attributes ride along in `args`.
pub fn export_chrome_trace(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 160 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        json_escape(&r.name, &mut out);
        out.push_str("\",\"cat\":\"cr\",\"ph\":\"X\",\"ts\":");
        out.push_str(&ns_to_us(r.start_ns));
        out.push_str(",\"dur\":");
        out.push_str(&ns_to_us(r.dur_ns));
        out.push_str(&format!(",\"pid\":1,\"tid\":{}", r.thread));
        out.push_str(&format!(
            ",\"args\":{{\"trace_id\":{},\"span_id\":{}",
            r.trace.0, r.span.0
        ));
        if let Some(parent) = r.parent {
            out.push_str(&format!(",\"parent_id\":{}", parent.0));
        }
        for (k, v) in &r.attrs {
            out.push_str(",\"");
            json_escape(k, &mut out);
            out.push_str("\":\"");
            json_escape(v, &mut out);
            out.push('"');
        }
        for (j, (ts, msg)) in r.events.iter().enumerate() {
            out.push_str(&format!(",\"event.{j}\":\""));
            json_escape(&format!("@{} {}", ns_to_us(*ts), msg), &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// Slow-request log
// ---------------------------------------------------------------------------

/// A captured slow request: who it was, how slow, and the full
/// EXPLAIN ANALYZE tree that explains why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Monotone capture sequence (later = more recent).
    pub seq: u64,
    /// The trace the request ran under, if tracing was on.
    pub trace: Option<TraceId>,
    /// The logical plan fingerprint ([`u64`], shape-stable).
    pub fingerprint: u64,
    /// Human label for the entry point (e.g. `relation.query`).
    pub label: String,
    pub total_ns: u64,
    /// The threshold in force when this was captured.
    pub threshold_ns: u64,
    /// Rendered operator tree with timings (EXPLAIN ANALYZE).
    pub tree: String,
}

/// Keep the most recent 128 slow requests.
const SLOW_LOG_CAPACITY: usize = 128;

// u64::MAX means "no threshold": nothing is captured.
static SLOW_THRESHOLD_NS: AtomicU64 = AtomicU64::new(u64::MAX);
static SLOW_SEQ: AtomicU64 = AtomicU64::new(0);

fn slow_log() -> &'static Mutex<VecDeque<SlowQuery>> {
    static LOG: OnceLock<Mutex<VecDeque<SlowQuery>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(VecDeque::with_capacity(SLOW_LOG_CAPACITY)))
}

/// Capture requests slower than `threshold` (`None` turns capture
/// off). `Some(Duration::ZERO)` captures everything — handy in tests.
pub fn set_slow_query_threshold(threshold: Option<Duration>) {
    let ns = threshold.map_or(u64::MAX, |d| {
        d.as_nanos().min((u64::MAX - 1) as u128) as u64
    });
    SLOW_THRESHOLD_NS.store(ns, Ordering::Relaxed);
}

/// The active capture threshold in nanoseconds, if capture is on.
/// One relaxed load — callers check this before rendering any tree.
#[inline]
pub fn slow_query_threshold_ns() -> Option<u64> {
    match SLOW_THRESHOLD_NS.load(Ordering::Relaxed) {
        u64::MAX => None,
        ns => Some(ns),
    }
}

/// Append a slow-request entry (callers have already checked the
/// threshold and rendered `tree`). Oldest entries fall off past the
/// log capacity.
pub fn capture_slow_query(label: &str, fingerprint: u64, total_ns: u64, tree: String) {
    let Some(threshold_ns) = slow_query_threshold_ns() else {
        return;
    };
    let entry = SlowQuery {
        seq: SLOW_SEQ.fetch_add(1, Ordering::Relaxed),
        trace: current_context().map(|c| c.trace),
        fingerprint,
        label: label.to_owned(),
        total_ns,
        threshold_ns,
        tree,
    };
    let mut log = slow_log()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if log.len() == SLOW_LOG_CAPACITY {
        log.pop_front();
    }
    log.push_back(entry);
}

/// The retained slow requests, oldest first.
pub fn slow_queries() -> Vec<SlowQuery> {
    slow_log()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .iter()
        .cloned()
        .collect()
}

/// Empty the slow-request log (tests, `crtrace --fresh`).
pub fn clear_slow_queries() {
    slow_log()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state (gate, ring, id counters) is process-global; tests
    // that touch it serialize on this lock and filter by their own
    // trace ids where possible.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = guard();
        disable();
        let before = recorder().recorded();
        {
            let s = TraceSpan::root("inert");
            assert!(!s.is_recording());
            assert!(s.context().is_none());
            assert!(s.elapsed_ns().is_none());
        }
        assert_eq!(recorder().recorded(), before);
    }

    #[test]
    fn nesting_links_parent_and_trace() {
        let _g = guard();
        enable();
        let root_ctx;
        {
            let root = TraceSpan::root("outer");
            root_ctx = root.context().expect("recording");
            {
                let inner = TraceSpan::child("inner");
                let ictx = inner.context().expect("recording");
                assert_eq!(ictx.trace, root_ctx.trace);
            }
            // Stack popped: a new child hangs off the root again.
            assert_eq!(current_context(), Some(root_ctx));
        }
        assert_eq!(current_context(), None);
        let spans = recorder().snapshot();
        let inner = spans
            .iter()
            .find(|s| s.trace == root_ctx.trace && s.name == "inner")
            .expect("inner recorded");
        assert_eq!(inner.parent, Some(root_ctx.span));
        let outer = spans
            .iter()
            .find(|s| s.trace == root_ctx.trace && s.name == "outer")
            .expect("outer recorded");
        assert_eq!(outer.parent, None);
        disable();
    }

    #[test]
    fn child_of_links_across_contexts() {
        let _g = guard();
        enable();
        let parent = TraceSpan::root("parent");
        let ctx = parent.context().expect("recording");
        let worker = std::thread::spawn(move || {
            let child = TraceSpan::child_of(ctx, "worker");
            child.context().expect("recording")
        });
        let child_ctx = worker.join().expect("worker thread");
        assert_eq!(child_ctx.trace, ctx.trace);
        drop(parent);
        let spans = recorder().snapshot();
        let child = spans
            .iter()
            .find(|s| s.span == child_ctx.span)
            .expect("child recorded");
        assert_eq!(child.parent, Some(ctx.span));
        disable();
    }

    #[test]
    fn ring_wraps_and_keeps_latest() {
        let ring = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            ring.record(SpanRecord {
                seq: 0,
                trace: TraceId(1),
                span: SpanId(i + 1),
                parent: None,
                name: format!("s{i}"),
                thread: 1,
                start_ns: i,
                dur_ns: 1,
                attrs: Vec::new(),
                events: Vec::new(),
            });
        }
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 0);
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(
            spans.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        ring.clear();
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.recorded(), 0);
    }

    #[test]
    fn manual_clock_drives_durations() {
        let _g = guard();
        enable();
        set_manual_clock(true);
        let ctx;
        {
            let mut s = TraceSpan::root("timed");
            ctx = s.context().expect("recording");
            advance_manual_clock(250);
            s.event("halfway");
            advance_manual_clock(250);
        }
        set_manual_clock(false);
        let spans = recorder().snapshot();
        let rec = spans.iter().find(|r| r.span == ctx.span).expect("recorded");
        assert_eq!(rec.dur_ns, 500);
        assert_eq!(rec.events, vec![(250, "halfway".to_owned())]);
        disable();
    }

    #[test]
    fn chrome_export_escapes_and_links() {
        let records = vec![SpanRecord {
            seq: 0,
            trace: TraceId(7),
            span: SpanId(9),
            parent: Some(SpanId(8)),
            name: "say \"hi\"".to_owned(),
            thread: 3,
            start_ns: 1500,
            dur_ns: 2001,
            attrs: vec![("rows", "10".to_owned())],
            events: Vec::new(),
        }];
        let json = export_chrome_trace(&records);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"say \\\"hi\\\"\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.001"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"trace_id\":7,\"span_id\":9,\"parent_id\":8"));
        assert!(json.contains("\"rows\":\"10\""));
    }

    #[test]
    fn slow_log_threshold_and_capacity() {
        let _g = guard();
        clear_slow_queries();
        set_slow_query_threshold(None);
        capture_slow_query("off", 1, 100, "tree".to_owned());
        assert!(slow_queries().is_empty());
        set_slow_query_threshold(Some(Duration::ZERO));
        for i in 0..(SLOW_LOG_CAPACITY + 3) {
            capture_slow_query("q", i as u64, 100, String::new());
        }
        let entries = slow_queries();
        assert_eq!(entries.len(), SLOW_LOG_CAPACITY);
        assert_eq!(entries.last().expect("non-empty").fingerprint, 130);
        set_slow_query_threshold(None);
        clear_slow_queries();
    }
}
