//! Snapshot rendering: JSON and Prometheus text exposition.
//!
//! `cr-obs` has no dependencies, so the JSON here is hand-rendered;
//! metric names are restricted enough (ASCII, dots, underscores) that
//! escaping only needs the JSON string basics.

use crate::histogram::HistogramSnapshot;

/// A point-in-time view of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Prometheus metric names use `_`, not `.` or `-`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Look up a counter value by name (test/assertion convenience).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Render as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(name, &mut out);
            out.push_str(&format!("\":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(name, &mut out);
            out.push_str(&format!("\":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(&h.name, &mut out);
            out.push_str(&format!(
                "\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count, h.sum, h.min, h.max, h.mean, h.p50, h.p95, h.p99
            ));
        }
        out.push_str("}}");
        out
    }

    /// Render in the Prometheus text exposition format. Histograms are
    /// exposed as summaries (pre-computed quantiles).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(256);
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for h in &self.histograms {
            let n = prom_name(&h.name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, v) in [(0.5, h.p50), (0.95, h.p95), (0.99, h.p99)] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// Human-readable table for terminals and examples.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<48} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<48} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (ns):\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<48} count={} mean={:.0} p50={} p95={} p99={} max={}\n",
                    h.name, h.count, h.mean, h.p50, h.p95, h.p99, h.max
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("a.requests".into(), 3)],
            gauges: vec![("depth".into(), -1)],
            histograms: vec![HistogramSnapshot {
                name: "a.latency_ns".into(),
                count: 2,
                sum: 30,
                min: 10,
                max: 20,
                mean: 15.0,
                p50: 10,
                p95: 20,
                p99: 20,
            }],
        }
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json();
        assert!(j.starts_with("{\"counters\":{\"a.requests\":3}"));
        assert!(j.contains("\"gauges\":{\"depth\":-1}"));
        assert!(j.contains("\"a.latency_ns\":{\"count\":2,\"sum\":30"));
    }

    #[test]
    fn prometheus_shape() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE a_requests counter\na_requests 3\n"));
        assert!(p.contains("# TYPE depth gauge\ndepth -1\n"));
        assert!(p.contains("a_latency_ns{quantile=\"0.5\"} 10\n"));
        assert!(p.contains("a_latency_ns_count 2\n"));
    }

    #[test]
    fn lookup_helpers() {
        let s = sample();
        assert_eq!(s.counter("a.requests"), Some(3));
        assert!(s.counter("nope").is_none());
        assert_eq!(s.histogram("a.latency_ns").unwrap().count, 2);
    }
}
