//! The process-wide metrics registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are resolved by name
//! once — that takes a short `RwLock` on the name map — and are pure
//! atomics afterwards. Hot paths hold resolved handles (usually in a
//! `OnceLock`'d struct) so steady-state recording never locks.
//!
//! Collection is off by default: [`enabled()`] is a single relaxed
//! atomic load, and every instrumentation site in the workspace checks
//! it before doing non-trivial work (clock reads, allocation). Call
//! [`enable()`] (or [`install()`]) to turn recording on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::histogram::Histogram;
use crate::snapshot::MetricsSnapshot;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is metrics collection on? One relaxed load — safe on any hot path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on and return the global registry.
pub fn install() -> &'static Registry {
    ENABLED.store(true, Ordering::Relaxed);
    Registry::global()
}

/// Turn collection on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn collection off. Already-resolved handles keep recording into
/// their atomics only where call sites skip the [`enabled()`] gate.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous value (queue depths, live sessions, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Named metric store. Usually used through [`Registry::global`].
#[derive(Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().expect("metrics map").get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().expect("metrics map");
    Arc::clone(w.entry(name.to_owned()).or_default())
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Resolve (or create) a counter handle. Locks the name map; resolve
    /// once and cache the `Arc` on hot paths.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Point-in-time snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .expect("metrics map")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, i64)> = self
            .gauges
            .read()
            .expect("metrics map")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        gauges.sort();
        let mut histograms: Vec<_> = self
            .histograms
            .read()
            .expect("metrics map")
            .iter()
            .map(|(k, v)| v.snapshot(k))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zero all metrics (tests and benches; races with live recorders
    /// are benign but make the next snapshot approximate).
    pub fn reset(&self) {
        for c in self.counters.read().expect("metrics map").values() {
            c.reset();
        }
        for g in self.gauges.read().expect("metrics map").values() {
            g.set(0);
        }
        for h in self.histograms.read().expect("metrics map").values() {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
    }

    #[test]
    fn snapshot_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").add(5);
        r.gauge("g").set(-2);
        r.histogram("h").record(10);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a".into(), 5), ("b".into(), 1)]);
        assert_eq!(s.gauges, vec![("g".into(), -2)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].count, 1);
    }

    #[test]
    fn enable_disable_flag() {
        enable();
        assert!(enabled());
        disable();
        assert!(!enabled());
    }
}
