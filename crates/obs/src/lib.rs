//! `cr-obs` — zero-dependency observability for the social-systems
//! workspace.
//!
//! Three pieces:
//!
//! * a process-wide **metrics registry** ([`Registry`]) of named
//!   [`Counter`]s, [`Gauge`]s, and log-linear latency [`Histogram`]s,
//!   all recorded with relaxed atomics (no locks on hot paths — the
//!   registry lock is only taken when a handle is first resolved);
//! * a **span** API ([`Span`], [`timed`]) that measures wall-clock
//!   sections into histograms and compiles down to "one relaxed load,
//!   then nothing" when collection is disabled;
//! * **snapshot rendering** ([`MetricsSnapshot`]) as hand-rolled JSON,
//!   Prometheus text exposition, or a human-readable table;
//! * a **flight recorder** ([`trace`]) of hierarchical trace spans in
//!   a lock-free bounded ring, with a Chrome trace-event exporter and
//!   a slow-request log — individually gated, also off by default.
//!
//! Collection is **off by default**. Call [`install`] (or [`enable`])
//! once at startup; every instrumentation site in the workspace guards
//! on [`enabled`] before touching the clock or allocating.
//!
//! ```
//! cr_obs::install();
//! {
//!     let _span = cr_obs::Span::enter("demo.work_ns");
//!     cr_obs::Registry::global().counter("demo.requests").inc();
//! }
//! let snap = cr_obs::Registry::global().snapshot();
//! assert_eq!(snap.counter("demo.requests"), Some(1));
//! assert!(snap.histogram("demo.work_ns").unwrap().count >= 1);
//! ```

#![forbid(unsafe_code)]

pub mod histogram;
pub mod registry;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot, QUANTILE_RELATIVE_ERROR};
pub use registry::{disable, enable, enabled, install, Counter, Gauge, Registry};
pub use snapshot::MetricsSnapshot;
pub use span::{timed, Span};
pub use trace::{FlightRecorder, SlowQuery, SpanContext, SpanId, SpanRecord, TraceId, TraceSpan};
