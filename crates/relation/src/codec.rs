//! Compact binary codec for [`Value`]s and rows.
//!
//! This is the wire format the `cr-storage` write-ahead log and snapshots
//! are built on: one tag byte per value, LEB128 varints for integers
//! (zigzag for signed), little-endian IEEE-754 bits for floats, and
//! length-prefixed UTF-8 for text. The format is self-describing per
//! value (no schema needed to decode) and deliberately tiny: a typical
//! CourseRank comment row encodes to a few dozen bytes.
//!
//! Decoding is defensive — every read is bounds-checked and malformed
//! input yields [`RelError::Invalid`], never a panic — because the WAL
//! recovery path feeds it bytes that may have been torn mid-write.

use crate::error::{RelError, RelResult};
use crate::row::Row;
use crate::value::Value;

/// Value tags. `Bool` gets two tags so a boolean costs one byte total.
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_TEXT: u8 = 5;
const TAG_DATE: u8 = 6;
const TAG_SET: u8 = 7;
const TAG_RATINGS: u8 = 8;

fn corrupt(what: &str) -> RelError {
    RelError::Invalid(format!("codec: {what}"))
}

/// Append a LEB128 varint.
pub fn write_u64(mut x: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, advancing `pos`.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> RelResult<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or_else(|| corrupt("varint truncated"))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(corrupt("varint overflow"));
        }
        x |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
        if shift > 63 {
            return Err(corrupt("varint too long"));
        }
    }
}

/// Zigzag-encode a signed integer and append it as a varint.
pub fn write_i64(x: i64, out: &mut Vec<u8>) {
    write_u64(((x << 1) ^ (x >> 63)) as u64, out);
}

/// Read a zigzag varint.
pub fn read_i64(buf: &[u8], pos: &mut usize) -> RelResult<i64> {
    let z = read_u64(buf, pos)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

/// Append a length-prefixed UTF-8 string.
pub fn write_str(s: &str, out: &mut Vec<u8>) {
    write_u64(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn read_str(buf: &[u8], pos: &mut usize) -> RelResult<String> {
    let len = read_u64(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| corrupt("string truncated"))?;
    let s = std::str::from_utf8(&buf[*pos..end]).map_err(|_| corrupt("string not UTF-8"))?;
    *pos = end;
    Ok(s.to_owned())
}

/// Append one value.
pub fn write_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            write_i64(*i, out);
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            write_str(s, out);
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            write_i64(i64::from(*d), out);
        }
        Value::Set(s) => {
            out.push(TAG_SET);
            write_u64(s.len() as u64, out);
            for v in s {
                write_value(v, out);
            }
        }
        Value::Ratings(r) => {
            out.push(TAG_RATINGS);
            write_u64(r.len() as u64, out);
            for (k, rating) in r {
                write_value(k, out);
                out.extend_from_slice(&rating.to_bits().to_le_bytes());
            }
        }
    }
}

/// Read one value. A decoded NaN float normalizes to NULL, matching
/// [`Value::float`]'s construction invariant.
pub fn read_value(buf: &[u8], pos: &mut usize) -> RelResult<Value> {
    let tag = *buf
        .get(*pos)
        .ok_or_else(|| corrupt("value tag truncated"))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(read_i64(buf, pos)?)),
        TAG_FLOAT => {
            let end = *pos + 8;
            if end > buf.len() {
                return Err(corrupt("float truncated"));
            }
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&buf[*pos..end]);
            *pos = end;
            Ok(Value::float(f64::from_bits(u64::from_le_bytes(bytes))))
        }
        TAG_TEXT => Ok(Value::Text(read_str(buf, pos)?)),
        TAG_DATE => {
            let d = read_i64(buf, pos)?;
            i32::try_from(d)
                .map(Value::Date)
                .map_err(|_| corrupt("date out of range"))
        }
        TAG_SET => {
            let n = read_u64(buf, pos)? as usize;
            if n > buf.len().saturating_sub(*pos) {
                return Err(corrupt("set length exceeds buffer"));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(read_value(buf, pos)?);
            }
            Ok(Value::Set(items))
        }
        TAG_RATINGS => {
            let n = read_u64(buf, pos)? as usize;
            if n > buf.len().saturating_sub(*pos) {
                return Err(corrupt("ratings length exceeds buffer"));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                let k = read_value(buf, pos)?;
                let end = pos
                    .checked_add(8)
                    .filter(|&e| e <= buf.len())
                    .ok_or_else(|| corrupt("rating truncated"))?;
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&buf[*pos..end]);
                *pos = end;
                items.push((k, f64::from_bits(u64::from_le_bytes(bytes))));
            }
            Ok(Value::Ratings(items))
        }
        other => Err(corrupt(&format!("unknown value tag {other}"))),
    }
}

/// Append a row: column count then each value.
pub fn write_row(row: &[Value], out: &mut Vec<u8>) {
    write_u64(row.len() as u64, out);
    for v in row {
        write_value(v, out);
    }
}

/// Read a row written by [`write_row`].
pub fn read_row(buf: &[u8], pos: &mut usize) -> RelResult<Row> {
    let n = read_u64(buf, pos)? as usize;
    if n > buf.len().saturating_sub(*pos) {
        // Each value takes at least one byte; an arity larger than the
        // remaining buffer is corrupt, not a huge allocation request.
        return Err(corrupt("row arity exceeds buffer"));
    }
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(read_value(buf, pos)?);
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        write_value(v, &mut buf);
        let mut pos = 0;
        let back = read_value(&buf, &mut pos).unwrap();
        assert_eq!(
            pos,
            buf.len(),
            "decoder must consume exactly what was written"
        );
        back
    }

    #[test]
    fn known_values_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(0.0),
            Value::Float(-2.5),
            Value::Float(f64::MAX),
            Value::text(""),
            Value::text("CS 106A: Programming Methodology — introduction"),
            Value::Date(0),
            Value::Date(i32::MIN),
            Value::Date(i32::MAX),
        ] {
            let back = roundtrip(&v);
            // Strict structural equality, not sql_eq (Int(3) != Float(3.0)).
            assert_eq!(format!("{v:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn booleans_and_null_cost_one_byte() {
        for v in [Value::Null, Value::Bool(true), Value::Bool(false)] {
            let mut buf = Vec::new();
            write_value(&v, &mut buf);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn small_ints_are_compact() {
        let mut buf = Vec::new();
        write_value(&Value::Int(42), &mut buf);
        assert_eq!(buf.len(), 2); // tag + one varint byte
    }

    #[test]
    fn nan_float_decodes_to_null() {
        let mut buf = vec![super::TAG_FLOAT];
        buf.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let mut pos = 0;
        assert!(read_value(&buf, &mut pos).unwrap().is_null());
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let mut buf = Vec::new();
        write_value(&Value::text("hello world"), &mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(read_value(&buf[..cut], &mut pos).is_err(), "cut={cut}");
        }
        let mut pos = 0;
        assert!(read_value(&[7u8], &mut pos).is_err(), "unknown tag");
        let mut pos = 0;
        assert!(
            read_u64(&[0x80, 0x80], &mut pos).is_err(),
            "unterminated varint"
        );
    }

    #[test]
    fn row_roundtrip_and_bogus_arity() {
        let row = vec![Value::Int(1), Value::text("x"), Value::Null];
        let mut buf = Vec::new();
        write_row(&row, &mut buf);
        let mut pos = 0;
        assert_eq!(read_row(&buf, &mut pos).unwrap(), row);

        // A wildly large arity prefix must be rejected up front.
        let mut bogus = Vec::new();
        write_u64(u64::MAX, &mut bogus);
        let mut pos = 0;
        assert!(read_row(&bogus, &mut pos).is_err());
    }

    fn any_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            (-1e300f64..1e300).prop_map(Value::Float),
            "[a-zA-Z0-9 ,.;:!?'\"-]{0,40}".prop_map(Value::Text),
            any::<i32>().prop_map(Value::Date),
        ]
    }

    proptest! {
        /// The WAL codec's core contract: every value round-trips exactly
        /// (same variant, same bits) through encode/decode.
        #[test]
        fn value_roundtrip(v in any_value()) {
            let back = roundtrip(&v);
            prop_assert_eq!(format!("{:?}", v), format!("{:?}", back));
        }

        #[test]
        fn row_roundtrip(row in proptest::collection::vec(any_value(), 0..12)) {
            let mut buf = Vec::new();
            write_row(&row, &mut buf);
            let mut pos = 0;
            let back = read_row(&buf, &mut pos).unwrap();
            prop_assert_eq!(pos, buf.len());
            prop_assert_eq!(format!("{:?}", row), format!("{:?}", back));
        }

        #[test]
        fn varint_roundtrip(x in any::<u64>()) {
            let mut buf = Vec::new();
            write_u64(x, &mut buf);
            let mut pos = 0;
            prop_assert_eq!(read_u64(&buf, &mut pos).unwrap(), x);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn zigzag_roundtrip(x in any::<i64>()) {
            let mut buf = Vec::new();
            write_i64(x, &mut buf);
            let mut pos = 0;
            prop_assert_eq!(read_i64(&buf, &mut pos).unwrap(), x);
        }

        /// Concatenated values decode back in order — the property the
        /// record formats (rows, WAL frames) rely on.
        #[test]
        fn concatenation_decodes_in_order(vs in proptest::collection::vec(any_value(), 0..8)) {
            let mut buf = Vec::new();
            for v in &vs {
                write_value(v, &mut buf);
            }
            let mut pos = 0;
            for v in &vs {
                let back = read_value(&buf, &mut pos).unwrap();
                prop_assert_eq!(format!("{:?}", v), format!("{:?}", back));
            }
            prop_assert_eq!(pos, buf.len());
        }
    }
}
