//! Logical mutation records and the observer hook.
//!
//! Durability lives outside this crate (`cr-storage`), but the engine is
//! the only place that sees every successful mutation — DML through the
//! SQL front end, programmatic inserts, index DDL — so tables and the
//! catalog emit a [`Mutation`] to an attached [`MutationObserver`] after
//! each one commits in memory. The observer is invoked while the table's
//! write lock is held, which gives the write-ahead log a per-table order
//! identical to the in-memory apply order.
//!
//! Observers are infallible by design: a durability layer that hits an
//! I/O error records it on its side (sticky error + metrics) rather than
//! unwinding a mutation that already happened.

use std::fmt;
use std::sync::Arc;

use crate::index::IndexKind;
use crate::row::{Row, RowId};
use crate::schema::Schema;

/// One successful logical mutation, borrowed from the table that applied
/// it. Row payloads are redo images: replaying inserts/updates/deletes in
/// emission order onto the same starting state reproduces the table
/// byte-for-byte (row ids included). Updates and deletes additionally
/// carry the *old* row image and every record carries the post-mutation
/// [`crate::Table::version`], so delta-driven caches can test a write
/// against an entry's dependency set (touched columns, key values)
/// without re-reading the table.
pub enum Mutation<'a> {
    /// A row was inserted at `rid`.
    Insert {
        rid: RowId,
        row: &'a Row,
        /// Table version after this insert.
        version: u64,
    },
    /// The row at `rid` was replaced with `row` (old image attached).
    Update {
        rid: RowId,
        row: &'a Row,
        old_row: &'a Row,
        /// Table version after this update.
        version: u64,
    },
    /// The row at `rid` was tombstoned (`row` is the removed image).
    Delete {
        rid: RowId,
        row: &'a Row,
        /// Table version after this delete.
        version: u64,
    },
    /// A secondary index was created (and backfilled).
    CreateIndex {
        name: &'a str,
        columns: &'a [usize],
        kind: IndexKind,
        unique: bool,
    },
}

impl Mutation<'_> {
    /// Post-mutation table version (None for index DDL, which does not
    /// bump the mutation counter).
    pub fn version(&self) -> Option<u64> {
        match self {
            Mutation::Insert { version, .. }
            | Mutation::Update { version, .. }
            | Mutation::Delete { version, .. } => Some(*version),
            Mutation::CreateIndex { .. } => None,
        }
    }
}

/// Receiver for logical mutations. Implemented by `cr-storage`'s WAL
/// writer and by delta-maintained result caches; attach with
/// [`crate::Catalog::set_observer`] (replace) or
/// [`crate::Catalog::add_observer`] (fan-out).
pub trait MutationObserver: Send + Sync {
    /// Called after a mutation commits in memory, under the table lock.
    /// `schema` is the mutated table's schema (column-name resolution for
    /// dependency tests without a catalog round-trip — observers must not
    /// call back into the catalog from this hook).
    fn on_mutation(&self, table: &str, schema: &Schema, mutation: &Mutation<'_>);

    /// Called after a table is created (DDL is logged too, so recovery
    /// can rebuild a store that never reached its first snapshot).
    fn on_create_table(&self, name: &str, schema: &Schema, pk_columns: &[usize]) {
        let _ = (name, schema, pk_columns);
    }

    /// Called after a table is dropped.
    fn on_drop_table(&self, name: &str) {
        let _ = name;
    }
}

/// Holder for an optional observer that keeps `#[derive(Debug)]` usable
/// on the structs embedding it (trait objects have no `Debug`).
#[derive(Clone, Default)]
pub(crate) struct ObserverSlot(pub(crate) Option<Arc<dyn MutationObserver>>);

impl ObserverSlot {
    #[inline]
    pub(crate) fn get(&self) -> Option<&Arc<dyn MutationObserver>> {
        self.0.as_ref()
    }
}

impl fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "ObserverSlot(attached)"
        } else {
            "ObserverSlot(none)"
        })
    }
}

/// Fan-out observer: forwards every event to each inner observer in
/// insertion order. [`crate::Catalog::add_observer`] composes the WAL
/// writer (attached first, so durability sees each mutation before any
/// cache reacts to it) with result-cache subscribers.
pub struct CompositeObserver {
    observers: Vec<Arc<dyn MutationObserver>>,
}

impl CompositeObserver {
    pub fn new(observers: Vec<Arc<dyn MutationObserver>>) -> Self {
        CompositeObserver { observers }
    }

    /// The inner observers, in notification order.
    pub fn observers(&self) -> &[Arc<dyn MutationObserver>] {
        &self.observers
    }
}

impl MutationObserver for CompositeObserver {
    fn on_mutation(&self, table: &str, schema: &Schema, mutation: &Mutation<'_>) {
        for obs in &self.observers {
            obs.on_mutation(table, schema, mutation);
        }
    }

    fn on_create_table(&self, name: &str, schema: &Schema, pk_columns: &[usize]) {
        for obs in &self.observers {
            obs.on_create_table(name, schema, pk_columns);
        }
    }

    fn on_drop_table(&self, name: &str) {
        for obs in &self.observers {
            obs.on_drop_table(name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    struct Tap {
        label: &'static str,
        log: Arc<Mutex<Vec<String>>>,
    }

    impl MutationObserver for Tap {
        fn on_mutation(&self, table: &str, _schema: &Schema, mutation: &Mutation<'_>) {
            let kind = match mutation {
                Mutation::Insert { .. } => "insert",
                Mutation::Update { .. } => "update",
                Mutation::Delete { .. } => "delete",
                Mutation::CreateIndex { .. } => "index",
            };
            self.log
                .lock()
                .push(format!("{}:{kind}:{table}", self.label));
        }
    }

    #[test]
    fn composite_preserves_insertion_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let composite = CompositeObserver::new(vec![
            Arc::new(Tap {
                label: "wal",
                log: Arc::clone(&log),
            }),
            Arc::new(Tap {
                label: "cache",
                log: Arc::clone(&log),
            }),
        ]);
        let schema = Schema::default();
        let row: Row = vec![];
        composite.on_mutation(
            "t",
            &schema,
            &Mutation::Insert {
                rid: RowId(0),
                row: &row,
                version: 1,
            },
        );
        composite.on_mutation(
            "t",
            &schema,
            &Mutation::Delete {
                rid: RowId(0),
                row: &row,
                version: 2,
            },
        );
        assert_eq!(
            *log.lock(),
            vec![
                "wal:insert:t",
                "cache:insert:t",
                "wal:delete:t",
                "cache:delete:t"
            ]
        );
    }
}
