//! Logical mutation records and the observer hook.
//!
//! Durability lives outside this crate (`cr-storage`), but the engine is
//! the only place that sees every successful mutation — DML through the
//! SQL front end, programmatic inserts, index DDL — so tables and the
//! catalog emit a [`Mutation`] to an attached [`MutationObserver`] after
//! each one commits in memory. The observer is invoked while the table's
//! write lock is held, which gives the write-ahead log a per-table order
//! identical to the in-memory apply order.
//!
//! Observers are infallible by design: a durability layer that hits an
//! I/O error records it on its side (sticky error + metrics) rather than
//! unwinding a mutation that already happened.

use std::fmt;
use std::sync::Arc;

use crate::index::IndexKind;
use crate::row::{Row, RowId};
use crate::schema::Schema;

/// One successful logical mutation, borrowed from the table that applied
/// it. Row payloads are redo images: replaying inserts/updates/deletes in
/// emission order onto the same starting state reproduces the table
/// byte-for-byte (row ids included).
pub enum Mutation<'a> {
    /// A row was inserted at `rid`.
    Insert { rid: RowId, row: &'a Row },
    /// The row at `rid` was replaced with `row`.
    Update { rid: RowId, row: &'a Row },
    /// The row at `rid` was tombstoned.
    Delete { rid: RowId },
    /// A secondary index was created (and backfilled).
    CreateIndex {
        name: &'a str,
        columns: &'a [usize],
        kind: IndexKind,
        unique: bool,
    },
}

/// Receiver for logical mutations. Implemented by `cr-storage`'s WAL
/// writer; attach with [`crate::Catalog::set_observer`].
pub trait MutationObserver: Send + Sync {
    /// Called after a mutation commits in memory, under the table lock.
    fn on_mutation(&self, table: &str, mutation: &Mutation<'_>);

    /// Called after a table is created (DDL is logged too, so recovery
    /// can rebuild a store that never reached its first snapshot).
    fn on_create_table(&self, name: &str, schema: &Schema, pk_columns: &[usize]) {
        let _ = (name, schema, pk_columns);
    }

    /// Called after a table is dropped.
    fn on_drop_table(&self, name: &str) {
        let _ = name;
    }
}

/// Holder for an optional observer that keeps `#[derive(Debug)]` usable
/// on the structs embedding it (trait objects have no `Debug`).
#[derive(Clone, Default)]
pub(crate) struct ObserverSlot(pub(crate) Option<Arc<dyn MutationObserver>>);

impl ObserverSlot {
    #[inline]
    pub(crate) fn get(&self) -> Option<&Arc<dyn MutationObserver>> {
        self.0.as_ref()
    }
}

impl fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "ObserverSlot(attached)"
        } else {
            "ObserverSlot(none)"
        })
    }
}
