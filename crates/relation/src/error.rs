//! Error types for the relational engine.

use std::fmt;

/// Result alias used throughout the engine.
pub type RelResult<T> = Result<T, RelError>;

/// All errors the engine can produce.
///
/// Variants are deliberately coarse: callers in the social-site layers
/// mostly need to distinguish *user errors* (bad SQL, unknown column) from
/// *constraint violations* (duplicate key) from *engine bugs*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A table was not found in the catalog.
    UnknownTable(String),
    /// A column reference could not be resolved against a schema.
    UnknownColumn(String),
    /// An ambiguous (multiply-resolvable) column reference.
    AmbiguousColumn(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A primary-key or unique constraint was violated.
    DuplicateKey(String),
    /// A value had the wrong type for an operation or column.
    TypeMismatch { expected: String, found: String },
    /// Division by zero or a similar arithmetic fault during evaluation.
    Arithmetic(String),
    /// SQL lexing failed.
    Lex { pos: usize, message: String },
    /// SQL parsing failed.
    Parse { pos: usize, message: String },
    /// A semantically invalid plan or statement (binder errors).
    Invalid(String),
    /// A row count mismatch during insert (wrong arity).
    Arity { expected: usize, found: usize },
    /// An index with this name already exists.
    IndexExists(String),
    /// An index was not found.
    UnknownIndex(String),
    /// NOT NULL constraint violated.
    NullViolation(String),
    /// Feature not supported by this engine subset.
    Unsupported(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            RelError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            RelError::AmbiguousColumn(c) => write!(f, "ambiguous column reference: {c}"),
            RelError::TableExists(t) => write!(f, "table already exists: {t}"),
            RelError::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            RelError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            RelError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            RelError::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            RelError::Parse { pos, message } => write!(f, "parse error at token {pos}: {message}"),
            RelError::Invalid(m) => write!(f, "invalid statement: {m}"),
            RelError::Arity { expected, found } => {
                write!(
                    f,
                    "arity mismatch: expected {expected} values, found {found}"
                )
            }
            RelError::IndexExists(i) => write!(f, "index already exists: {i}"),
            RelError::UnknownIndex(i) => write!(f, "unknown index: {i}"),
            RelError::NullViolation(c) => write!(f, "NOT NULL violation on column {c}"),
            RelError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            RelError::UnknownTable("t".into()).to_string(),
            "unknown table: t"
        );
        assert_eq!(
            RelError::TypeMismatch {
                expected: "Int".into(),
                found: "Text".into()
            }
            .to_string(),
            "type mismatch: expected Int, found Text"
        );
        assert_eq!(
            RelError::Arity {
                expected: 3,
                found: 2
            }
            .to_string(),
            "arity mismatch: expected 3 values, found 2"
        );
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            RelError::UnknownColumn("x".into()),
            RelError::UnknownColumn("x".into())
        );
        assert_ne!(
            RelError::UnknownColumn("x".into()),
            RelError::UnknownColumn("y".into())
        );
    }
}
