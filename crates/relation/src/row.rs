//! Rows and row identifiers.

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A stable identifier for a row within one table.
///
/// Row ids are assigned monotonically on insert and never reused; deleting
/// a row leaves a tombstone. Secondary indexes store `RowId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId(pub u64);

impl RowId {
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// A row of values. Cheap to clone for small arities; the engine moves rows
/// where possible and clones only at pipeline breakers (sort, hash build).
pub type Row = Vec<Value>;

/// A helper for building rows out of heterogeneous Rust values.
///
/// ```
/// use cr_relation::row::row;
/// use cr_relation::value::Value;
/// let r = row![1i64, "CS 106A", 5i64];
/// assert_eq!(r[1], Value::text("CS 106A"));
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::value::Value::from($v)),*]
    };
}

pub use row;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_macro_builds_values() {
        let r = row![1i64, "x", 2.5f64, true];
        assert_eq!(
            r,
            vec![
                Value::Int(1),
                Value::text("x"),
                Value::Float(2.5),
                Value::Bool(true)
            ]
        );
    }

    #[test]
    fn rowid_ordering() {
        assert!(RowId(1) < RowId(2));
        assert_eq!(RowId(7).as_u64(), 7);
    }
}
