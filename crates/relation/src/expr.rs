//! Scalar expressions: AST, binding, evaluation, constant folding.
//!
//! Expressions appear in `WHERE`/`HAVING` predicates, projections, and join
//! conditions. An expression starts life *unbound* (column references by
//! name) and is [`Expr::bind`]-ed against a [`Schema`] to produce a form
//! with positional references that evaluates without name lookups — the
//! hot path runs on `&[Value]` with zero hashing.

use std::fmt;
use std::sync::Arc;

use crate::batch::{self, ColumnBuilder, EvalCol, Vals};
use crate::error::{RelError, RelResult};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    pub fn sql(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// True for comparison operators (result is Bool).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFn {
    Lower,
    Upper,
    Length,
    Abs,
    Round,
    Coalesce,
    /// `CONCAT(a, b, ...)` — string concatenation, NULLs become "".
    Concat,
    /// `SUBSTR(s, start, len)` — 1-based start as in SQL.
    Substr,
    /// Square root (NULL for negative input).
    Sqrt,
    /// `POW(base, exponent)`.
    Pow,
    /// Natural logarithm (NULL for non-positive input).
    Ln,
    /// `EXP(x)`.
    Exp,
}

impl ScalarFn {
    pub fn by_name(name: &str) -> Option<ScalarFn> {
        match name.to_ascii_uppercase().as_str() {
            "LOWER" => Some(ScalarFn::Lower),
            "UPPER" => Some(ScalarFn::Upper),
            "LENGTH" => Some(ScalarFn::Length),
            "ABS" => Some(ScalarFn::Abs),
            "ROUND" => Some(ScalarFn::Round),
            "COALESCE" => Some(ScalarFn::Coalesce),
            "CONCAT" => Some(ScalarFn::Concat),
            "SUBSTR" => Some(ScalarFn::Substr),
            "SQRT" => Some(ScalarFn::Sqrt),
            "POW" | "POWER" => Some(ScalarFn::Pow),
            "LN" => Some(ScalarFn::Ln),
            "EXP" => Some(ScalarFn::Exp),
            _ => None,
        }
    }

    pub fn sql(&self) -> &'static str {
        match self {
            ScalarFn::Lower => "LOWER",
            ScalarFn::Upper => "UPPER",
            ScalarFn::Length => "LENGTH",
            ScalarFn::Abs => "ABS",
            ScalarFn::Round => "ROUND",
            ScalarFn::Coalesce => "COALESCE",
            ScalarFn::Concat => "CONCAT",
            ScalarFn::Substr => "SUBSTR",
            ScalarFn::Sqrt => "SQRT",
            ScalarFn::Pow => "POW",
            ScalarFn::Ln => "LN",
            ScalarFn::Exp => "EXP",
        }
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// An unresolved column reference (`qualifier.name` or `name`).
    ColumnName {
        qualifier: Option<String>,
        name: String,
    },
    /// A resolved column reference (position in the input row).
    Column(usize),
    /// Binary operation.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Logical NOT.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr LIKE pattern` (with `%` and `_` wildcards), case-insensitive
    /// (CourseRank-style search is case-insensitive throughout).
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `expr IN (list)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// Scalar function call.
    Func { func: ScalarFn, args: Vec<Expr> },
}

impl Expr {
    // ------------------------------------------------------------------
    // Constructors (builder-style, used heavily by plan builders and
    // FlexRecs compilation).
    // ------------------------------------------------------------------

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn col(name: impl Into<String>) -> Expr {
        let name = name.into();
        match name.split_once('.') {
            Some((q, n)) => Expr::ColumnName {
                qualifier: Some(q.to_owned()),
                name: n.to_owned(),
            },
            None => Expr::ColumnName {
                qualifier: None,
                name,
            },
        }
    }

    pub fn col_idx(i: usize) -> Expr {
        Expr::Column(i)
    }

    pub fn binary(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    pub fn eq(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Eq, rhs)
    }
    pub fn not_eq(self, rhs: Expr) -> Expr {
        self.binary(BinOp::NotEq, rhs)
    }
    pub fn lt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Lt, rhs)
    }
    pub fn lt_eq(self, rhs: Expr) -> Expr {
        self.binary(BinOp::LtEq, rhs)
    }
    pub fn gt(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Gt, rhs)
    }
    pub fn gt_eq(self, rhs: Expr) -> Expr {
        self.binary(BinOp::GtEq, rhs)
    }
    pub fn and(self, rhs: Expr) -> Expr {
        self.binary(BinOp::And, rhs)
    }
    pub fn or(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Or, rhs)
    }
    // Builder names deliberately mirror SQL arithmetic; they are not the
    // std::ops traits (those would force Expr: Sized bounds awkwardly in
    // builder chains and break the uniform `.and()/.eq()` style).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Add, rhs)
    }
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Sub, rhs)
    }
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Mul, rhs)
    }
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        self.binary(BinOp::Div, rhs)
    }

    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: Box::new(Expr::lit(pattern.into())),
            negated: false,
        }
    }

    pub fn is_null(self) -> Expr {
        Expr::IsNull {
            expr: Box::new(self),
            negated: false,
        }
    }

    pub fn in_list(self, list: Vec<Expr>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
            negated: false,
        }
    }

    // ------------------------------------------------------------------
    // Binding & analysis
    // ------------------------------------------------------------------

    /// Resolve every [`Expr::ColumnName`] against `schema`, producing an
    /// expression with positional [`Expr::Column`] references.
    pub fn bind(&self, schema: &Schema) -> RelResult<Expr> {
        Ok(match self {
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::ColumnName { qualifier, name } => {
                Expr::Column(schema.resolve(qualifier.as_deref(), name)?)
            }
            Expr::Column(i) => {
                if *i >= schema.len() {
                    return Err(RelError::Invalid(format!(
                        "column index {i} out of range for schema of {} columns",
                        schema.len()
                    )));
                }
                Expr::Column(*i)
            }
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.bind(schema)?)),
            Expr::Neg(e) => Expr::Neg(Box::new(e.bind(schema)?)),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.bind(schema)?),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.bind(schema)?),
                pattern: Box::new(pattern.bind(schema)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.bind(schema)?),
                list: list
                    .iter()
                    .map(|e| e.bind(schema))
                    .collect::<RelResult<_>>()?,
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.bind(schema)?),
                low: Box::new(low.bind(schema)?),
                high: Box::new(high.bind(schema)?),
                negated: *negated,
            },
            Expr::Func { func, args } => Expr::Func {
                func: *func,
                args: args
                    .iter()
                    .map(|e| e.bind(schema))
                    .collect::<RelResult<_>>()?,
            },
        })
    }

    /// Collect the positional columns this (bound) expression reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Literal(_) => {}
            Expr::ColumnName { .. } => {}
            Expr::Column(i) => out.push(*i),
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.referenced_columns(out),
            Expr::IsNull { expr, .. } => expr.referenced_columns(out),
            Expr::Like { expr, pattern, .. } => {
                expr.referenced_columns(out);
                pattern.referenced_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
            Expr::Func { args, .. } => {
                for e in args {
                    e.referenced_columns(out);
                }
            }
        }
    }

    /// One-pass binding profile: the highest positional column referenced
    /// (if any) and whether any unbound [`Expr::ColumnName`] remains. The
    /// plan validator runs this on every expression of every plan, so it
    /// must not allocate.
    pub fn binding_profile(&self) -> (Option<usize>, bool) {
        fn walk(e: &Expr, max: &mut Option<usize>, unbound: &mut bool) {
            match e {
                Expr::Literal(_) => {}
                Expr::ColumnName { .. } => *unbound = true,
                Expr::Column(i) => {
                    if max.is_none_or(|m| *i > m) {
                        *max = Some(*i);
                    }
                }
                Expr::Binary { left, right, .. } => {
                    walk(left, max, unbound);
                    walk(right, max, unbound);
                }
                Expr::Not(e) | Expr::Neg(e) => walk(e, max, unbound),
                Expr::IsNull { expr, .. } => walk(expr, max, unbound),
                Expr::Like { expr, pattern, .. } => {
                    walk(expr, max, unbound);
                    walk(pattern, max, unbound);
                }
                Expr::InList { expr, list, .. } => {
                    walk(expr, max, unbound);
                    for e in list {
                        walk(e, max, unbound);
                    }
                }
                Expr::Between {
                    expr, low, high, ..
                } => {
                    walk(expr, max, unbound);
                    walk(low, max, unbound);
                    walk(high, max, unbound);
                }
                Expr::Func { args, .. } => {
                    for e in args {
                        walk(e, max, unbound);
                    }
                }
            }
        }
        let mut max = None;
        let mut unbound = false;
        walk(self, &mut max, &mut unbound);
        (max, unbound)
    }

    /// True if the expression contains no column references (constant).
    pub fn is_constant(&self) -> bool {
        let mut cols = Vec::new();
        self.referenced_columns(&mut cols);
        cols.is_empty() && !self.has_unbound_names()
    }

    /// True if any [`Expr::ColumnName`] remains — i.e. the expression has
    /// not been fully bound to column positions.
    pub fn has_unbound_names(&self) -> bool {
        match self {
            Expr::ColumnName { .. } => true,
            Expr::Literal(_) | Expr::Column(_) => false,
            Expr::Binary { left, right, .. } => {
                left.has_unbound_names() || right.has_unbound_names()
            }
            Expr::Not(e) | Expr::Neg(e) => e.has_unbound_names(),
            Expr::IsNull { expr, .. } => expr.has_unbound_names(),
            Expr::Like { expr, pattern, .. } => {
                expr.has_unbound_names() || pattern.has_unbound_names()
            }
            Expr::InList { expr, list, .. } => {
                expr.has_unbound_names() || list.iter().any(Expr::has_unbound_names)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.has_unbound_names() || low.has_unbound_names() || high.has_unbound_names(),
            Expr::Func { args, .. } => args.iter().any(Expr::has_unbound_names),
        }
    }

    /// Shift every positional column reference by `delta` (used when an
    /// expression written against a join's right input is evaluated against
    /// the concatenated join row).
    pub fn shift_columns(&self, delta: usize) -> Expr {
        self.map_columns(&|i| i + delta)
    }

    /// Rewrite positional references through `f`.
    pub fn map_columns(&self, f: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::ColumnName { qualifier, name } => Expr::ColumnName {
                qualifier: qualifier.clone(),
                name: name.clone(),
            },
            Expr::Column(i) => Expr::Column(f(*i)),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.map_columns(f)),
                right: Box::new(right.map_columns(f)),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.map_columns(f))),
            Expr::Neg(e) => Expr::Neg(Box::new(e.map_columns(f))),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.map_columns(f)),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.map_columns(f)),
                pattern: Box::new(pattern.map_columns(f)),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.map_columns(f)),
                list: list.iter().map(|e| e.map_columns(f)).collect(),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.map_columns(f)),
                low: Box::new(low.map_columns(f)),
                high: Box::new(high.map_columns(f)),
                negated: *negated,
            },
            Expr::Func { func, args } => Expr::Func {
                func: *func,
                args: args.iter().map(|e| e.map_columns(f)).collect(),
            },
        }
    }

    // ------------------------------------------------------------------
    // Evaluation
    // ------------------------------------------------------------------

    /// Evaluate against a row. Unbound names are an error.
    pub fn eval(&self, row: &Row) -> RelResult<Value> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| RelError::Invalid(format!("row too short for column index {i}"))),
            Expr::ColumnName { qualifier, name } => Err(RelError::Invalid(format!(
                "unbound column reference {}{name} at eval time",
                qualifier
                    .as_deref()
                    .map(|q| format!("{q}."))
                    .unwrap_or_default()
            ))),
            Expr::Binary { op, left, right } => eval_binary(*op, left, right, row),
            Expr::Not(e) => not_scalar(e.eval(row)?),
            Expr::Neg(e) => neg_scalar(e.eval(row)?),
            Expr::IsNull { expr, negated } => {
                let is_null = expr.eval(row)?.is_null();
                Ok(Value::Bool(is_null != *negated))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row)?;
                let p = pattern.eval(row)?;
                if v.is_null() || p.is_null() {
                    return Ok(Value::Null);
                }
                let matched = like_match(v.as_text()?, p.as_text()?);
                Ok(Value::Bool(matched != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut found = false;
                for item in list {
                    if item.eval(row)?.sql_eq(&v) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let within = lo.total_cmp(&v) != std::cmp::Ordering::Greater
                    && v.total_cmp(&hi) != std::cmp::Ordering::Greater;
                Ok(Value::Bool(within != *negated))
            }
            Expr::Func { func, args } => eval_func(*func, args, row),
        }
    }

    /// Evaluate as a predicate: NULL collapses to false (SQL WHERE
    /// semantics).
    pub fn eval_predicate(&self, row: &Row) -> RelResult<bool> {
        match self.eval(row)? {
            Value::Null => Ok(false),
            Value::Bool(b) => Ok(b),
            other => Err(RelError::TypeMismatch {
                expected: "Bool".into(),
                found: other.type_name().into(),
            }),
        }
    }

    // ------------------------------------------------------------------
    // Vectorized evaluation
    // ------------------------------------------------------------------

    /// Evaluate vector-at-a-time: `cols` are the input columns and `sel`
    /// names the base slots to evaluate, in output order. Returns a dense
    /// column with one slot per selected row, or a broadcast constant.
    ///
    /// Semantics mirror [`Expr::eval`] row-for-row: typed fast-path
    /// kernels are exact specializations of the scalar rules, and every
    /// other case funnels through the same scalar cores
    /// ([`binary_scalar`] & friends) the row evaluator uses. `AND`/`OR`/
    /// `COALESCE` (and `ROUND`/`SUBSTR` extra arguments) keep their lazy
    /// semantics by evaluating the deferred operand only over the
    /// sub-selection of rows where the row evaluator would have reached
    /// it — `a <> 0 AND b / a > 1` never divides by zero on either path.
    pub fn eval_batch(&self, cols: &[Arc<batch::Column>], sel: &[u32]) -> RelResult<EvalCol> {
        if sel.is_empty() {
            // Zero rows: nothing to evaluate, and nothing may error.
            return Ok(EvalCol::Col(batch::Column::empty()));
        }
        let n = sel.len();
        match self {
            Expr::Literal(v) => Ok(EvalCol::Const(v.clone())),
            Expr::Column(i) => match cols.get(*i) {
                Some(c) => Ok(EvalCol::Col(c.gather(sel))),
                None => Err(RelError::Invalid(format!(
                    "row too short for column index {i}"
                ))),
            },
            Expr::ColumnName { qualifier, name } => Err(RelError::Invalid(format!(
                "unbound column reference {}{name} at eval time",
                qualifier
                    .as_deref()
                    .map(|q| format!("{q}."))
                    .unwrap_or_default()
            ))),
            Expr::Binary { op, left, right } => eval_binary_batch(*op, left, right, cols, sel),
            Expr::Not(e) => {
                let o = operand(e, cols, sel)?;
                if let Operand::Const(c) = &o {
                    return not_scalar(c.clone()).map(EvalCol::Const);
                }
                let v = o.vals(cols, sel);
                let mut out = ColumnBuilder::with_capacity(n);
                for j in 0..n {
                    out.push(not_scalar(v.value_at(j))?);
                }
                Ok(EvalCol::Col(out.finish()))
            }
            Expr::Neg(e) => {
                let o = operand(e, cols, sel)?;
                if let Operand::Const(c) = &o {
                    return neg_scalar(c.clone()).map(EvalCol::Const);
                }
                let v = o.vals(cols, sel);
                let mut out = ColumnBuilder::with_capacity(n);
                for j in 0..n {
                    out.push(neg_scalar(v.value_at(j))?);
                }
                Ok(EvalCol::Col(out.finish()))
            }
            Expr::IsNull { expr, negated } => {
                let o = operand(expr, cols, sel)?;
                if let Operand::Const(c) = &o {
                    return Ok(EvalCol::Const(Value::Bool(c.is_null() != *negated)));
                }
                let v = o.vals(cols, sel);
                let mut out = ColumnBuilder::with_capacity(n);
                for j in 0..n {
                    out.push(Value::Bool(v.null_at(j) != *negated));
                }
                Ok(EvalCol::Col(out.finish()))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let eo = operand(expr, cols, sel)?;
                let po = operand(pattern, cols, sel)?;
                let ev = eo.vals(cols, sel);
                let pv = po.vals(cols, sel);
                let mut out = ColumnBuilder::with_capacity(n);
                if let (Some(a), Some(b)) = (ev.texts(), pv.texts()) {
                    for j in 0..n {
                        out.push(match (a.get(j), b.get(j)) {
                            (Some(s), Some(p)) => Value::Bool(like_match(s, p) != *negated),
                            _ => Value::Null,
                        });
                    }
                } else {
                    for j in 0..n {
                        let v = ev.value_at(j);
                        let p = pv.value_at(j);
                        out.push(if v.is_null() || p.is_null() {
                            Value::Null
                        } else {
                            Value::Bool(like_match(v.as_text()?, p.as_text()?) != *negated)
                        });
                    }
                }
                Ok(EvalCol::Col(out.finish()))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let eo = operand(expr, cols, sel)?;
                let items: Vec<Operand> = list
                    .iter()
                    .map(|e| operand(e, cols, sel))
                    .collect::<RelResult<_>>()?;
                let ev = eo.vals(cols, sel);
                let mut out = ColumnBuilder::with_capacity(n);
                for j in 0..n {
                    let v = ev.value_at(j);
                    if v.is_null() {
                        out.push(Value::Null);
                        continue;
                    }
                    let mut found = false;
                    for it in &items {
                        let iv = it.vals(cols, sel);
                        let eq = match iv.ref_at(j) {
                            Some(rv) => rv.sql_eq(&v),
                            None => iv.value_at(j).sql_eq(&v),
                        };
                        if eq {
                            found = true;
                            break;
                        }
                    }
                    out.push(Value::Bool(found != *negated));
                }
                Ok(EvalCol::Col(out.finish()))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let vo = operand(expr, cols, sel)?;
                let lo_o = operand(low, cols, sel)?;
                let hi_o = operand(high, cols, sel)?;
                let vv = vo.vals(cols, sel);
                let lv = lo_o.vals(cols, sel);
                let hv = hi_o.vals(cols, sel);
                let mut out = ColumnBuilder::with_capacity(n);
                for j in 0..n {
                    let v = vv.value_at(j);
                    let lo = lv.value_at(j);
                    let hi = hv.value_at(j);
                    out.push(if v.is_null() || lo.is_null() || hi.is_null() {
                        Value::Null
                    } else {
                        let within = lo.total_cmp(&v) != std::cmp::Ordering::Greater
                            && v.total_cmp(&hi) != std::cmp::Ordering::Greater;
                        Value::Bool(within != *negated)
                    });
                }
                Ok(EvalCol::Col(out.finish()))
            }
            Expr::Func { func, args } => eval_func_batch(*func, args, cols, sel),
        }
    }

    /// Constant-fold: evaluate constant subtrees down to literals (via the
    /// row evaluator).
    pub fn fold(&self) -> Expr {
        self.fold_with(false)
    }

    /// Constant-fold by running constant subtrees through the vectorized
    /// kernel path ([`Expr::eval_batch`] over a single-slot batch) — the
    /// optimizer uses this so that folding exercises exactly the code the
    /// executor will run (the risinglight approach: build a one-element
    /// array, apply the kernel, take element 0).
    pub fn fold_kernel(&self) -> Expr {
        self.fold_with(true)
    }

    fn fold_with(&self, kernel: bool) -> Expr {
        let f = |e: &Expr| e.fold_with(kernel);
        let folded = match self {
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(f(left)),
                right: Box::new(f(right)),
            },
            Expr::Not(e) => Expr::Not(Box::new(f(e))),
            Expr::Neg(e) => Expr::Neg(Box::new(f(e))),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(f(expr)),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(f(expr)),
                pattern: Box::new(f(pattern)),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(f(expr)),
                list: list.iter().map(f).collect(),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(f(expr)),
                low: Box::new(f(low)),
                high: Box::new(f(high)),
                negated: *negated,
            },
            Expr::Func { func, args } => Expr::Func {
                func: *func,
                args: args.iter().map(f).collect(),
            },
            other => other.clone(),
        };
        if folded.is_constant() {
            let v = if kernel {
                folded.eval_const_kernel()
            } else {
                folded.eval(&Vec::new()).ok()
            };
            if let Some(v) = v {
                return Expr::Literal(v);
            }
        }
        folded
    }

    /// Evaluate a constant expression through the kernel path: a one-slot
    /// batch with no columns, result taken from slot 0. `None` if
    /// evaluation errors (the fold keeps the expression unfolded so the
    /// error surfaces at execution time, same as [`Expr::fold`]).
    fn eval_const_kernel(&self) -> Option<Value> {
        match self.eval_batch(&[], &[0]) {
            Ok(ec) => Some(ec.value_at(0)),
            Err(_) => None,
        }
    }

    /// Split a conjunctive predicate into its AND-ed parts.
    pub fn split_conjunction(&self) -> Vec<Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                let mut parts = left.split_conjunction();
                parts.extend(right.split_conjunction());
                parts
            }
            other => vec![other.clone()],
        }
    }

    /// Reassemble a conjunction from parts. Empty input folds to TRUE.
    pub fn conjoin(parts: Vec<Expr>) -> Expr {
        parts
            .into_iter()
            .reduce(|a, b| a.and(b))
            .unwrap_or_else(|| Expr::lit(true))
    }
}

fn eval_binary(op: BinOp, left: &Expr, right: &Expr, row: &Row) -> RelResult<Value> {
    // Short-circuit logical operators (also gives NULL-tolerant AND/OR).
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = left.eval(row)?;
        return match (op, &l) {
            (BinOp::And, Value::Bool(false)) => Ok(Value::Bool(false)),
            (BinOp::Or, Value::Bool(true)) => Ok(Value::Bool(true)),
            _ => binary_scalar(op, l, right.eval(row)?),
        };
    }
    binary_scalar(op, left.eval(row)?, right.eval(row)?)
}

/// Resolve a comparison operator against an ordering.
#[inline]
fn cmp_result(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Eq => ord == Equal,
        BinOp::NotEq => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::LtEq => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::GtEq => ord != Less,
        _ => unreachable!(),
    }
}

/// Logical NOT on an evaluated value (NULL propagates).
pub(crate) fn not_scalar(v: Value) -> RelResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        v => Ok(Value::Bool(!v.as_bool()?)),
    }
}

/// Arithmetic negation on an evaluated value (NULL propagates).
pub(crate) fn neg_scalar(v: Value) -> RelResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Int(i) => Ok(Value::Int(-i)),
        Value::Float(f) => Ok(Value::float(-f)),
        v => Err(RelError::TypeMismatch {
            expected: "numeric".into(),
            found: v.type_name().into(),
        }),
    }
}

/// Apply a binary operator to two *evaluated* values. This is the single
/// semantic core shared by the row evaluator and the vectorized kernels'
/// generic fallback — both paths produce byte-identical results by
/// construction. Short-circuiting is the caller's job; `And`/`Or` here are
/// the non-short-circuit combine.
pub(crate) fn binary_scalar(op: BinOp, l: Value, r: Value) -> RelResult<Value> {
    if matches!(op, BinOp::And | BinOp::Or) {
        return match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (a, b) => {
                let (a, b) = (a.as_bool()?, b.as_bool()?);
                Ok(Value::Bool(match op {
                    BinOp::And => a && b,
                    _ => a || b,
                }))
            }
        };
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        // DATE columns compare against integer literals (days since
        // epoch) — coerce so `WHERE Date = 100` behaves as expected.
        let (l, r) = match (&l, &r) {
            (Value::Date(_), Value::Int(i)) => (l.clone(), Value::Date(*i as i32)),
            (Value::Int(i), Value::Date(_)) => (Value::Date(*i as i32), r.clone()),
            _ => (l, r),
        };
        return Ok(Value::Bool(cmp_result(op, l.total_cmp(&r))));
    }
    // Arithmetic. Text + Text concatenates (convenience used by FlexRecs'
    // compiled SQL when labelling results).
    match (&l, &r) {
        (Value::Text(a), Value::Text(b)) if op == BinOp::Add => {
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(a);
            s.push_str(b);
            Ok(Value::Text(s))
        }
        (Value::Int(a), Value::Int(b)) => int_arith(op, *a, *b),
        _ => float_arith(op, l.as_float()?, r.as_float()?),
    }
}

/// Integer arithmetic kernel (shared by the row evaluator and the
/// vectorized `Int × Int` fast path). SQL-style: integer division yields a
/// float when not exact, matching how ratings averages must behave.
#[inline]
fn int_arith(op: BinOp, a: i64, b: i64) -> RelResult<Value> {
    Ok(match op {
        BinOp::Add => Value::Int(a.wrapping_add(b)),
        BinOp::Sub => Value::Int(a.wrapping_sub(b)),
        BinOp::Mul => Value::Int(a.wrapping_mul(b)),
        BinOp::Div => {
            if b == 0 {
                return Err(RelError::Arithmetic("division by zero".into()));
            }
            if a % b == 0 {
                Value::Int(a / b)
            } else {
                Value::float(a as f64 / b as f64)
            }
        }
        BinOp::Mod => {
            if b == 0 {
                return Err(RelError::Arithmetic("modulo by zero".into()));
            }
            Value::Int(a % b)
        }
        _ => unreachable!(),
    })
}

/// Float arithmetic kernel (shared by the row evaluator's coercing arm and
/// the vectorized numeric fast path). NaN results become NULL via
/// [`Value::float`].
#[inline]
fn float_arith(op: BinOp, a: f64, b: f64) -> RelResult<Value> {
    Ok(match op {
        BinOp::Add => Value::float(a + b),
        BinOp::Sub => Value::float(a - b),
        BinOp::Mul => Value::float(a * b),
        BinOp::Div => {
            if b == 0.0 {
                return Err(RelError::Arithmetic("division by zero".into()));
            }
            Value::float(a / b)
        }
        BinOp::Mod => {
            if b == 0.0 {
                return Err(RelError::Arithmetic("modulo by zero".into()));
            }
            Value::float(a % b)
        }
        _ => unreachable!(),
    })
}

/// A kernel operand: a view of an input column through the selection, a
/// dense computed column, or a broadcast constant. Leaf column references
/// stay views so comparison/arithmetic kernels read table storage directly
/// instead of gathering first.
enum Operand {
    ColRef(usize),
    Owned(batch::Column),
    Const(Value),
}

impl Operand {
    fn vals<'a>(&'a self, cols: &'a [Arc<batch::Column>], sel: &'a [u32]) -> Vals<'a> {
        match self {
            Operand::ColRef(i) => Vals::View {
                col: &cols[*i],
                sel: Some(sel),
            },
            Operand::Owned(c) => Vals::View { col: c, sel: None },
            Operand::Const(v) => Vals::Const { v },
        }
    }
}

fn operand(e: &Expr, cols: &[Arc<batch::Column>], sel: &[u32]) -> RelResult<Operand> {
    match e {
        Expr::Literal(v) => Ok(Operand::Const(v.clone())),
        Expr::Column(i) if *i < cols.len() => Ok(Operand::ColRef(*i)),
        _ => match e.eval_batch(cols, sel)? {
            EvalCol::Col(c) => Ok(Operand::Owned(c)),
            EvalCol::Const(v) => Ok(Operand::Const(v)),
        },
    }
}

fn eval_binary_batch(
    op: BinOp,
    left: &Expr,
    right: &Expr,
    cols: &[Arc<batch::Column>],
    sel: &[u32],
) -> RelResult<EvalCol> {
    if matches!(op, BinOp::And | BinOp::Or) {
        return eval_logic_batch(op, left, right, cols, sel);
    }
    let n = sel.len();
    let lo = operand(left, cols, sel)?;
    let ro = operand(right, cols, sel)?;
    if let (Operand::Const(a), Operand::Const(b)) = (&lo, &ro) {
        return binary_scalar(op, a.clone(), b.clone()).map(EvalCol::Const);
    }
    let l = lo.vals(cols, sel);
    let r = ro.vals(cols, sel);
    let mut out = ColumnBuilder::with_capacity(n);
    if op.is_comparison() {
        if let (Some(a), Some(b)) = (l.ints(), r.ints()) {
            for j in 0..n {
                out.push(match (a.get(j), b.get(j)) {
                    (Some(x), Some(y)) => Value::Bool(cmp_result(op, x.cmp(&y))),
                    _ => Value::Null,
                });
            }
        } else if let (Some(a), Some(b)) = (l.nums(), r.nums()) {
            for j in 0..n {
                out.push(match (a.get(j), b.get(j)) {
                    (Some(x), Some(y)) => Value::Bool(cmp_result(
                        op,
                        x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
                    )),
                    _ => Value::Null,
                });
            }
        } else if let (Some(a), Some(b)) = (l.texts(), r.texts()) {
            for j in 0..n {
                out.push(match (a.get(j), b.get(j)) {
                    (Some(x), Some(y)) => Value::Bool(cmp_result(op, x.cmp(y))),
                    _ => Value::Null,
                });
            }
        } else {
            for j in 0..n {
                out.push(binary_scalar(op, l.value_at(j), r.value_at(j))?);
            }
        }
        return Ok(EvalCol::Col(out.finish()));
    }
    // Arithmetic kernels.
    if let (Some(a), Some(b)) = (l.ints(), r.ints()) {
        for j in 0..n {
            out.push(match (a.get(j), b.get(j)) {
                (Some(x), Some(y)) => int_arith(op, x, y)?,
                _ => Value::Null,
            });
        }
        return Ok(EvalCol::Col(out.finish()));
    }
    if let (Some(a), Some(b)) = (l.nums(), r.nums()) {
        for j in 0..n {
            out.push(match (a.get(j), b.get(j)) {
                (Some(x), Some(y)) => float_arith(op, x, y)?,
                _ => Value::Null,
            });
        }
        return Ok(EvalCol::Col(out.finish()));
    }
    if op == BinOp::Add {
        if let (Some(a), Some(b)) = (l.texts(), r.texts()) {
            for j in 0..n {
                out.push(match (a.get(j), b.get(j)) {
                    (Some(x), Some(y)) => {
                        let mut s = String::with_capacity(x.len() + y.len());
                        s.push_str(x);
                        s.push_str(y);
                        Value::Text(s)
                    }
                    _ => Value::Null,
                });
            }
            return Ok(EvalCol::Col(out.finish()));
        }
    }
    for j in 0..n {
        out.push(binary_scalar(op, l.value_at(j), r.value_at(j))?);
    }
    Ok(EvalCol::Col(out.finish()))
}

fn eval_logic_batch(
    op: BinOp,
    left: &Expr,
    right: &Expr,
    cols: &[Arc<batch::Column>],
    sel: &[u32],
) -> RelResult<EvalCol> {
    let n = sel.len();
    // The left-side value that short-circuits this operator.
    let sc = matches!(op, BinOp::Or);
    let l = left.eval_batch(cols, sel)?;
    if let EvalCol::Const(lv) = &l {
        if *lv == Value::Bool(sc) {
            return Ok(EvalCol::Const(Value::Bool(sc)));
        }
        let lv = lv.clone();
        return match right.eval_batch(cols, sel)? {
            EvalCol::Const(rv) => binary_scalar(op, lv, rv).map(EvalCol::Const),
            EvalCol::Col(rc) => {
                let mut out = ColumnBuilder::with_capacity(n);
                for j in 0..n {
                    out.push(binary_scalar(op, lv.clone(), rc.value(j))?);
                }
                Ok(EvalCol::Col(out.finish()))
            }
        };
    }
    let EvalCol::Col(lc) = l else { unreachable!() };
    // Rows where the left side does not short-circuit still need the right
    // side — evaluate it only over that sub-selection, preserving the row
    // evaluator's lazy error semantics.
    let mut sub_sel = Vec::new();
    for (j, &slot) in sel.iter().enumerate().take(n) {
        if lc.value(j) != Value::Bool(sc) {
            sub_sel.push(slot);
        }
    }
    if sub_sel.is_empty() {
        return Ok(EvalCol::Const(Value::Bool(sc)));
    }
    let r = right.eval_batch(cols, &sub_sel)?;
    let mut out = ColumnBuilder::with_capacity(n);
    let mut k = 0usize;
    for j in 0..n {
        let lv = lc.value(j);
        if lv == Value::Bool(sc) {
            out.push(Value::Bool(sc));
        } else {
            out.push(binary_scalar(op, lv, r.value_at(k))?);
            k += 1;
        }
    }
    Ok(EvalCol::Col(out.finish()))
}

fn eval_func_batch(
    func: ScalarFn,
    args: &[Expr],
    cols: &[Arc<batch::Column>],
    sel: &[u32],
) -> RelResult<EvalCol> {
    let n = sel.len();
    let arity_err = |expected: usize| {
        Err(RelError::Invalid(format!(
            "{} expects {expected} argument(s), got {}",
            func.sql(),
            args.len()
        )))
    };
    match func {
        ScalarFn::Lower | ScalarFn::Upper | ScalarFn::Length => {
            if args.len() != 1 {
                return arity_err(1);
            }
            let o = operand(&args[0], cols, sel)?;
            let v = o.vals(cols, sel);
            let mut out = ColumnBuilder::with_capacity(n);
            if let Some(a) = v.texts() {
                for j in 0..n {
                    out.push(match a.get(j) {
                        Some(s) => text_case_scalar(func, s),
                        None => Value::Null,
                    });
                }
            } else {
                for j in 0..n {
                    let v = v.value_at(j);
                    out.push(if v.is_null() {
                        Value::Null
                    } else {
                        text_case_scalar(func, v.as_text()?)
                    });
                }
            }
            Ok(EvalCol::Col(out.finish()))
        }
        ScalarFn::Abs => {
            if args.len() != 1 {
                return arity_err(1);
            }
            let o = operand(&args[0], cols, sel)?;
            let v = o.vals(cols, sel);
            let mut out = ColumnBuilder::with_capacity(n);
            for j in 0..n {
                out.push(abs_scalar(v.value_at(j))?);
            }
            Ok(EvalCol::Col(out.finish()))
        }
        ScalarFn::Round => {
            if args.is_empty() || args.len() > 2 {
                return arity_err(1);
            }
            let v0 = args[0].eval_batch(cols, sel)?;
            // The digits argument is only evaluated for rows whose value
            // is non-NULL, mirroring the row evaluator's laziness.
            let mut sub_sel = Vec::with_capacity(n);
            for (j, &slot) in sel.iter().enumerate().take(n) {
                if !v0.is_null_at(j) {
                    sub_sel.push(slot);
                }
            }
            let digits = match args.get(1) {
                Some(d) => Some(d.eval_batch(cols, &sub_sel)?),
                None => None,
            };
            let mut out = ColumnBuilder::with_capacity(n);
            let mut k = 0usize;
            for j in 0..n {
                let v = v0.value_at(j);
                if v.is_null() {
                    out.push(Value::Null);
                    continue;
                }
                let d = match &digits {
                    Some(dc) => dc.value_at(k).as_int()?,
                    None => 0,
                };
                k += 1;
                out.push(round_scalar(&v, d)?);
            }
            Ok(EvalCol::Col(out.finish()))
        }
        ScalarFn::Coalesce => {
            // Lazy cascade: each argument is evaluated only over the rows
            // still NULL after the previous ones.
            let mut out: Vec<Option<Value>> = vec![None; n];
            let mut pending: Vec<u32> = (0..n as u32).collect();
            for a in args {
                if pending.is_empty() {
                    break;
                }
                let base: Vec<u32> = pending.iter().map(|&p| sel[p as usize]).collect();
                let ec = a.eval_batch(cols, &base)?;
                let mut still = Vec::new();
                for (k, &p) in pending.iter().enumerate() {
                    let v = ec.value_at(k);
                    if v.is_null() {
                        still.push(p);
                    } else {
                        out[p as usize] = Some(v);
                    }
                }
                pending = still;
            }
            let mut b = ColumnBuilder::with_capacity(n);
            for v in out {
                b.push(v.unwrap_or(Value::Null));
            }
            Ok(EvalCol::Col(b.finish()))
        }
        ScalarFn::Concat => {
            let items: Vec<Operand> = args
                .iter()
                .map(|e| operand(e, cols, sel))
                .collect::<RelResult<_>>()?;
            let mut out = ColumnBuilder::with_capacity(n);
            for j in 0..n {
                let mut s = String::new();
                for it in &items {
                    let v = it.vals(cols, sel).value_at(j);
                    if !v.is_null() {
                        s.push_str(&v.to_string());
                    }
                }
                out.push(Value::Text(s));
            }
            Ok(EvalCol::Col(out.finish()))
        }
        ScalarFn::Sqrt | ScalarFn::Ln | ScalarFn::Exp => {
            if args.len() != 1 {
                return arity_err(1);
            }
            let o = operand(&args[0], cols, sel)?;
            let v = o.vals(cols, sel);
            let mut out = ColumnBuilder::with_capacity(n);
            for j in 0..n {
                let v = v.value_at(j);
                out.push(if v.is_null() {
                    Value::Null
                } else {
                    math1_scalar(func, &v)?
                });
            }
            Ok(EvalCol::Col(out.finish()))
        }
        ScalarFn::Pow => {
            if args.len() != 2 {
                return arity_err(2);
            }
            let ao = operand(&args[0], cols, sel)?;
            let bo = operand(&args[1], cols, sel)?;
            let av = ao.vals(cols, sel);
            let bv = bo.vals(cols, sel);
            let mut out = ColumnBuilder::with_capacity(n);
            for j in 0..n {
                let a = av.value_at(j);
                let b = bv.value_at(j);
                out.push(if a.is_null() || b.is_null() {
                    Value::Null
                } else {
                    pow_scalar(&a, &b)?
                });
            }
            Ok(EvalCol::Col(out.finish()))
        }
        ScalarFn::Substr => {
            if args.len() != 3 {
                return arity_err(3);
            }
            let v0 = args[0].eval_batch(cols, sel)?;
            let mut sub_sel = Vec::with_capacity(n);
            for (j, &slot) in sel.iter().enumerate().take(n) {
                if !v0.is_null_at(j) {
                    sub_sel.push(slot);
                }
            }
            let starts = args[1].eval_batch(cols, &sub_sel)?;
            let lens = args[2].eval_batch(cols, &sub_sel)?;
            let mut out = ColumnBuilder::with_capacity(n);
            let mut k = 0usize;
            for j in 0..n {
                let v = v0.value_at(j);
                if v.is_null() {
                    out.push(Value::Null);
                    continue;
                }
                let s = v.as_text()?;
                let start = starts.value_at(k).as_int()?;
                let len = lens.value_at(k).as_int()?;
                k += 1;
                out.push(substr_scalar(s, start, len));
            }
            Ok(EvalCol::Col(out.finish()))
        }
    }
}

fn eval_func(func: ScalarFn, args: &[Expr], row: &Row) -> RelResult<Value> {
    let arity_err = |expected: usize| {
        Err(RelError::Invalid(format!(
            "{} expects {expected} argument(s), got {}",
            func.sql(),
            args.len()
        )))
    };
    match func {
        ScalarFn::Lower | ScalarFn::Upper | ScalarFn::Length => {
            if args.len() != 1 {
                return arity_err(1);
            }
            let v = args[0].eval(row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            Ok(text_case_scalar(func, v.as_text()?))
        }
        ScalarFn::Abs => {
            if args.len() != 1 {
                return arity_err(1);
            }
            abs_scalar(args[0].eval(row)?)
        }
        ScalarFn::Round => {
            if args.is_empty() || args.len() > 2 {
                return arity_err(1);
            }
            let v = args[0].eval(row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let digits = if args.len() == 2 {
                args[1].eval(row)?.as_int()?
            } else {
                0
            };
            round_scalar(&v, digits)
        }
        ScalarFn::Coalesce => {
            for a in args {
                let v = a.eval(row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        ScalarFn::Concat => {
            let mut s = String::new();
            for a in args {
                let v = a.eval(row)?;
                if !v.is_null() {
                    s.push_str(&v.to_string());
                }
            }
            Ok(Value::Text(s))
        }
        ScalarFn::Sqrt | ScalarFn::Ln | ScalarFn::Exp => {
            if args.len() != 1 {
                return arity_err(1);
            }
            let v = args[0].eval(row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            math1_scalar(func, &v)
        }
        ScalarFn::Pow => {
            if args.len() != 2 {
                return arity_err(2);
            }
            let a = args[0].eval(row)?;
            let b = args[1].eval(row)?;
            if a.is_null() || b.is_null() {
                return Ok(Value::Null);
            }
            pow_scalar(&a, &b)
        }
        ScalarFn::Substr => {
            if args.len() != 3 {
                return arity_err(3);
            }
            let v = args[0].eval(row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let s = v.as_text()?;
            let start = args[1].eval(row)?.as_int()?;
            let len = args[2].eval(row)?.as_int()?;
            Ok(substr_scalar(s, start, len))
        }
    }
}

/// `LOWER`/`UPPER`/`LENGTH` on a non-NULL text value.
fn text_case_scalar(func: ScalarFn, s: &str) -> Value {
    match func {
        ScalarFn::Lower => Value::Text(s.to_lowercase()),
        ScalarFn::Upper => Value::Text(s.to_uppercase()),
        _ => Value::Int(s.chars().count() as i64),
    }
}

/// `ABS` on an evaluated value (NULL propagates).
fn abs_scalar(v: Value) -> RelResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Int(i) => Ok(Value::Int(i.abs())),
        Value::Float(f) => Ok(Value::float(f.abs())),
        v => Err(RelError::TypeMismatch {
            expected: "numeric".into(),
            found: v.type_name().into(),
        }),
    }
}

/// `ROUND` on a non-NULL value.
fn round_scalar(v: &Value, digits: i64) -> RelResult<Value> {
    let f = v.as_float()?;
    let scale = 10f64.powi(digits as i32);
    Ok(Value::float((f * scale).round() / scale))
}

/// `SQRT`/`LN`/`EXP` on a non-NULL value.
fn math1_scalar(func: ScalarFn, v: &Value) -> RelResult<Value> {
    let f = v.as_float()?;
    Ok(match func {
        ScalarFn::Sqrt => {
            if f < 0.0 {
                Value::Null
            } else {
                Value::float(f.sqrt())
            }
        }
        ScalarFn::Ln => {
            if f <= 0.0 {
                Value::Null
            } else {
                Value::float(f.ln())
            }
        }
        _ => Value::float(f.exp()),
    })
}

/// `POW` on two non-NULL values.
fn pow_scalar(a: &Value, b: &Value) -> RelResult<Value> {
    Ok(Value::float(a.as_float()?.powf(b.as_float()?)))
}

/// `SUBSTR` on a non-NULL text value (1-based SQL start).
fn substr_scalar(s: &str, start: i64, len: i64) -> Value {
    let start = start.max(1) as usize - 1;
    let len = len.max(0) as usize;
    Value::Text(s.chars().skip(start).take(len).collect())
}

/// SQL LIKE matching with `%` (any run) and `_` (any one char),
/// case-insensitive. Iterative two-pointer algorithm (no recursion, no
/// allocation beyond the lowercase buffers).
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.to_lowercase().chars().collect();
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_t = ti;
            pi += 1;
        } else if star_p != usize::MAX {
            star_t += 1;
            ti = star_t;
            pi = star_p + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(Value::Text(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::ColumnName { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {} {right})", op.sql()),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Func { func, args } => {
                write!(f, "{}(", func.sql())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Text),
            Column::new("c", DataType::Float),
        ])
    }

    fn row() -> Row {
        vec![
            Value::Int(10),
            Value::text("Greek Science"),
            Value::Float(2.5),
        ]
    }

    #[test]
    fn bind_and_eval_column() {
        let e = Expr::col("b").bind(&schema()).unwrap();
        assert_eq!(e.eval(&row()).unwrap(), Value::text("Greek Science"));
    }

    #[test]
    fn arithmetic() {
        let e = Expr::col("a").add(Expr::lit(5i64)).bind(&schema()).unwrap();
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(15));
        let e = Expr::col("a").div(Expr::lit(4i64)).bind(&schema()).unwrap();
        assert_eq!(e.eval(&row()).unwrap(), Value::Float(2.5));
        let e = Expr::col("a").div(Expr::lit(0i64)).bind(&schema()).unwrap();
        assert!(matches!(e.eval(&row()), Err(RelError::Arithmetic(_))));
    }

    #[test]
    fn comparisons_and_null_semantics() {
        let e = Expr::col("a").gt(Expr::lit(5i64)).bind(&schema()).unwrap();
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
        let e = Expr::lit(Value::Null).eq(Expr::lit(1i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&row()).unwrap()); // NULL → false in WHERE
    }

    #[test]
    fn short_circuit_and() {
        // (false AND error) must not error.
        let e = Expr::lit(false).and(Expr::lit(1i64).div(Expr::lit(0i64)).eq(Expr::lit(1i64)));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(false));
        let e = Expr::lit(true).or(Expr::lit(1i64).div(Expr::lit(0i64)).eq(Expr::lit(1i64)));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("American Studies", "%american%"));
        assert!(like_match("American Studies", "american%"));
        assert!(!like_match("Latin American", "american%"));
        assert!(like_match("CS106A", "CS1_6A"));
        assert!(like_match("", "%"));
        assert!(!like_match("x", ""));
        assert!(like_match("abc", "abc"));
        assert!(like_match("abcdef", "a%c%f"));
        assert!(!like_match("abcdef", "a%c%g"));
    }

    #[test]
    fn in_and_between() {
        let e = Expr::col("a")
            .in_list(vec![Expr::lit(1i64), Expr::lit(10i64)])
            .bind(&schema())
            .unwrap();
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));

        let e = Expr::Between {
            expr: Box::new(Expr::col("c")),
            low: Box::new(Expr::lit(2.0f64)),
            high: Box::new(Expr::lit(3.0f64)),
            negated: false,
        }
        .bind(&schema())
        .unwrap();
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn scalar_functions() {
        let r = row();
        let e = Expr::Func {
            func: ScalarFn::Lower,
            args: vec![Expr::col_idx(1)],
        };
        assert_eq!(e.eval(&r).unwrap(), Value::text("greek science"));
        let e = Expr::Func {
            func: ScalarFn::Length,
            args: vec![Expr::col_idx(1)],
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Int(13));
        let e = Expr::Func {
            func: ScalarFn::Coalesce,
            args: vec![Expr::lit(Value::Null), Expr::lit(7i64)],
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Int(7));
        let e = Expr::Func {
            func: ScalarFn::Substr,
            args: vec![Expr::col_idx(1), Expr::lit(7i64), Expr::lit(7i64)],
        };
        assert_eq!(e.eval(&r).unwrap(), Value::text("Science"));
        let e = Expr::Func {
            func: ScalarFn::Round,
            args: vec![Expr::lit(2.567f64), Expr::lit(1i64)],
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Float(2.6));
    }

    #[test]
    fn constant_folding() {
        let e = Expr::lit(2i64).add(Expr::lit(3i64)).mul(Expr::lit(4i64));
        assert_eq!(e.fold(), Expr::Literal(Value::Int(20)));
        // Non-constant parts survive.
        let e = Expr::col_idx(0).add(Expr::lit(2i64).add(Expr::lit(3i64)));
        let folded = e.fold();
        match folded {
            Expr::Binary { right, .. } => assert_eq!(*right, Expr::Literal(Value::Int(5))),
            other => panic!("unexpected fold result {other:?}"),
        }
    }

    #[test]
    fn batch_kernels_match_row_eval() {
        use crate::batch::Batch;
        // Mixed NULLs, negatives, and empty strings across typed columns:
        // col0 Int, col1 Text, col2 Float.
        let rows: Vec<Row> = vec![
            vec![
                Value::Int(3),
                Value::text("Greek Science"),
                Value::Float(2.5),
            ],
            vec![Value::Null, Value::text(""), Value::Float(-1.25)],
            vec![Value::Int(-7), Value::Null, Value::Null],
            vec![Value::Int(0), Value::text("abc"), Value::Float(9.0)],
        ];
        let exprs: Vec<Expr> = vec![
            Expr::col_idx(0).add(Expr::lit(2i64)).mul(Expr::col_idx(0)),
            Expr::col_idx(2).sub(Expr::lit(0.5f64)),
            Expr::col_idx(0).gt(Expr::lit(1i64)),
            Expr::col_idx(1).eq(Expr::lit("abc")),
            Expr::col_idx(0)
                .gt(Expr::lit(0i64))
                .and(Expr::col_idx(2).lt(Expr::lit(5.0f64))),
            Expr::col_idx(0)
                .lt(Expr::lit(0i64))
                .or(Expr::col_idx(1).eq(Expr::lit(""))),
            Expr::Not(Box::new(Expr::col_idx(0).gt_eq(Expr::lit(0i64)))),
            Expr::Neg(Box::new(Expr::col_idx(2))),
            Expr::IsNull {
                expr: Box::new(Expr::col_idx(1)),
                negated: false,
            },
            Expr::col_idx(1).like("%c%"),
            Expr::InList {
                expr: Box::new(Expr::col_idx(0)),
                list: vec![Expr::lit(3i64), Expr::lit(0i64), Expr::lit(Value::Null)],
                negated: false,
            },
            Expr::Between {
                expr: Box::new(Expr::col_idx(2)),
                low: Box::new(Expr::lit(-2.0f64)),
                high: Box::new(Expr::lit(3.0f64)),
                negated: false,
            },
            Expr::Func {
                func: ScalarFn::Lower,
                args: vec![Expr::col_idx(1)],
            },
            Expr::Func {
                func: ScalarFn::Coalesce,
                args: vec![Expr::col_idx(0), Expr::col_idx(2), Expr::lit(99i64)],
            },
            Expr::Func {
                func: ScalarFn::Round,
                args: vec![Expr::col_idx(2), Expr::lit(1i64)],
            },
            Expr::Func {
                func: ScalarFn::Substr,
                args: vec![Expr::col_idx(1), Expr::lit(2i64), Expr::lit(4i64)],
            },
            Expr::Func {
                func: ScalarFn::Concat,
                args: vec![Expr::col_idx(1), Expr::lit("-"), Expr::col_idx(0)],
            },
            Expr::Func {
                func: ScalarFn::Abs,
                args: vec![Expr::col_idx(0)],
            },
        ];
        let b = Batch::from_rows(&rows, 3);
        let sel: Vec<u32> = (0..rows.len() as u32).collect();
        for e in &exprs {
            let ec = e.eval_batch(b.columns(), &sel).unwrap();
            for (j, r) in rows.iter().enumerate() {
                assert_eq!(ec.value_at(j), e.eval(r).unwrap(), "expr {e} row {j}");
            }
        }
        // A sub-selection evaluates only the selected slots, in order.
        let sub: Vec<u32> = vec![3, 0];
        for e in &exprs {
            let ec = e.eval_batch(b.columns(), &sub).unwrap();
            for (k, &j) in sub.iter().enumerate() {
                assert_eq!(
                    ec.value_at(k),
                    e.eval(&rows[j as usize]).unwrap(),
                    "expr {e} slot {j}"
                );
            }
        }
    }

    #[test]
    fn fold_kernel_matches_fold() {
        let exprs = vec![
            Expr::lit(2i64).add(Expr::lit(3i64)).mul(Expr::lit(4i64)),
            Expr::col_idx(0).add(Expr::lit(2i64).add(Expr::lit(3i64))),
            Expr::lit(1i64).gt(Expr::lit(2i64)).or(Expr::lit(true)),
            Expr::Func {
                func: ScalarFn::Round,
                args: vec![Expr::lit(2.567f64), Expr::lit(1i64)],
            },
            // Errors must survive folding for runtime reporting, not panic.
            Expr::lit(1i64).div(Expr::lit(0i64)),
        ];
        for e in exprs {
            assert_eq!(e.fold(), e.fold_kernel(), "kernel fold diverged on {e}");
        }
    }

    #[test]
    fn split_and_conjoin_roundtrip() {
        let e = Expr::col_idx(0)
            .gt(Expr::lit(1i64))
            .and(Expr::col_idx(1).eq(Expr::lit("x")))
            .and(Expr::col_idx(2).lt(Expr::lit(3i64)));
        let parts = e.split_conjunction();
        assert_eq!(parts.len(), 3);
        let again = Expr::conjoin(parts);
        // Semantics preserved (evaluate on a sample row).
        let r: Row = vec![Value::Int(2), Value::text("x"), Value::Int(1)];
        assert_eq!(
            e.eval_predicate(&r).unwrap(),
            again.eval_predicate(&r).unwrap()
        );
    }

    #[test]
    fn display_roundtrips_readably() {
        let e = Expr::col("a")
            .gt_eq(Expr::lit(5i64))
            .and(Expr::col("b").like("%x%"));
        assert_eq!(e.to_string(), "((a >= 5) AND (b LIKE '%x%'))");
    }

    #[test]
    fn unbound_eval_is_error() {
        assert!(Expr::col("nope").eval(&row()).is_err());
    }

    proptest! {
        #[test]
        fn fold_preserves_semantics(a in -100i64..100, b in -100i64..100, c in -100i64..100) {
            let e = Expr::lit(a).add(Expr::lit(b)).mul(Expr::lit(c));
            let folded = e.fold();
            let empty: Row = Vec::new();
            prop_assert_eq!(e.eval(&empty).unwrap(), folded.eval(&empty).unwrap());
        }

        #[test]
        fn like_self_match(s in "[a-z ]{0,20}") {
            prop_assert!(like_match(&s, &s));
            prop_assert!(like_match(&s, "%"));
            let mut p = String::from("%");
            p.push_str(&s);
            p.push('%');
            prop_assert!(like_match(&s, &p));
        }

        #[test]
        fn comparison_totality(a in -50i64..50, b in -50i64..50) {
            let r: Row = Vec::new();
            let lt = Expr::lit(a).lt(Expr::lit(b)).eval(&r).unwrap().as_bool().unwrap();
            let eq = Expr::lit(a).eq(Expr::lit(b)).eval(&r).unwrap().as_bool().unwrap();
            let gt = Expr::lit(a).gt(Expr::lit(b)).eval(&r).unwrap().as_bool().unwrap();
            prop_assert_eq!(1, lt as u8 + eq as u8 + gt as u8);
        }
    }
}
