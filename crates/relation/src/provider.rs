//! Virtual tables: scan providers registered in the catalog.
//!
//! A [`ScanProvider`] is a read-only table whose rows are computed at
//! scan time instead of stored — the mechanism behind the `cr_stat_*`
//! telemetry tables ([`crate::telemetry`]). The catalog resolves a
//! provider exactly like a base table for reads ([`Catalog::with_table`]
//! materializes a transient [`crate::table::Table`] from the provider's
//! rows), so the whole plan path — binder, validator, optimizer,
//! executor, EXPLAIN — works over virtual tables unchanged. Writes,
//! DDL, and persistence treat them differently: mutation is rejected,
//! [`Catalog::table_names`] stays base-only (snapshots never persist
//! telemetry), and versions always advance so result caches never
//! serve stale telemetry.
//!
//! [`Catalog::with_table`]: crate::catalog::Catalog::with_table
//! [`Catalog::table_names`]: crate::catalog::Catalog::table_names

use crate::error::RelResult;
use crate::row::Row;
use crate::schema::Schema;

/// A source of rows materialized on demand under a table name.
///
/// Implementations must be cheap to `schema()` (called during binding
/// and validation) and must produce rows that match that schema —
/// providers are trusted the way recovered snapshots are, and rows are
/// not re-validated per scan.
pub trait ScanProvider: Send + Sync {
    /// The virtual table's schema.
    fn schema(&self) -> Schema;

    /// Compute the current rows. Called once per scan.
    fn rows(&self) -> RelResult<Vec<Row>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::error::RelError;
    use crate::row::row;
    use crate::schema::{Column, DataType};
    use crate::value::Value;
    use std::sync::Arc;

    struct Numbers;

    impl ScanProvider for Numbers {
        fn schema(&self) -> Schema {
            Schema::new(vec![Column::new("n", DataType::Int)])
        }

        fn rows(&self) -> RelResult<Vec<Row>> {
            Ok(vec![row![1i64], row![2i64], row![3i64]])
        }
    }

    #[test]
    fn provider_reads_like_a_table() {
        let c = Catalog::new();
        c.register_scan_provider("v_numbers", Arc::new(Numbers))
            .unwrap();
        assert!(c.has_table("v_numbers"));
        assert!(c.has_table("V_NUMBERS")); // case-insensitive like base tables
        assert_eq!(c.table_len("v_numbers").unwrap(), 3);
        let total = c
            .with_table("v_numbers", |t| {
                t.scan()
                    .map(|(_, r)| match r.first() {
                        Some(Value::Int(n)) => *n,
                        _ => 0,
                    })
                    .sum::<i64>()
            })
            .unwrap();
        assert_eq!(total, 6);
        // Versions always move: caches can never hold telemetry.
        let v1 = c.table_version("v_numbers").unwrap();
        let v2 = c.table_version("v_numbers").unwrap();
        assert!(v2 > v1);
    }

    #[test]
    fn provider_is_read_only_and_undroppable() {
        let c = Catalog::new();
        c.register_scan_provider("v_numbers", Arc::new(Numbers))
            .unwrap();
        let err = c
            .with_table_mut("v_numbers", |_| ())
            .expect_err("writes must be rejected");
        assert!(matches!(err, RelError::Invalid(_)));
        assert!(matches!(
            c.drop_table("v_numbers"),
            Err(RelError::Invalid(_))
        ));
    }

    #[test]
    fn provider_names_stay_out_of_base_listing() {
        let c = Catalog::new();
        c.create_table(
            "base",
            Schema::new(vec![Column::new("x", DataType::Int)]),
            vec![],
        )
        .unwrap();
        c.register_scan_provider("v_numbers", Arc::new(Numbers))
            .unwrap();
        assert_eq!(c.table_names(), vec!["base".to_owned()]);
        assert_eq!(c.virtual_table_names(), vec!["v_numbers".to_owned()]);
        // Name collisions are rejected in both directions.
        assert!(matches!(
            c.register_scan_provider("BASE", Arc::new(Numbers)),
            Err(RelError::TableExists(_))
        ));
        assert!(matches!(
            c.register_scan_provider("v_numbers", Arc::new(Numbers)),
            Err(RelError::TableExists(_))
        ));
        assert!(matches!(
            c.create_table(
                "V_NUMBERS",
                Schema::new(vec![Column::new("x", DataType::Int)]),
                vec![]
            ),
            Err(RelError::TableExists(_))
        ));
    }
}
