//! # cr-relation — an in-memory relational engine
//!
//! This crate is the "conventional DBMS" substrate that the CIDR 2009 paper
//! *Social Systems: Can We Do More Than Just Poke Friends?* assumes:
//! FlexRecs workflows are "compiled into a sequence of SQL calls, which are
//! executed by a conventional DBMS" (§3.2), and Data Clouds search "different
//! fields and relations in CourseRank's database" (§3.1).
//!
//! The engine provides:
//!
//! * a dynamically-typed [`value::Value`] model with [`schema::Schema`]s,
//! * row-oriented [`table::Table`] storage with primary keys and
//!   secondary hash / B-tree [`index`]es,
//! * an [`expr`]ession AST and evaluator,
//! * a [`plan`] layer: logical plans, a builder, and an optimizer
//!   (predicate pushdown, projection pruning, constant folding, index
//!   selection),
//! * a vectorized [`exec`]ution engine (seq/index scan, filter, project,
//!   nested-loop and hash joins, hash aggregation, sort, limit, union)
//!   running batch-at-a-time over [`batch`] columns with selection
//!   vectors; the row-at-a-time executor remains selectable
//!   (`ExecOptions { batch_size: 0, .. }`) as the differential oracle,
//! * a [`sql`] front end (lexer → parser → binder) for the subset needed by
//!   the paper's workloads: `CREATE TABLE`, `INSERT`, `SELECT` with joins /
//!   `WHERE` / `GROUP BY` / `HAVING` / `ORDER BY` / `LIMIT`, `UPDATE`,
//!   `DELETE`.
//!
//! The engine is single-process and in-memory; concurrency is
//! reader-writer at the catalog level ([`parking_lot::RwLock`]), which is
//! sufficient for the read-mostly social-site workloads the paper describes.
//!
//! ```
//! use cr_relation::{Database, value::Value};
//!
//! let db = Database::new();
//! db.execute_sql("CREATE TABLE courses (id INT PRIMARY KEY, title TEXT, units INT)").unwrap();
//! db.execute_sql("INSERT INTO courses VALUES (1, 'Intro to Programming', 5)").unwrap();
//! db.execute_sql("INSERT INTO courses VALUES (2, 'Compilers', 4)").unwrap();
//! let rows = db.query_sql("SELECT title FROM courses WHERE units >= 5").unwrap();
//! assert_eq!(rows.rows.len(), 1);
//! assert_eq!(rows.rows[0][0], Value::text("Intro to Programming"));
//! ```

#![forbid(unsafe_code)]

pub mod batch;
pub mod catalog;
pub mod codec;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod mutation;
pub mod plan;
pub mod profile;
pub mod provider;
pub mod row;
pub mod schema;
pub mod similarity;
pub mod sql;
pub mod table;
pub mod telemetry;
pub mod value;

pub use batch::{Batch, Column as BatchColumn, ColumnBuilder, EvalCol};
pub use catalog::{Catalog, CatalogSnapshot, Database};
pub use error::{RelError, RelResult};
pub use exec::{
    execute, execute_instrumented, execute_instrumented_with, execute_with, AccessPath,
    ExecOptions, ResultSet,
};
pub use expr::Expr;
pub use mutation::{CompositeObserver, Mutation, MutationObserver};
pub use plan::{LogicalPlan, PlanBuilder, Principal, Sensitivity, TablePolicy};
pub use profile::OpProfile;
pub use provider::ScanProvider;
pub use row::Row;
pub use schema::{Column, DataType, Schema};
pub use similarity::{RatingsSim, SetSim, TextSim};
pub use telemetry::register_system_tables;
pub use value::Value;
