//! SQL tokenizer.

use crate::error::{RelError, RelResult};

/// A lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original case preserved; keyword matching is
    /// case-insensitive in the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal ('' is the escape for a single quote).
    Str(String),
    // Punctuation / operators
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Semicolon,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Slash,
    Percent,
}

impl Token {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn lex(text: &str) -> RelResult<Vec<Token>> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(RelError::Lex {
                        pos: i,
                        message: "unexpected '!'".into(),
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // string literal with '' escaping
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(RelError::Lex {
                            pos: i,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // advance over a full UTF-8 char
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(std::str::from_utf8(&bytes[i..i + ch_len]).map_err(|_| {
                            RelError::Lex {
                                pos: i,
                                message: "invalid UTF-8 in string".into(),
                            }
                        })?);
                        i += ch_len;
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let s = &text[start..i];
                if is_float {
                    tokens.push(Token::Float(s.parse().map_err(|_| RelError::Lex {
                        pos: start,
                        message: format!("bad float literal {s}"),
                    })?));
                } else {
                    tokens.push(Token::Int(s.parse().map_err(|_| RelError::Lex {
                        pos: start,
                        message: format!("bad int literal {s}"),
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '"' => {
                if c == '"' {
                    // quoted identifier
                    let start = i + 1;
                    i += 1;
                    while i < bytes.len() && bytes[i] != b'"' {
                        i += 1;
                    }
                    if i >= bytes.len() {
                        return Err(RelError::Lex {
                            pos: start,
                            message: "unterminated quoted identifier".into(),
                        });
                    }
                    tokens.push(Token::Ident(text[start..i].to_owned()));
                    i += 1;
                } else {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    tokens.push(Token::Ident(text[start..i].to_owned()));
                }
            }
            other => {
                return Err(RelError::Lex {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_select() {
        let t = lex("SELECT a.x, COUNT(*) FROM t WHERE y >= 2.5 AND z <> 'it''s'").unwrap();
        assert!(t.contains(&Token::Ident("SELECT".into())));
        assert!(t.contains(&Token::Float(2.5)));
        assert!(t.contains(&Token::NotEq));
        assert!(t.contains(&Token::Str("it's".into())));
        assert!(t.contains(&Token::GtEq));
    }

    #[test]
    fn lex_comments_and_whitespace() {
        let t = lex("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("SELECT".into()),
                Token::Int(1),
                Token::Comma,
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn lex_operators() {
        let t = lex("< <= > >= = <> != + - * / %").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Eq,
                Token::NotEq,
                Token::NotEq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
            ]
        );
    }

    #[test]
    fn lex_quoted_identifier() {
        let t = lex("SELECT \"Mixed Case\" FROM t").unwrap();
        assert!(t.contains(&Token::Ident("Mixed Case".into())));
    }

    #[test]
    fn lex_unterminated_string_errors() {
        assert!(matches!(lex("SELECT 'oops"), Err(RelError::Lex { .. })));
    }

    #[test]
    fn lex_unicode_strings() {
        let t = lex("SELECT 'héllo — ünïcode'").unwrap();
        assert!(t.contains(&Token::Str("héllo — ünïcode".into())));
    }

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let t = lex("select").unwrap();
        assert!(t[0].is_kw("SELECT"));
        assert!(t[0].is_kw("select"));
        assert!(!t[0].is_kw("FROM"));
    }
}
