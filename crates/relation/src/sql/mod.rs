//! SQL front end.
//!
//! FlexRecs workflows compile "into a sequence of SQL calls, which are
//! executed by a conventional DBMS" (paper §3.2) — this module is that
//! target. The subset covers everything the compiled workflows and the
//! CourseRank services emit:
//!
//! * `CREATE TABLE` / `DROP TABLE` / `CREATE [UNIQUE] INDEX`
//! * `INSERT INTO ... VALUES`
//! * `SELECT [DISTINCT] ... FROM ... [JOIN|LEFT JOIN ... ON ...]*`
//!   `[WHERE] [GROUP BY] [HAVING] [ORDER BY] [LIMIT [OFFSET]]`
//!   `[UNION ALL ...]`
//! * `UPDATE ... SET ... [WHERE]`, `DELETE FROM ... [WHERE]`
//!
//! Pipeline: [`lexer`] → [`parser`] → [`binder`] (AST → [`LogicalPlan`]) →
//! optimizer → executor.

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

use crate::catalog::Catalog;
use crate::error::{RelError, RelResult};
use crate::exec::ResultSet;
use crate::plan::{optimizer, LogicalPlan};
use crate::schema::{Column, DataType, Schema};
use crate::value::Value;

/// Parse a SQL string into statements.
pub fn parse(text: &str) -> RelResult<Vec<ast::Statement>> {
    let tokens = lexer::lex(text)?;
    parser::Parser::new(tokens).parse_statements()
}

/// Parse a single SELECT into an (optimized) logical plan.
pub fn plan_query(text: &str, catalog: &Catalog) -> RelResult<LogicalPlan> {
    let stmts = parse(text)?;
    match stmts.as_slice() {
        [ast::Statement::Select(q)] => {
            let plan = binder::bind_select(q, catalog)?;
            Ok(optimizer::optimize(plan))
        }
        _ => Err(RelError::Invalid(
            "expected exactly one SELECT statement".into(),
        )),
    }
}

/// Execute one or more statements; returns the last statement's result.
pub fn execute(text: &str, catalog: &Catalog) -> RelResult<ResultSet> {
    let stmts = parse(text)?;
    if stmts.is_empty() {
        return Err(RelError::Invalid("empty statement".into()));
    }
    let mut last = None;
    for stmt in &stmts {
        last = Some(binder::execute_statement(stmt, catalog)?);
    }
    Ok(last.expect("non-empty statements"))
}

/// Execute a query (SELECT only).
pub fn query(text: &str, catalog: &Catalog) -> RelResult<ResultSet> {
    query_with(text, catalog, &crate::exec::ExecOptions::default())
}

/// Execute a query (SELECT only) with explicit execution options —
/// `opts.parallelism > 1` partitions scans/filters/joins/aggregations
/// across worker threads without changing the result.
pub fn query_with(
    text: &str,
    catalog: &Catalog,
    opts: &crate::exec::ExecOptions,
) -> RelResult<ResultSet> {
    let plan = plan_query(text, catalog)?;
    crate::exec::execute_with(&plan, catalog, opts)
}

/// Build the one-row "N rows affected" result used by DML statements.
pub(crate) fn affected(n: usize) -> ResultSet {
    ResultSet {
        schema: Schema::new(vec![Column::new("affected", DataType::Int)]),
        rows: vec![vec![Value::Int(n as i64)]],
    }
}
