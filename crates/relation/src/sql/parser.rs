//! Recursive-descent SQL parser.

use crate::error::{RelError, RelResult};
use crate::schema::DataType;
use crate::value::Value;

use super::ast::*;
use super::lexer::Token;

/// The parser over a token stream.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> RelError {
        RelError::Parse {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> RelResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_tok(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, tok: &Token) -> RelResult<()> {
        if self.eat_tok(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected {tok:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> RelResult<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Parse a `;`-separated list of statements.
    pub fn parse_statements(&mut self) -> RelResult<Vec<Statement>> {
        let mut out = Vec::new();
        loop {
            while self.eat_tok(&Token::Semicolon) {}
            if self.peek().is_none() {
                break;
            }
            out.push(self.parse_statement()?);
        }
        Ok(out)
    }

    fn parse_statement(&mut self) -> RelResult<Statement> {
        let t = self
            .peek()
            .cloned()
            .ok_or_else(|| self.err("empty input"))?;
        if t.is_kw("CREATE") {
            self.pos += 1;
            if self.eat_kw("TABLE") {
                return self.parse_create_table();
            }
            let unique = self.eat_kw("UNIQUE");
            if self.eat_kw("INDEX") {
                return self.parse_create_index(unique);
            }
            return Err(self.err("expected TABLE or [UNIQUE] INDEX after CREATE"));
        }
        if t.is_kw("DROP") {
            self.pos += 1;
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name });
        }
        if t.is_kw("INSERT") {
            self.pos += 1;
            return self.parse_insert();
        }
        if t.is_kw("SELECT") {
            let q = self.parse_select()?;
            return Ok(Statement::Select(q));
        }
        if t.is_kw("UPDATE") {
            self.pos += 1;
            return self.parse_update();
        }
        if t.is_kw("EXPLAIN") {
            self.pos += 1;
            let inner = self.parse_statement()?;
            return Ok(Statement::Explain(Box::new(inner)));
        }
        if t.is_kw("DELETE") {
            self.pos += 1;
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let filter = if self.eat_kw("WHERE") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete(Delete { table, filter }));
        }
        Err(self.err(format!("unexpected statement start: {t:?}")))
    }

    fn parse_data_type(&mut self) -> RelResult<DataType> {
        let name = self.ident()?;
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => Ok(DataType::Int),
            "FLOAT" | "REAL" | "DOUBLE" => Ok(DataType::Float),
            "TEXT" | "VARCHAR" | "STRING" | "CHAR" => {
                // Optional length: VARCHAR(255)
                if self.eat_tok(&Token::LParen) {
                    self.next(); // the length
                    self.expect_tok(&Token::RParen)?;
                }
                Ok(DataType::Text)
            }
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "DATE" => Ok(DataType::Date),
            other => Err(self.err(format!("unknown type {other}"))),
        }
    }

    fn parse_create_table(&mut self) -> RelResult<Statement> {
        let name = self.ident()?;
        self.expect_tok(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect_tok(&Token::LParen)?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat_tok(&Token::Comma) {
                        break;
                    }
                }
                self.expect_tok(&Token::RParen)?;
            } else {
                let col_name = self.ident()?;
                let data_type = self.parse_data_type()?;
                let mut not_null = false;
                let mut pk = false;
                loop {
                    if self.eat_kw("PRIMARY") {
                        self.expect_kw("KEY")?;
                        pk = true;
                        not_null = true;
                    } else if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        not_null = true;
                    } else {
                        break;
                    }
                }
                columns.push(ColumnDef {
                    name: col_name,
                    data_type,
                    not_null,
                    primary_key: pk,
                });
            }
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        self.expect_tok(&Token::RParen)?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            columns,
            primary_key,
        }))
    }

    fn parse_create_index(&mut self, unique: bool) -> RelResult<Statement> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_tok(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        self.expect_tok(&Token::RParen)?;
        let mut btree = false;
        if self.eat_kw("USING") {
            let kind = self.ident()?;
            match kind.to_ascii_uppercase().as_str() {
                "BTREE" => btree = true,
                "HASH" => btree = false,
                other => return Err(self.err(format!("unknown index kind {other}"))),
            }
        }
        Ok(Statement::CreateIndex(CreateIndex {
            name,
            table,
            columns,
            unique,
            btree,
        }))
    }

    fn parse_insert(&mut self) -> RelResult<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_tok(&Token::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
            self.expect_tok(&Token::RParen)?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_tok(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
            self.expect_tok(&Token::RParen)?;
            rows.push(row);
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            columns,
            rows,
        }))
    }

    fn parse_update(&mut self) -> RelResult<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_tok(&Token::Eq)?;
            let value = self.parse_expr()?;
            assignments.push((col, value));
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            filter,
        }))
    }

    /// Parse a SELECT (with optional UNION ALL chain).
    pub fn parse_select(&mut self) -> RelResult<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("FROM") {
            Some(self.parse_from()?)
        } else {
            None
        };
        let filter = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.parse_usize()?);
            if self.eat_kw("OFFSET") {
                offset = Some(self.parse_usize()?);
            }
        }
        let union = if self.eat_kw("UNION") {
            self.expect_kw("ALL")?;
            Some(Box::new(self.parse_select()?))
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            filter,
            group_by,
            having,
            order_by,
            limit,
            offset,
            union,
        })
    }

    fn parse_usize(&mut self) -> RelResult<usize> {
        match self.next() {
            Some(Token::Int(n)) if n >= 0 => Ok(n as usize),
            other => Err(self.err(format!("expected non-negative integer, found {other:?}"))),
        }
    }

    fn parse_select_item(&mut self) -> RelResult<SelectItem> {
        if self.eat_tok(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* ?
        if let (Some(Token::Ident(q)), Some(Token::Dot), Some(Token::Star)) = (
            self.tokens.get(self.pos),
            self.tokens.get(self.pos + 1),
            self.tokens.get(self.pos + 2),
        ) {
            let q = q.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            // bare alias: `SELECT x y` is not supported (ambiguous with our
            // keyword handling); require AS.
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from(&mut self) -> RelResult<FromClause> {
        let base = self.parse_table_ref()?;
        let mut joins = Vec::new();
        loop {
            let left_outer = if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                true
            } else if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                false
            } else if self.eat_kw("JOIN") {
                false
            } else {
                break;
            };
            let table = self.parse_table_ref()?;
            self.expect_kw("ON")?;
            let on = self.parse_expr()?;
            joins.push(Join {
                table,
                left_outer,
                on,
            });
        }
        Ok(FromClause { base, joins })
    }

    fn parse_table_ref(&mut self) -> RelResult<TableRef> {
        let table = self.ident()?;
        // optional alias: `t AS a` or `t a` (bare alias allowed when the
        // next token is an identifier that is not a clause keyword).
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            const CLAUSE_KWS: &[&str] = &[
                "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "LEFT", "INNER", "ON",
                "UNION", "SET",
            ];
            if CLAUSE_KWS.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                None
            } else {
                let a = s.clone();
                self.pos += 1;
                Some(a)
            }
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // OR < AND < NOT < comparison/LIKE/IN/BETWEEN/IS < add < mul < unary
    // ------------------------------------------------------------------

    /// Parse an expression.
    pub fn parse_expr(&mut self) -> RelResult<SqlExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> RelResult<SqlExpr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = SqlExpr::Binary {
                op: SqlBinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> RelResult<SqlExpr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = SqlExpr::Binary {
                op: SqlBinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> RelResult<SqlExpr> {
        if self.eat_kw("NOT") {
            Ok(SqlExpr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> RelResult<SqlExpr> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // [NOT] LIKE / IN / BETWEEN
        let negated = if self.peek().is_some_and(|t| t.is_kw("NOT")) {
            let saved = self.pos;
            self.pos += 1;
            if self
                .peek()
                .is_some_and(|t| t.is_kw("LIKE") || t.is_kw("IN") || t.is_kw("BETWEEN"))
            {
                true
            } else {
                self.pos = saved;
                false
            }
        } else {
            false
        };

        if self.eat_kw("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(SqlExpr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_tok(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
            self.expect_tok(&Token::RParen)?;
            return Ok(SqlExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(SqlExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(self.err("expected LIKE, IN, or BETWEEN after NOT"));
        }

        let op = match self.peek() {
            Some(Token::Eq) => Some(SqlBinOp::Eq),
            Some(Token::NotEq) => Some(SqlBinOp::NotEq),
            Some(Token::Lt) => Some(SqlBinOp::Lt),
            Some(Token::LtEq) => Some(SqlBinOp::LtEq),
            Some(Token::Gt) => Some(SqlBinOp::Gt),
            Some(Token::GtEq) => Some(SqlBinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> RelResult<SqlExpr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => SqlBinOp::Add,
                Some(Token::Minus) => SqlBinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> RelResult<SqlExpr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => SqlBinOp::Mul,
                Some(Token::Slash) => SqlBinOp::Div,
                Some(Token::Percent) => SqlBinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> RelResult<SqlExpr> {
        if self.eat_tok(&Token::Minus) {
            return Ok(SqlExpr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.eat_tok(&Token::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> RelResult<SqlExpr> {
        match self.next() {
            Some(Token::Int(n)) => Ok(SqlExpr::Literal(Value::Int(n))),
            Some(Token::Float(f)) => Ok(SqlExpr::Literal(Value::float(f))),
            Some(Token::Str(s)) => Ok(SqlExpr::Literal(Value::Text(s))),
            Some(Token::LParen) => {
                let e = self.parse_expr()?;
                self.expect_tok(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(SqlExpr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    return Ok(SqlExpr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    return Ok(SqlExpr::Literal(Value::Bool(false)));
                }
                // function call?
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let distinct_probe = self.eat_kw("DISTINCT");
                    if self.eat_tok(&Token::Star) {
                        self.expect_tok(&Token::RParen)?;
                        return Ok(SqlExpr::Func {
                            name,
                            args: vec![],
                            distinct: distinct_probe,
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_tok(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_tok(&Token::RParen)?;
                    return Ok(SqlExpr::Func {
                        name,
                        args,
                        distinct: distinct_probe,
                        star: false,
                    });
                }
                // qualified column?
                if self.eat_tok(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(SqlExpr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(SqlExpr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(self.err(format!("unexpected token in expression: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn parse_one(sql: &str) -> Statement {
        let mut p = Parser::new(lex(sql).unwrap());
        let stmts = p.parse_statements().unwrap();
        assert_eq!(stmts.len(), 1);
        stmts.into_iter().next().unwrap()
    }

    #[test]
    fn parse_create_table_with_constraints() {
        let s =
            parse_one("CREATE TABLE courses (id INT PRIMARY KEY, title TEXT NOT NULL, units INT)");
        match s {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.name, "courses");
                assert_eq!(ct.columns.len(), 3);
                assert!(ct.columns[0].primary_key);
                assert!(ct.columns[1].not_null);
                assert!(!ct.columns[2].not_null);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_composite_pk() {
        let s = parse_one("CREATE TABLE r (a INT, b INT, c TEXT, PRIMARY KEY (a, b))");
        match s {
            Statement::CreateTable(ct) => assert_eq!(ct.primary_key, vec!["a", "b"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_insert_multi_row() {
        let s = parse_one("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
        match s {
            Statement::Insert(i) => {
                assert_eq!(i.columns, vec!["a", "b"]);
                assert_eq!(i.rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_select_full_clause_set() {
        let s = parse_one(
            "SELECT dep, COUNT(*) AS n FROM courses c \
             LEFT JOIN comments ON c.id = comments.course_id \
             WHERE units >= 3 GROUP BY dep HAVING COUNT(*) > 1 \
             ORDER BY n DESC, dep LIMIT 10 OFFSET 5",
        );
        match s {
            Statement::Select(q) => {
                assert_eq!(q.items.len(), 2);
                let from = q.from.unwrap();
                assert_eq!(from.base.alias.as_deref(), Some("c"));
                assert_eq!(from.joins.len(), 1);
                assert!(from.joins[0].left_outer);
                assert!(q.filter.is_some());
                assert_eq!(q.group_by.len(), 1);
                assert!(q.having.is_some());
                assert_eq!(q.order_by.len(), 2);
                assert!(q.order_by[0].desc);
                assert_eq!(q.limit, Some(10));
                assert_eq!(q.offset, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_union_all_chain() {
        let s = parse_one("SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL SELECT c FROM v");
        match s {
            Statement::Select(q) => {
                let u1 = q.union.unwrap();
                let u2 = u1.union.as_ref().unwrap();
                assert!(u2.union.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_expression_precedence() {
        let s = parse_one("SELECT 1 + 2 * 3 AS x");
        match s {
            Statement::Select(q) => match &q.items[0] {
                SelectItem::Expr { expr, alias } => {
                    assert_eq!(alias.as_deref(), Some("x"));
                    // Must parse as 1 + (2*3)
                    match expr {
                        SqlExpr::Binary {
                            op: SqlBinOp::Add,
                            right,
                            ..
                        } => {
                            assert!(matches!(
                                **right,
                                SqlExpr::Binary {
                                    op: SqlBinOp::Mul,
                                    ..
                                }
                            ));
                        }
                        other => panic!("{other:?}"),
                    }
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_not_like_in_between() {
        let s = parse_one(
            "SELECT * FROM t WHERE a NOT LIKE '%x%' AND b NOT IN (1,2) AND c NOT BETWEEN 1 AND 5 AND d IS NOT NULL",
        );
        match s {
            Statement::Select(q) => {
                let f = q.filter.unwrap();
                let text = format!("{f:?}");
                assert!(text.contains("negated: true"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_update_and_delete() {
        let s = parse_one("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3");
        match s {
            Statement::Update(u) => {
                assert_eq!(u.assignments.len(), 2);
                assert!(u.filter.is_some());
            }
            other => panic!("{other:?}"),
        }
        let s = parse_one("DELETE FROM t WHERE id = 3");
        assert!(matches!(s, Statement::Delete(_)));
    }

    #[test]
    fn parse_create_index_variants() {
        let s = parse_one("CREATE UNIQUE INDEX ix ON t (a, b) USING BTREE");
        match s {
            Statement::CreateIndex(ci) => {
                assert!(ci.unique);
                assert!(ci.btree);
                assert_eq!(ci.columns, vec!["a", "b"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_count_distinct() {
        let s = parse_one("SELECT COUNT(DISTINCT dep) FROM t");
        match s {
            Statement::Select(q) => match &q.items[0] {
                SelectItem::Expr { expr, .. } => match expr {
                    SqlExpr::Func { distinct, star, .. } => {
                        assert!(*distinct);
                        assert!(!*star);
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_qualified_wildcard() {
        let s = parse_one("SELECT c.*, d.x FROM c JOIN d ON c.i = d.i");
        match s {
            Statement::Select(q) => {
                assert!(matches!(&q.items[0], SelectItem::QualifiedWildcard(a) if a == "c"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_on_garbage() {
        let mut p = Parser::new(lex("FLY ME TO THE MOON").unwrap());
        assert!(p.parse_statements().is_err());
    }

    #[test]
    fn multiple_statements_split_on_semicolon() {
        let mut p = Parser::new(lex("SELECT 1; SELECT 2;").unwrap());
        let stmts = p.parse_statements().unwrap();
        assert_eq!(stmts.len(), 2);
    }
}
