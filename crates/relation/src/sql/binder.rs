//! Binder: SQL AST → logical plans, and statement execution.

use crate::catalog::Catalog;
use crate::error::{RelError, RelResult};
use crate::exec::{self, ResultSet};
use crate::expr::{BinOp, Expr, ScalarFn};
use crate::plan::{optimizer, AggExpr, AggFn, JoinKind, LogicalPlan, SortKey};
use crate::schema::{Column, Schema};
use crate::value::Value;

use super::affected;
use super::ast::*;

/// Execute a single statement.
pub fn execute_statement(stmt: &Statement, catalog: &Catalog) -> RelResult<ResultSet> {
    match stmt {
        Statement::CreateTable(ct) => exec_create_table(ct, catalog),
        Statement::DropTable { name } => {
            catalog.drop_table(name)?;
            Ok(affected(0))
        }
        Statement::CreateIndex(ci) => exec_create_index(ci, catalog),
        Statement::Insert(ins) => exec_insert(ins, catalog),
        Statement::Select(q) => {
            let plan = bind_select(q, catalog)?;
            let plan = optimizer::optimize(plan);
            exec::execute(&plan, catalog)
        }
        Statement::Update(u) => exec_update(u, catalog),
        Statement::Delete(d) => exec_delete(d, catalog),
        Statement::Explain(inner) => exec_explain(inner, catalog),
    }
}

fn exec_explain(stmt: &Statement, catalog: &Catalog) -> RelResult<ResultSet> {
    let text = match stmt {
        Statement::Select(q) => {
            let plan = bind_select(q, catalog)?;
            optimizer::optimize(plan).explain()
        }
        other => format!("{other:#?}\n"),
    };
    let rows = text.lines().map(|l| vec![Value::text(l)]).collect();
    Ok(ResultSet {
        schema: Schema::new(vec![Column::new("plan", crate::schema::DataType::Text)]),
        rows,
    })
}

fn exec_create_table(ct: &CreateTable, catalog: &Catalog) -> RelResult<ResultSet> {
    let mut columns = Vec::with_capacity(ct.columns.len());
    let mut pk: Vec<usize> = Vec::new();
    for (i, c) in ct.columns.iter().enumerate() {
        columns.push(Column {
            name: c.name.clone(),
            data_type: c.data_type,
            nullable: !c.not_null,
        });
        if c.primary_key {
            pk.push(i);
        }
    }
    if !ct.primary_key.is_empty() {
        if !pk.is_empty() {
            return Err(RelError::Invalid(
                "both column-level and table-level PRIMARY KEY given".into(),
            ));
        }
        for name in &ct.primary_key {
            let i = ct
                .columns
                .iter()
                .position(|c| c.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| RelError::UnknownColumn(name.clone()))?;
            columns[i].nullable = false;
            pk.push(i);
        }
    }
    let schema = Schema::qualified(&ct.name, columns);
    catalog.create_table(&ct.name, schema, pk)?;
    Ok(affected(0))
}

fn exec_create_index(ci: &CreateIndex, catalog: &Catalog) -> RelResult<ResultSet> {
    catalog.with_table_mut(&ci.table, |t| {
        let positions = ci
            .columns
            .iter()
            .map(|c| t.schema().index_of(c))
            .collect::<RelResult<Vec<_>>>()?;
        let kind = if ci.btree {
            crate::index::IndexKind::BTree
        } else {
            crate::index::IndexKind::Hash
        };
        t.create_index(&ci.name, positions, kind, ci.unique)
    })??;
    Ok(affected(0))
}

fn exec_insert(ins: &Insert, catalog: &Catalog) -> RelResult<ResultSet> {
    let schema = catalog.table_schema(&ins.table)?;
    // Map provided columns to positions (or identity if none given).
    let positions: Vec<usize> = if ins.columns.is_empty() {
        (0..schema.len()).collect()
    } else {
        ins.columns
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<RelResult<Vec<_>>>()?
    };
    let empty_row: Vec<Value> = Vec::new();
    let mut n = 0usize;
    let mut rows = Vec::with_capacity(ins.rows.len());
    for tuple in &ins.rows {
        if tuple.len() != positions.len() {
            return Err(RelError::Arity {
                expected: positions.len(),
                found: tuple.len(),
            });
        }
        let mut row = vec![Value::Null; schema.len()];
        for (value_expr, &pos) in tuple.iter().zip(&positions) {
            let e = convert_scalar(value_expr)?;
            if !e.is_constant() {
                return Err(RelError::Invalid(
                    "INSERT values must be constant expressions".into(),
                ));
            }
            row[pos] = e.eval(&empty_row)?;
        }
        rows.push(row);
    }
    catalog.with_table_mut(&ins.table, |t| -> RelResult<()> {
        for row in rows {
            t.insert(row)?;
            n += 1;
        }
        Ok(())
    })??;
    Ok(affected(n))
}

fn exec_update(u: &Update, catalog: &Catalog) -> RelResult<ResultSet> {
    catalog
        .with_table_mut(&u.table, |t| -> RelResult<usize> {
            let schema = t.schema().clone();
            let filter = match &u.filter {
                Some(f) => Some(convert_scalar(f)?.bind(&schema)?),
                None => None,
            };
            let assignments: Vec<(usize, Expr)> = u
                .assignments
                .iter()
                .map(|(col, e)| Ok((schema.index_of(col)?, convert_scalar(e)?.bind(&schema)?)))
                .collect::<RelResult<_>>()?;
            let mut updates = Vec::new();
            for (rid, row) in t.scan() {
                let keep = match &filter {
                    Some(f) => f.eval_predicate(row)?,
                    None => true,
                };
                if keep {
                    let mut new_row = row.clone();
                    for (pos, e) in &assignments {
                        new_row[*pos] = e.eval(row)?;
                    }
                    updates.push((rid, new_row));
                }
            }
            let n = updates.len();
            for (rid, new_row) in updates {
                t.update(rid, new_row)?;
            }
            Ok(n)
        })??
        .pipe_affected()
}

fn exec_delete(d: &Delete, catalog: &Catalog) -> RelResult<ResultSet> {
    catalog
        .with_table_mut(&d.table, |t| -> RelResult<usize> {
            let schema = t.schema().clone();
            let filter = match &d.filter {
                Some(f) => Some(convert_scalar(f)?.bind(&schema)?),
                None => None,
            };
            let mut victims = Vec::new();
            for (rid, row) in t.scan() {
                let hit = match &filter {
                    Some(f) => f.eval_predicate(row)?,
                    None => true,
                };
                if hit {
                    victims.push(rid);
                }
            }
            let n = victims.len();
            for rid in victims {
                t.delete(rid);
            }
            Ok(n)
        })??
        .pipe_affected()
}

trait PipeAffected {
    fn pipe_affected(self) -> RelResult<ResultSet>;
}
impl PipeAffected for usize {
    fn pipe_affected(self) -> RelResult<ResultSet> {
        Ok(affected(self))
    }
}

// ---------------------------------------------------------------------
// SELECT binding
// ---------------------------------------------------------------------

/// Bind a SELECT into a logical plan.
pub fn bind_select(q: &Select, catalog: &Catalog) -> RelResult<LogicalPlan> {
    let plan = bind_single_select(q, catalog)?;
    match &q.union {
        None => Ok(plan),
        Some(next) => {
            let right = bind_select(next, catalog)?;
            if plan.schema().len() != right.schema().len() {
                return Err(RelError::Invalid(format!(
                    "UNION arity mismatch: {} vs {}",
                    plan.schema().len(),
                    right.schema().len()
                )));
            }
            Ok(LogicalPlan::Union {
                left: Box::new(plan),
                right: Box::new(right),
            })
        }
    }
}

fn bind_single_select(q: &Select, catalog: &Catalog) -> RelResult<LogicalPlan> {
    // 1. FROM
    let mut plan = match &q.from {
        None => LogicalPlan::Values {
            schema: Schema::default(),
            rows: vec![Vec::new()],
        },
        Some(from) => {
            let mut p = bind_table_ref(&from.base, catalog)?;
            for j in &from.joins {
                let right = bind_table_ref(&j.table, catalog)?;
                let schema = p.schema().join(right.schema());
                let on = convert_scalar(&j.on)?.bind(&schema)?;
                plan_guard_no_agg(&j.on, "JOIN ... ON")?;
                p = LogicalPlan::Join {
                    left: Box::new(p),
                    right: Box::new(right),
                    kind: if j.left_outer {
                        JoinKind::LeftOuter
                    } else {
                        JoinKind::Inner
                    },
                    on,
                    schema,
                };
            }
            p
        }
    };

    // 2. WHERE
    if let Some(f) = &q.filter {
        plan_guard_no_agg(f, "WHERE")?;
        let predicate = convert_scalar(f)?.bind(plan.schema())?;
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        };
    }

    let input_schema = plan.schema().clone();

    // 3. Expand select items.
    let mut items: Vec<(SqlExpr, String)> = Vec::new();
    for (i, item) in q.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (ci, col) in input_schema.columns().iter().enumerate() {
                    items.push((
                        SqlExpr::Column {
                            qualifier: input_schema.qualifier(ci).map(str::to_owned),
                            name: col.name.clone(),
                        },
                        col.name.clone(),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(qual) => {
                let mut any = false;
                for (ci, col) in input_schema.columns().iter().enumerate() {
                    if input_schema
                        .qualifier(ci)
                        .is_some_and(|cq| cq.eq_ignore_ascii_case(qual))
                    {
                        items.push((
                            SqlExpr::Column {
                                qualifier: Some(qual.clone()),
                                name: col.name.clone(),
                            },
                            col.name.clone(),
                        ));
                        any = true;
                    }
                }
                if !any {
                    return Err(RelError::UnknownTable(qual.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| default_name(expr, i));
                items.push((expr.clone(), name));
            }
        }
    }

    let has_agg = !q.group_by.is_empty()
        || items.iter().any(|(e, _)| e.contains_aggregate())
        || q.having.as_ref().is_some_and(|h| h.contains_aggregate());

    // 4. Aggregation pipeline.
    let (pre_project, project_exprs, project_schema) = if has_agg {
        bind_aggregate_pipeline(q, plan, &input_schema, &items)?
    } else {
        if q.having.is_some() {
            return Err(RelError::Invalid("HAVING without aggregation".into()));
        }
        let mut exprs = Vec::with_capacity(items.len());
        let mut schema = Schema::default();
        for (e, name) in &items {
            let bound = convert_scalar(e)?.bind(&input_schema)?;
            let dtype = crate::plan::infer_expr_type(&bound, &input_schema);
            schema.push(Column::new(name, dtype), None);
            exprs.push((bound, name.clone()));
        }
        (plan, exprs, schema)
    };

    // 5. ORDER BY placement: prefer binding against the projected output
    //    (aliases visible); fall back to the pre-projection schema.
    let mut sort_after: Vec<SortKey> = Vec::new();
    let mut sort_before: Vec<SortKey> = Vec::new();
    if !q.order_by.is_empty() {
        let mut after_ok = true;
        let mut after = Vec::new();
        for o in &q.order_by {
            match bind_order_key_output(&o.expr, &project_schema, &project_exprs) {
                Some(expr) => after.push(SortKey { expr, desc: o.desc }),
                None => {
                    after_ok = false;
                    break;
                }
            }
        }
        if after_ok {
            sort_after = after;
        } else {
            let pre_schema = pre_project.schema().clone();
            for o in &q.order_by {
                let e = if has_agg {
                    // Under aggregation the pre-project schema is the
                    // aggregate output; rewriting has already happened for
                    // project exprs but ORDER BY must be rewritten too —
                    // handled in bind_aggregate_pipeline via output binding,
                    // so reaching here means the key is invalid.
                    return Err(RelError::Invalid(format!(
                        "ORDER BY expression {:?} must appear in the SELECT list under aggregation",
                        o.expr
                    )));
                } else {
                    convert_scalar(&o.expr)?.bind(&pre_schema)?
                };
                sort_before.push(SortKey {
                    expr: e,
                    desc: o.desc,
                });
            }
        }
    }

    let mut plan = pre_project;
    if !sort_before.is_empty() {
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys: sort_before,
        };
    }
    plan = LogicalPlan::Project {
        input: Box::new(plan),
        exprs: project_exprs,
        schema: project_schema.clone(),
    };
    if !sort_after.is_empty() {
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys: sort_after,
        };
    }

    // 6. DISTINCT — group on all output columns.
    if q.distinct {
        let group_by: Vec<Expr> = (0..project_schema.len()).map(Expr::Column).collect();
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by,
            aggs: Vec::new(),
            schema: project_schema,
        };
    }

    // 7. LIMIT/OFFSET.
    if q.limit.is_some() || q.offset.is_some() {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            limit: q.limit,
            offset: q.offset.unwrap_or(0),
        };
    }
    Ok(plan)
}

/// Try to bind an ORDER BY key against the projected output: either a bare
/// name matching an output column, an output ordinal (`ORDER BY 2`), or an
/// expression structurally identical to a projected expression.
fn bind_order_key_output(
    e: &SqlExpr,
    out_schema: &Schema,
    project_exprs: &[(Expr, String)],
) -> Option<Expr> {
    match e {
        // Output columns have no qualifiers; a qualified reference like
        // `q.QuestionID` still resolves by bare name when unambiguous.
        SqlExpr::Column { name, .. } => out_schema.index_of(name).ok().map(Expr::Column),
        SqlExpr::Literal(Value::Int(n)) if *n >= 1 && (*n as usize) <= out_schema.len() => {
            Some(Expr::Column(*n as usize - 1))
        }
        other => {
            // Structural match against a projected expression, compared on
            // the *unbound* conversion (names) — cheap best-effort.
            let conv = convert_scalar(other).ok()?;
            let _ = conv;
            let _ = project_exprs;
            None
        }
    }
}

fn bind_table_ref(t: &TableRef, catalog: &Catalog) -> RelResult<LogicalPlan> {
    let schema = catalog.table_schema(&t.table)?;
    let schema = match &t.alias {
        Some(a) => schema.with_qualifier(a),
        None => schema,
    };
    Ok(LogicalPlan::Scan {
        table: t.table.clone(),
        alias: t.alias.clone(),
        projection: None,
        filter: None,
        schema,
    })
}

fn plan_guard_no_agg(e: &SqlExpr, clause: &str) -> RelResult<()> {
    if e.contains_aggregate() {
        Err(RelError::Invalid(format!(
            "aggregate functions are not allowed in {clause}"
        )))
    } else {
        Ok(())
    }
}

fn default_name(e: &SqlExpr, i: usize) -> String {
    match e {
        SqlExpr::Column { name, .. } => name.clone(),
        SqlExpr::Func { name, .. } => name.to_ascii_lowercase(),
        _ => format!("col_{i}"),
    }
}

/// Output of the aggregate pipeline: the plan below the projection, the
/// projection expressions, and the projected schema.
type AggregatePipeline = (LogicalPlan, Vec<(Expr, String)>, Schema);

/// Build the Aggregate node plus the projection above it, rewriting
/// aggregate calls and group keys into positional references.
fn bind_aggregate_pipeline(
    q: &Select,
    input: LogicalPlan,
    input_schema: &Schema,
    items: &[(SqlExpr, String)],
) -> RelResult<AggregatePipeline> {
    // Bind group-by expressions.
    let mut group_bound: Vec<Expr> = Vec::with_capacity(q.group_by.len());
    for g in &q.group_by {
        plan_guard_no_agg(g, "GROUP BY")?;
        group_bound.push(convert_scalar(g)?.bind(input_schema)?);
    }

    // Collect distinct aggregate calls across SELECT items + HAVING +
    // ORDER BY (order keys may be aggregates not in the select list).
    let mut agg_calls: Vec<(AggFn, Expr, bool)> = Vec::new();
    let mut collect =
        |e: &SqlExpr| -> RelResult<()> { collect_aggregates(e, input_schema, &mut agg_calls) };
    for (e, _) in items {
        collect(e)?;
    }
    if let Some(h) = &q.having {
        collect(h)?;
    }
    for o in &q.order_by {
        if o.expr.contains_aggregate() {
            collect(&o.expr)?;
        }
    }

    // Aggregate output schema: group keys then aggregates.
    let mut agg_schema = Schema::default();
    for (i, g) in group_bound.iter().enumerate() {
        let (name, dt, qual) = match g {
            Expr::Column(idx) => (
                input_schema.column(*idx).name.clone(),
                input_schema.column(*idx).data_type,
                input_schema.qualifier(*idx).map(str::to_owned),
            ),
            other => (
                format!("group_{i}"),
                crate::plan::infer_expr_type(other, input_schema),
                None,
            ),
        };
        agg_schema.push(Column::new(name, dt), qual);
    }
    let aggs: Vec<AggExpr> = agg_calls
        .iter()
        .enumerate()
        .map(|(i, (func, arg, distinct))| {
            let in_dt = crate::plan::infer_expr_type(arg, input_schema);
            agg_schema.push(
                Column::new(format!("agg_{i}"), func.output_type(in_dt)),
                None,
            );
            AggExpr {
                func: *func,
                arg: arg.clone(),
                distinct: *distinct,
                name: format!("agg_{i}"),
            }
        })
        .collect();

    let mut plan = LogicalPlan::Aggregate {
        input: Box::new(input),
        group_by: group_bound.clone(),
        aggs,
        schema: agg_schema.clone(),
    };

    // HAVING (rewritten over the aggregate output).
    if let Some(h) = &q.having {
        let predicate = rewrite_over_aggregate(h, input_schema, &group_bound, &agg_calls)?;
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        };
    }

    // Projection (rewritten).
    let mut exprs = Vec::with_capacity(items.len());
    let mut out_schema = Schema::default();
    for (e, name) in items {
        let rewritten = rewrite_over_aggregate(e, input_schema, &group_bound, &agg_calls)?;
        let dt = crate::plan::infer_expr_type(&rewritten, &agg_schema);
        out_schema.push(Column::new(name, dt), None);
        exprs.push((rewritten, name.clone()));
    }
    Ok((plan, exprs, out_schema))
}

/// Record every aggregate call in `e` (deduplicated).
fn collect_aggregates(
    e: &SqlExpr,
    input_schema: &Schema,
    out: &mut Vec<(AggFn, Expr, bool)>,
) -> RelResult<()> {
    match e {
        SqlExpr::Func {
            name,
            args,
            distinct,
            star,
        } if is_aggregate_name(name) => {
            let func = agg_fn(name, *star)?;
            let arg = if *star {
                Expr::lit(1i64)
            } else {
                if args.len() != 1 {
                    return Err(RelError::Invalid(format!(
                        "{name} expects exactly one argument"
                    )));
                }
                if args[0].contains_aggregate() {
                    return Err(RelError::Invalid("nested aggregates".into()));
                }
                convert_scalar(&args[0])?.bind(input_schema)?
            };
            if !out
                .iter()
                .any(|(f, a, d)| *f == func && *a == arg && *d == *distinct)
            {
                out.push((func, arg, *distinct));
            }
            Ok(())
        }
        SqlExpr::Binary { left, right, .. } => {
            collect_aggregates(left, input_schema, out)?;
            collect_aggregates(right, input_schema, out)
        }
        SqlExpr::Not(x) | SqlExpr::Neg(x) => collect_aggregates(x, input_schema, out),
        SqlExpr::IsNull { expr, .. } => collect_aggregates(expr, input_schema, out),
        SqlExpr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, input_schema, out)?;
            collect_aggregates(pattern, input_schema, out)
        }
        SqlExpr::InList { expr, list, .. } => {
            collect_aggregates(expr, input_schema, out)?;
            for x in list {
                collect_aggregates(x, input_schema, out)?;
            }
            Ok(())
        }
        SqlExpr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, input_schema, out)?;
            collect_aggregates(low, input_schema, out)?;
            collect_aggregates(high, input_schema, out)
        }
        SqlExpr::Func { args, .. } => {
            for a in args {
                collect_aggregates(a, input_schema, out)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn agg_fn(name: &str, star: bool) -> RelResult<AggFn> {
    Ok(match name.to_ascii_uppercase().as_str() {
        "COUNT" => {
            if star {
                AggFn::CountStar
            } else {
                AggFn::Count
            }
        }
        "SUM" => AggFn::Sum,
        "AVG" => AggFn::Avg,
        "MIN" => AggFn::Min,
        "MAX" => AggFn::Max,
        other => return Err(RelError::Invalid(format!("unknown aggregate {other}"))),
    })
}

/// Rewrite an expression over the Aggregate node's output: aggregate calls
/// become positional refs past the group keys; group-key-identical
/// subexpressions become their group position; remaining bare columns are
/// an error ("must appear in GROUP BY").
fn rewrite_over_aggregate(
    e: &SqlExpr,
    input_schema: &Schema,
    group_bound: &[Expr],
    agg_calls: &[(AggFn, Expr, bool)],
) -> RelResult<Expr> {
    // Aggregate call?
    if let SqlExpr::Func {
        name,
        args,
        distinct,
        star,
    } = e
    {
        if is_aggregate_name(name) {
            let func = agg_fn(name, *star)?;
            let arg = if *star {
                Expr::lit(1i64)
            } else {
                convert_scalar(&args[0])?.bind(input_schema)?
            };
            let idx = agg_calls
                .iter()
                .position(|(f, a, d)| *f == func && *a == arg && *d == *distinct)
                .ok_or_else(|| RelError::Invalid("aggregate not collected".into()))?;
            return Ok(Expr::Column(group_bound.len() + idx));
        }
    }
    // Group-key-identical subtree?
    if let Ok(converted) = convert_scalar(e) {
        if let Ok(bound) = converted.bind(input_schema) {
            if let Some(idx) = group_bound.iter().position(|g| *g == bound) {
                return Ok(Expr::Column(idx));
            }
            // Constant expressions pass through unchanged.
            if bound.is_constant() {
                return Ok(bound);
            }
        }
    }
    // Recurse structurally.
    match e {
        SqlExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: convert_binop(*op),
            left: Box::new(rewrite_over_aggregate(
                left,
                input_schema,
                group_bound,
                agg_calls,
            )?),
            right: Box::new(rewrite_over_aggregate(
                right,
                input_schema,
                group_bound,
                agg_calls,
            )?),
        }),
        SqlExpr::Not(x) => Ok(Expr::Not(Box::new(rewrite_over_aggregate(
            x,
            input_schema,
            group_bound,
            agg_calls,
        )?))),
        SqlExpr::Neg(x) => Ok(Expr::Neg(Box::new(rewrite_over_aggregate(
            x,
            input_schema,
            group_bound,
            agg_calls,
        )?))),
        SqlExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(rewrite_over_aggregate(
                expr,
                input_schema,
                group_bound,
                agg_calls,
            )?),
            negated: *negated,
        }),
        SqlExpr::Like {
            expr,
            pattern,
            negated,
        } => Ok(Expr::Like {
            expr: Box::new(rewrite_over_aggregate(
                expr,
                input_schema,
                group_bound,
                agg_calls,
            )?),
            pattern: Box::new(rewrite_over_aggregate(
                pattern,
                input_schema,
                group_bound,
                agg_calls,
            )?),
            negated: *negated,
        }),
        SqlExpr::Func { name, args, .. } => {
            let func = ScalarFn::by_name(name)
                .ok_or_else(|| RelError::Invalid(format!("unknown function {name}")))?;
            Ok(Expr::Func {
                func,
                args: args
                    .iter()
                    .map(|a| rewrite_over_aggregate(a, input_schema, group_bound, agg_calls))
                    .collect::<RelResult<_>>()?,
            })
        }
        SqlExpr::Between {
            expr,
            low,
            high,
            negated,
        } => Ok(Expr::Between {
            expr: Box::new(rewrite_over_aggregate(
                expr,
                input_schema,
                group_bound,
                agg_calls,
            )?),
            low: Box::new(rewrite_over_aggregate(
                low,
                input_schema,
                group_bound,
                agg_calls,
            )?),
            high: Box::new(rewrite_over_aggregate(
                high,
                input_schema,
                group_bound,
                agg_calls,
            )?),
            negated: *negated,
        }),
        SqlExpr::InList {
            expr,
            list,
            negated,
        } => Ok(Expr::InList {
            expr: Box::new(rewrite_over_aggregate(
                expr,
                input_schema,
                group_bound,
                agg_calls,
            )?),
            list: list
                .iter()
                .map(|e| rewrite_over_aggregate(e, input_schema, group_bound, agg_calls))
                .collect::<RelResult<_>>()?,
            negated: *negated,
        }),
        SqlExpr::Column { qualifier, name } => Err(RelError::Invalid(format!(
            "column {}{name} must appear in GROUP BY or inside an aggregate",
            qualifier
                .as_deref()
                .map(|q| format!("{q}."))
                .unwrap_or_default()
        ))),
        SqlExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
    }
}

// ---------------------------------------------------------------------
// SqlExpr → Expr (scalar contexts; aggregates are an error here)
// ---------------------------------------------------------------------

fn convert_binop(op: SqlBinOp) -> BinOp {
    match op {
        SqlBinOp::Add => BinOp::Add,
        SqlBinOp::Sub => BinOp::Sub,
        SqlBinOp::Mul => BinOp::Mul,
        SqlBinOp::Div => BinOp::Div,
        SqlBinOp::Mod => BinOp::Mod,
        SqlBinOp::Eq => BinOp::Eq,
        SqlBinOp::NotEq => BinOp::NotEq,
        SqlBinOp::Lt => BinOp::Lt,
        SqlBinOp::LtEq => BinOp::LtEq,
        SqlBinOp::Gt => BinOp::Gt,
        SqlBinOp::GtEq => BinOp::GtEq,
        SqlBinOp::And => BinOp::And,
        SqlBinOp::Or => BinOp::Or,
    }
}

/// Convert a scalar SQL expression to an engine expression (unbound).
pub fn convert_scalar(e: &SqlExpr) -> RelResult<Expr> {
    Ok(match e {
        SqlExpr::Literal(v) => Expr::Literal(v.clone()),
        SqlExpr::Column { qualifier, name } => Expr::ColumnName {
            qualifier: qualifier.clone(),
            name: name.clone(),
        },
        SqlExpr::Binary { op, left, right } => Expr::Binary {
            op: convert_binop(*op),
            left: Box::new(convert_scalar(left)?),
            right: Box::new(convert_scalar(right)?),
        },
        SqlExpr::Not(x) => Expr::Not(Box::new(convert_scalar(x)?)),
        SqlExpr::Neg(x) => Expr::Neg(Box::new(convert_scalar(x)?)),
        SqlExpr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(convert_scalar(expr)?),
            negated: *negated,
        },
        SqlExpr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(convert_scalar(expr)?),
            pattern: Box::new(convert_scalar(pattern)?),
            negated: *negated,
        },
        SqlExpr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(convert_scalar(expr)?),
            list: list.iter().map(convert_scalar).collect::<RelResult<_>>()?,
            negated: *negated,
        },
        SqlExpr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(convert_scalar(expr)?),
            low: Box::new(convert_scalar(low)?),
            high: Box::new(convert_scalar(high)?),
            negated: *negated,
        },
        SqlExpr::Func { name, args, .. } => {
            if is_aggregate_name(name) {
                return Err(RelError::Invalid(format!(
                    "aggregate {name} not allowed in scalar context"
                )));
            }
            let func = ScalarFn::by_name(name)
                .ok_or_else(|| RelError::Invalid(format!("unknown function {name}")))?;
            Expr::Func {
                func,
                args: args.iter().map(convert_scalar).collect::<RelResult<_>>()?,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;

    fn db() -> Database {
        let db = Database::new();
        db.execute_sql(
            "CREATE TABLE students (suid INT PRIMARY KEY, name TEXT, class TEXT, gpa FLOAT)",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO students VALUES \
             (1,'Sally','2009',3.9),(2,'Bob','2009',3.2),(3,'Ann','2010',3.5),(4,'Tim','2010',2.8)",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_without_from() {
        let db = Database::new();
        let rs = db.query_sql("SELECT 1 + 2 AS x, 'hi' AS y").unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(3), Value::text("hi")]]);
        assert_eq!(rs.schema.column(0).name, "x");
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let db = db();
        let rs = db.query_sql("SELECT * FROM students").unwrap();
        assert_eq!(rs.schema.len(), 4);
        let rs = db
            .query_sql("SELECT s.* FROM students s WHERE s.gpa > 3.4")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn group_by_with_having_and_order() {
        let db = db();
        let rs = db
            .query_sql(
                "SELECT class, COUNT(*) AS n, AVG(gpa) AS g FROM students \
                 GROUP BY class HAVING COUNT(*) >= 2 ORDER BY class",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::text("2009"));
        assert_eq!(rs.rows[0][1], Value::Int(2));
        assert!((rs.rows[0][2].as_float().unwrap() - 3.55).abs() < 1e-9);
    }

    #[test]
    fn aggregate_arith_in_select() {
        let db = db();
        let rs = db
            .query_sql("SELECT MAX(gpa) - MIN(gpa) AS spread FROM students")
            .unwrap();
        assert!((rs.rows[0][0].as_float().unwrap() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn group_key_expression_in_projection() {
        let db = db();
        let rs = db
            .query_sql(
                "SELECT UPPER(class) AS k, COUNT(*) AS n FROM students GROUP BY UPPER(class) ORDER BY k",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn ungrouped_column_is_error() {
        let db = db();
        let err = db
            .query_sql("SELECT name, COUNT(*) FROM students GROUP BY class")
            .unwrap_err();
        assert!(matches!(err, RelError::Invalid(_)));
    }

    #[test]
    fn order_by_ordinal_and_alias() {
        let db = db();
        let rs = db
            .query_sql("SELECT name AS n, gpa FROM students ORDER BY 2 DESC LIMIT 1")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::text("Sally"));
        let rs = db
            .query_sql("SELECT name AS n, gpa FROM students ORDER BY n LIMIT 1")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::text("Ann"));
    }

    #[test]
    fn order_by_non_projected_column() {
        let db = db();
        let rs = db
            .query_sql("SELECT name FROM students ORDER BY gpa DESC")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::text("Sally"));
        assert_eq!(rs.rows[3][0], Value::text("Tim"));
    }

    #[test]
    fn distinct_dedups() {
        let db = db();
        let rs = db.query_sql("SELECT DISTINCT class FROM students").unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn update_statement() {
        let db = db();
        let rs = db
            .execute_sql("UPDATE students SET gpa = gpa + 0.1 WHERE class = '2009'")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(2)));
        let rs = db
            .query_sql("SELECT gpa FROM students WHERE suid = 1")
            .unwrap();
        assert!((rs.rows[0][0].as_float().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn delete_statement() {
        let db = db();
        let rs = db
            .execute_sql("DELETE FROM students WHERE gpa < 3.0")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(1)));
        assert_eq!(db.catalog().table_len("students").unwrap(), 3);
    }

    #[test]
    fn insert_with_explicit_columns_fills_nulls() {
        let db = db();
        db.execute_sql("INSERT INTO students (suid, name) VALUES (9, 'Zed')")
            .unwrap();
        let rs = db
            .query_sql("SELECT gpa FROM students WHERE suid = 9")
            .unwrap();
        assert!(rs.rows[0][0].is_null());
    }

    #[test]
    fn insert_non_constant_rejected() {
        let db = db();
        assert!(db
            .execute_sql("INSERT INTO students VALUES (10, name, 'x', 1.0)")
            .is_err());
    }

    #[test]
    fn having_without_group_on_global_aggregate() {
        let db = db();
        let rs = db
            .query_sql("SELECT COUNT(*) AS n FROM students HAVING COUNT(*) > 100")
            .unwrap();
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn aggregates_in_where_rejected() {
        let db = db();
        assert!(db
            .query_sql("SELECT * FROM students WHERE COUNT(*) > 1")
            .is_err());
    }

    #[test]
    fn union_all_concatenates() {
        let db = db();
        let rs = db
            .query_sql(
                "SELECT name FROM students WHERE class = '2009' \
                 UNION ALL SELECT name FROM students WHERE class = '2010'",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn multi_statement_execute_returns_last() {
        let db = Database::new();
        let rs = db
            .execute_sql(
                "CREATE TABLE t (x INT); INSERT INTO t VALUES (1),(2); SELECT COUNT(*) AS n FROM t",
            )
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(2)));
    }
}
