//! SQL abstract syntax tree.

use crate::schema::DataType;
use crate::value::Value;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable(CreateTable),
    DropTable {
        name: String,
    },
    CreateIndex(CreateIndex),
    Insert(Insert),
    Select(Select),
    Update(Update),
    Delete(Delete),
    /// `EXPLAIN SELECT ...` — returns the optimized logical plan as text.
    Explain(Box<Statement>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Table-level PRIMARY KEY (a, b) — column names.
    pub primary_key: Vec<String>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub not_null: bool,
    pub primary_key: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
    pub unique: bool,
    /// `USING BTREE` (default is hash).
    pub btree: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    /// Optional explicit column list.
    pub columns: Vec<String>,
    /// One expression row per VALUES tuple (must be constant).
    pub rows: Vec<Vec<SqlExpr>>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    pub assignments: Vec<(String, SqlExpr)>,
    pub filter: Option<SqlExpr>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub filter: Option<SqlExpr>,
}

/// A SELECT query (one arm of a possible UNION ALL chain).
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<FromClause>,
    pub filter: Option<SqlExpr>,
    pub group_by: Vec<SqlExpr>,
    pub having: Option<SqlExpr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<usize>,
    pub offset: Option<usize>,
    /// UNION ALL continuation.
    pub union: Option<Box<Select>>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS name]`
    Expr {
        expr: SqlExpr,
        alias: Option<String>,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    pub base: TableRef,
    pub joins: Vec<Join>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub table: TableRef,
    pub left_outer: bool,
    pub on: SqlExpr,
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: SqlExpr,
    pub desc: bool,
}

/// Binary operators at the SQL level (mirrors [`crate::expr::BinOp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

/// Expressions as parsed (aggregates still embedded; the binder separates
/// them out).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    Literal(Value),
    /// `name` or `qualifier.name`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Binary {
        op: SqlBinOp,
        left: Box<SqlExpr>,
        right: Box<SqlExpr>,
    },
    Not(Box<SqlExpr>),
    Neg(Box<SqlExpr>),
    IsNull {
        expr: Box<SqlExpr>,
        negated: bool,
    },
    Like {
        expr: Box<SqlExpr>,
        pattern: Box<SqlExpr>,
        negated: bool,
    },
    InList {
        expr: Box<SqlExpr>,
        list: Vec<SqlExpr>,
        negated: bool,
    },
    Between {
        expr: Box<SqlExpr>,
        low: Box<SqlExpr>,
        high: Box<SqlExpr>,
        negated: bool,
    },
    /// Function call: scalar (`LOWER`, ...) or aggregate (`COUNT`, `SUM`,
    /// `AVG`, `MIN`, `MAX`). `COUNT(*)` is represented with `star = true`.
    Func {
        name: String,
        args: Vec<SqlExpr>,
        distinct: bool,
        star: bool,
    },
}

impl SqlExpr {
    /// True if this expression (sub)tree contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            SqlExpr::Func { name, args, .. } => {
                is_aggregate_name(name) || args.iter().any(SqlExpr::contains_aggregate)
            }
            SqlExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            SqlExpr::Not(e) | SqlExpr::Neg(e) => e.contains_aggregate(),
            SqlExpr::IsNull { expr, .. } => expr.contains_aggregate(),
            SqlExpr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            SqlExpr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(SqlExpr::contains_aggregate)
            }
            SqlExpr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            _ => false,
        }
    }
}

/// Is `name` one of the aggregate functions?
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = SqlExpr::Func {
            name: "COUNT".into(),
            args: vec![],
            distinct: false,
            star: true,
        };
        assert!(agg.contains_aggregate());
        let nested = SqlExpr::Binary {
            op: SqlBinOp::Add,
            left: Box::new(agg),
            right: Box::new(SqlExpr::Literal(Value::Int(1))),
        };
        assert!(nested.contains_aggregate());
        let scalar = SqlExpr::Func {
            name: "LOWER".into(),
            args: vec![SqlExpr::Column {
                qualifier: None,
                name: "x".into(),
            }],
            distinct: false,
            star: false,
        };
        assert!(!scalar.contains_aggregate());
    }

    #[test]
    fn aggregate_names() {
        for n in ["count", "SUM", "Avg", "MIN", "max"] {
            assert!(is_aggregate_name(n), "{n}");
        }
        assert!(!is_aggregate_name("LOWER"));
    }
}
