//! Physical execution.
//!
//! Two executors share this module:
//!
//! * The **vectorized executor** (`batch_size > 0`, the default): operators
//!   exchange columnar [`Batch`]es. Scans hand out the table's cached
//!   columnar image ([`Table::columnar`], `Arc`-shared, rebuilt only after
//!   a mutation), pushed-down filters set the batch's *selection vector*
//!   instead of copying rows, and projections evaluate expression kernels
//!   ([`Expr::eval_batch`]) only over selected slots — so a
//!   scan→filter→project chain is one fused pass with no per-row
//!   dispatch. Joins build/probe over column views, aggregation feeds
//!   column slices into the shared [`AggState`] machinery, sort and limit
//!   permute/truncate the selection vector.
//!
//! * The **row executor** (`batch_size == 0`): the original pull pipeline
//!   of `Vec<Row>` operators. It is retained as the differential oracle
//!   (see `tests/batch_differential.rs`) and as the only path with
//!   partition-parallel operators.
//!
//! Both paths produce byte-identical results. Scans pick an **access
//! path** at runtime: if the pushed-down predicate contains an equality
//! (or range) conjunct on the primary key or an indexed column, the
//! matching index serves the lookup and only the residual predicate is
//! evaluated per row. This is what makes FlexRecs' compiled per-user
//! queries cheap on paper-scale data.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::fmt::{self, Write as _};
use std::ops::Bound;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::batch::{Batch, Column as BatchColumn, ColumnBuilder, EvalCol};
use crate::catalog::Catalog;
use crate::error::{RelError, RelResult};
use crate::expr::{BinOp, Expr};
use crate::plan::{AggExpr, AggFn, JoinKind, LogicalPlan, RecAggPlan, RecMethod, RecSpec, SortKey};
use crate::profile::OpProfile;
use crate::row::Row;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

// ---------------------------------------------------------------------
// Metrics (handles resolved once; recording is relaxed atomics only)
// ---------------------------------------------------------------------

struct RelMetrics {
    queries: Arc<cr_obs::Counter>,
    query_ns: Arc<cr_obs::Histogram>,
    rows_out: Arc<cr_obs::Counter>,
    scan_seq: Arc<cr_obs::Counter>,
    scan_pk: Arc<cr_obs::Counter>,
    scan_index_eq: Arc<cr_obs::Counter>,
    scan_index_range: Arc<cr_obs::Counter>,
    parallel_ops: Arc<cr_obs::Counter>,
    partitions_spawned: Arc<cr_obs::Counter>,
    adaptive_fallbacks: Arc<cr_obs::Counter>,
    // Per-operator-kind latency histograms (`relation.op.<kind>_ns`),
    // pre-resolved so the profiled executor never takes the registry
    // lock per node — it already measured the elapsed time, recording
    // is one atomic bump.
    op_scan_ns: Arc<cr_obs::Histogram>,
    op_filter_ns: Arc<cr_obs::Histogram>,
    op_project_ns: Arc<cr_obs::Histogram>,
    op_join_ns: Arc<cr_obs::Histogram>,
    op_aggregate_ns: Arc<cr_obs::Histogram>,
    op_sort_ns: Arc<cr_obs::Histogram>,
    op_limit_ns: Arc<cr_obs::Histogram>,
    op_values_ns: Arc<cr_obs::Histogram>,
    op_union_ns: Arc<cr_obs::Histogram>,
    op_extend_ns: Arc<cr_obs::Histogram>,
    op_recommend_ns: Arc<cr_obs::Histogram>,
}

impl RelMetrics {
    /// The pre-resolved histogram for one plan operator.
    fn op_hist(&self, plan: &LogicalPlan) -> &Arc<cr_obs::Histogram> {
        match plan {
            LogicalPlan::Scan { .. } => &self.op_scan_ns,
            LogicalPlan::Filter { .. } => &self.op_filter_ns,
            LogicalPlan::Project { .. } => &self.op_project_ns,
            LogicalPlan::Join { .. } => &self.op_join_ns,
            LogicalPlan::Aggregate { .. } => &self.op_aggregate_ns,
            LogicalPlan::Sort { .. } => &self.op_sort_ns,
            LogicalPlan::Limit { .. } => &self.op_limit_ns,
            LogicalPlan::Values { .. } => &self.op_values_ns,
            LogicalPlan::Union { .. } => &self.op_union_ns,
            LogicalPlan::Extend { .. } => &self.op_extend_ns,
            LogicalPlan::Recommend { .. } => &self.op_recommend_ns,
        }
    }
}

fn metrics() -> &'static RelMetrics {
    static M: OnceLock<RelMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = cr_obs::Registry::global();
        RelMetrics {
            queries: r.counter("relation.queries"),
            query_ns: r.histogram("relation.query_ns"),
            rows_out: r.counter("relation.rows_out"),
            scan_seq: r.counter("relation.scan.seq_scan"),
            scan_pk: r.counter("relation.scan.pk_lookup"),
            scan_index_eq: r.counter("relation.scan.index_eq"),
            scan_index_range: r.counter("relation.scan.index_range"),
            parallel_ops: r.counter("relation.parallel.ops"),
            partitions_spawned: r.counter("relation.parallel.partitions_spawned"),
            adaptive_fallbacks: r.counter("relation.parallel.adaptive_fallbacks"),
            op_scan_ns: r.histogram("relation.op.scan_ns"),
            op_filter_ns: r.histogram("relation.op.filter_ns"),
            op_project_ns: r.histogram("relation.op.project_ns"),
            op_join_ns: r.histogram("relation.op.join_ns"),
            op_aggregate_ns: r.histogram("relation.op.aggregate_ns"),
            op_sort_ns: r.histogram("relation.op.sort_ns"),
            op_limit_ns: r.histogram("relation.op.limit_ns"),
            op_values_ns: r.histogram("relation.op.values_ns"),
            op_union_ns: r.histogram("relation.op.union_ns"),
            op_extend_ns: r.histogram("relation.op.extend_ns"),
            op_recommend_ns: r.histogram("relation.op.recommend_ns"),
        }
    })
}

// ---------------------------------------------------------------------
// Execution options + partition plumbing
// ---------------------------------------------------------------------

/// Knobs for physical execution.
///
/// With `parallelism > 1`, scans, filters, projections, hash joins, and
/// aggregations split their input across up to that many scoped worker
/// threads (the vendored `crossbeam::thread::scope`). Every parallel
/// operator reassembles its partitions deterministically, so output row
/// order is identical to the serial path; the only permitted divergence
/// is last-ulp float summation order in SUM/AVG partials (see DESIGN.md).
///
/// `min_partition_rows` is the per-worker input floor: an operator stays
/// serial unless each spawned partition would receive at least this many
/// rows, so thread spawn cost never dominates small operators. Tests can
/// set it to 1 to force parallel execution on tiny inputs.
///
/// With `adaptive` on (the default), an operator also stays serial when
/// the host has a single CPU — partitioning there is pure overhead (the
/// partitions time-slice one core), observed as parallel "speedups" of
/// 0.4–0.8× on 1-CPU machines. Tests that assert on partitioned
/// execution regardless of the host set `adaptive: false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    pub parallelism: usize,
    pub min_partition_rows: usize,
    /// Fall back to serial execution when parallelism cannot pay off
    /// (single-CPU host, sub-floor input). The decision is surfaced in
    /// EXPLAIN ANALYZE and as a span attribute.
    pub adaptive: bool,
    /// Rows per expression-kernel invocation on the vectorized executor
    /// (the default path). `0` selects the row-at-a-time executor — the
    /// differential oracle, and the only path that honors partitioned
    /// parallelism (`parallelism`/`min_partition_rows` apply there;
    /// the vectorized path runs each operator serially and records the
    /// adaptive decision instead).
    pub batch_size: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            parallelism: 1,
            min_partition_rows: 2048,
            adaptive: true,
            batch_size: 1024,
        }
    }
}

/// Cached `std::thread::available_parallelism()` (1 when unknown).
pub fn host_parallelism() -> usize {
    static H: OnceLock<usize> = OnceLock::new();
    *H.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

impl ExecOptions {
    /// Options with the given worker count and the default partition floor.
    pub fn with_parallelism(parallelism: usize) -> Self {
        ExecOptions {
            parallelism: parallelism.max(1),
            ..ExecOptions::default()
        }
    }

    /// Worker count for an operator over `rows` input rows: capped so each
    /// partition gets at least `min_partition_rows`, and forced to 1 by
    /// the adaptive guard on single-CPU hosts. 1 means "stay serial".
    fn threads_for(&self, rows: usize) -> usize {
        if self.parallelism <= 1 || (self.adaptive && host_parallelism() == 1) {
            return 1;
        }
        self.parallelism
            .min(rows / self.min_partition_rows.max(1))
            .max(1)
    }

    /// Why a parallel-eligible operator over `rows` input rows will stay
    /// serial under these options, if it will. `None` either means "it
    /// parallelizes" or "the caller asked for serial" (not a fallback).
    pub fn fallback_reason(&self, rows: usize) -> Option<&'static str> {
        if self.parallelism <= 1 {
            return None;
        }
        if self.adaptive && host_parallelism() == 1 {
            return Some("parallel=skipped(single_cpu)");
        }
        if self.parallelism.min(rows / self.min_partition_rows.max(1)) <= 1 {
            return Some("parallel=skipped(small_input)");
        }
        None
    }
}

/// Per-partition accounting from one parallel operator, surfaced in
/// EXPLAIN ANALYZE (`partitions=N` + per-partition wall times) and in the
/// `relation.parallel.*` counters.
struct ParInfo {
    partition_ns: Vec<u64>,
}

impl ParInfo {
    fn record(partition_ns: Vec<u64>) -> ParInfo {
        if cr_obs::enabled() {
            let m = metrics();
            m.parallel_ops.inc();
            m.partitions_spawned.add(partition_ns.len() as u64);
        }
        ParInfo { partition_ns }
    }

    fn detail(&self) -> Vec<String> {
        let times: Vec<String> = self
            .partition_ns
            .iter()
            .map(|ns| format!("{:.3}ms", *ns as f64 / 1e6))
            .collect();
        vec![
            format!("partitions={}", self.partition_ns.len()),
            format!("partition_times=[{}]", times.join(",")),
        ]
    }
}

fn push_par_detail(detail: &mut Vec<String>, info: &Option<ParInfo>) {
    if let Some(info) = info {
        detail.extend(info.detail());
    }
}

/// EXPLAIN / span note when a parallel-eligible operator stayed serial
/// under the adaptive guard (single-CPU host or sub-floor input).
fn push_adaptive_detail(
    detail: &mut Vec<String>,
    opts: &ExecOptions,
    rows_in: usize,
    par: &Option<ParInfo>,
) {
    if par.is_none() {
        if let Some(reason) = opts.fallback_reason(rows_in) {
            if cr_obs::enabled() {
                metrics().adaptive_fallbacks.inc();
            }
            detail.push(reason.to_owned());
        }
    }
}

/// Split an owned vec into `parts` contiguous chunks (sizes differ by at
/// most one) using pointer-moving `split_off`s — no per-row copying.
fn split_owned<T>(mut v: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let len = v.len();
    let mut out = Vec::with_capacity(parts);
    for p in (1..parts).rev() {
        out.push(v.split_off(p * len / parts));
    }
    out.push(v);
    out.reverse();
    out
}

/// Run `work` over each chunk on its own scoped thread, timing each
/// worker, and return the per-chunk results in chunk order (first error
/// in chunk order wins) plus the recorded [`ParInfo`].
///
/// This is the single choke point for every parallel operator, so it is
/// also where cross-thread trace linkage happens: the spawning thread's
/// current span becomes the parent of one `partition` span per worker.
fn run_partitioned<T, R>(
    chunks: Vec<T>,
    work: impl Fn(T) -> RelResult<R> + Sync,
) -> RelResult<(Vec<R>, ParInfo)>
where
    T: Send,
    R: Send,
{
    let work = &work;
    let parent = if cr_obs::trace::enabled() {
        cr_obs::trace::current_context()
    } else {
        None
    };
    let joined: Vec<(RelResult<R>, u64)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(i, chunk)| {
                s.spawn(move |_| {
                    let mut span = match parent {
                        Some(ctx) => cr_obs::trace::TraceSpan::child_of(ctx, "partition"),
                        None => cr_obs::trace::TraceSpan::noop(),
                    };
                    if span.is_recording() {
                        span.attr("partition", i.to_string());
                    }
                    let t0 = Instant::now();
                    let r = work(chunk);
                    (r, t0.elapsed().as_nanos() as u64)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition worker panicked"))
            .collect()
    })
    .expect("partition scope");
    let mut results = Vec::with_capacity(joined.len());
    let mut partition_ns = Vec::with_capacity(joined.len());
    for (r, ns) in joined {
        results.push(r?);
        partition_ns.push(ns);
    }
    Ok((results, ParInfo::record(partition_ns)))
}

/// A fully materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Empty result with a schema.
    pub fn empty(schema: Schema) -> Self {
        ResultSet {
            schema,
            rows: Vec::new(),
        }
    }

    /// Column index by (unqualified) name.
    pub fn column_index(&self, name: &str) -> RelResult<usize> {
        self.schema.index_of(name)
    }

    /// Iterate a single column's values.
    pub fn column_values(&self, name: &str) -> RelResult<Vec<&Value>> {
        let i = self.column_index(name)?;
        Ok(self.rows.iter().map(|r| &r[i]).collect())
    }

    /// First row, first column — for scalar queries (`SELECT COUNT(*) ...`).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// Render as an aligned text table (used by the example binaries to
    /// reproduce the paper's screenshots in terminal form).
    pub fn to_text_table(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        if s.len() > widths[i] {
                            widths[i] = s.len();
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                let _ = write!(out, "+-{}-", "-".repeat(*w));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, h) in headers.iter().enumerate() {
            let _ = write!(out, "| {h:<width$} ", width = widths[i]);
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                let _ = write!(out, "| {c:<width$} ", width = widths[i]);
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }
}

/// Execute a logical plan against a catalog, materializing the result.
///
/// When metrics collection is on ([`cr_obs::enabled`]) this records the
/// query counter and latency histogram; otherwise the only overhead over
/// raw execution is one relaxed atomic load.
pub fn execute(plan: &LogicalPlan, catalog: &Catalog) -> RelResult<ResultSet> {
    execute_with(plan, catalog, &ExecOptions::default())
}

/// [`execute`] with explicit [`ExecOptions`] (parallel partitioned
/// operators when `opts.parallelism > 1`). Results are row-for-row
/// identical to the serial path regardless of the options.
pub fn execute_with(
    plan: &LogicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> RelResult<ResultSet> {
    // Tracing and slow-query capture need the profiled executor (spans
    // and EXPLAIN ANALYZE trees are per-node); route through it when
    // either is armed. Both checks are one relaxed load.
    if cr_obs::trace::enabled() || cr_obs::trace::slow_query_threshold_ns().is_some() {
        return execute_traced_with(plan, catalog, opts);
    }
    let started = if cr_obs::enabled() {
        Some(Instant::now())
    } else {
        None
    };
    let rows = if opts.batch_size > 0 {
        run_batched(plan, catalog, opts)?.to_rows()
    } else {
        run(plan, catalog, opts)?.into_owned()
    };
    if let Some(t0) = started {
        let m = metrics();
        m.queries.inc();
        m.rows_out.add(rows.len() as u64);
        m.query_ns.record_duration(t0.elapsed());
    }
    Ok(ResultSet {
        schema: plan.schema().clone(),
        rows,
    })
}

/// Capture a slow request into the flight recorder's slow-query log if
/// the configured threshold is set and exceeded.
fn maybe_capture_slow(label: &str, fingerprint: u64, elapsed_ns: u64, profile: &OpProfile) {
    if let Some(threshold) = cr_obs::trace::slow_query_threshold_ns() {
        if elapsed_ns >= threshold {
            cr_obs::trace::capture_slow_query(label, fingerprint, elapsed_ns, profile.render());
        }
    }
}

/// [`execute_with`] under tracing: one `relation.query` span over the
/// whole request (operator and partition spans nest below it via
/// [`run_profiled`]), plus slow-query capture with the plan fingerprint
/// and the full EXPLAIN ANALYZE tree.
fn execute_traced_with(
    plan: &LogicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> RelResult<ResultSet> {
    let mut span = cr_obs::trace::TraceSpan::child("relation.query");
    let t0 = Instant::now();
    let (rows, profile) = if opts.batch_size > 0 {
        let (batch, profile) = run_batched_profiled(plan, catalog, opts)?;
        (batch.to_rows(), profile)
    } else {
        let (rows, profile) = run_profiled(plan, catalog, opts)?;
        (rows.into_owned(), profile)
    };
    let elapsed = t0.elapsed();
    if cr_obs::enabled() {
        let m = metrics();
        m.queries.inc();
        m.rows_out.add(rows.len() as u64);
        m.query_ns.record_duration(elapsed);
    }
    let fingerprint = plan.fingerprint();
    let elapsed_ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
    if span.is_recording() {
        span.attr("rows_out", rows.len().to_string());
        span.attr("fingerprint", format!("{fingerprint:016x}"));
    }
    maybe_capture_slow("relation.query", fingerprint, elapsed_ns, &profile);
    Ok(ResultSet {
        schema: plan.schema().clone(),
        rows,
    })
}

/// Execute a plan with per-operator profiling: every physical operator is
/// wrapped with rows-in/rows-out/elapsed accounting and the access path
/// it chose, yielding an `EXPLAIN ANALYZE`-style [`OpProfile`] tree next
/// to the normal [`ResultSet`]. Profiling cost is per plan *node* (one
/// clock read each), not per row, so it stays within a few percent of
/// [`execute`] — the `instrumentation_overhead` bench pins this down.
pub fn execute_instrumented(
    plan: &LogicalPlan,
    catalog: &Catalog,
) -> RelResult<(ResultSet, OpProfile)> {
    execute_instrumented_with(plan, catalog, &ExecOptions::default())
}

/// [`execute_instrumented`] with explicit [`ExecOptions`]: parallel
/// operators additionally annotate their profile node with
/// `partitions=N` and per-partition wall times.
pub fn execute_instrumented_with(
    plan: &LogicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> RelResult<(ResultSet, OpProfile)> {
    let mut span = cr_obs::trace::TraceSpan::child("relation.query");
    let started = Instant::now();
    let (rows, profile) = if opts.batch_size > 0 {
        let (batch, profile) = run_batched_profiled(plan, catalog, opts)?;
        (batch.to_rows(), profile)
    } else {
        let (rows, profile) = run_profiled(plan, catalog, opts)?;
        (rows.into_owned(), profile)
    };
    let elapsed = started.elapsed();
    if cr_obs::enabled() {
        let m = metrics();
        m.queries.inc();
        m.rows_out.add(rows.len() as u64);
        m.query_ns.record_duration(elapsed);
    }
    let fingerprint = plan.fingerprint();
    if span.is_recording() {
        span.attr("rows_out", rows.len().to_string());
        span.attr("fingerprint", format!("{fingerprint:016x}"));
    }
    maybe_capture_slow(
        "relation.query",
        fingerprint,
        elapsed.as_nanos().min(u64::MAX as u128) as u64,
        &profile,
    );
    Ok((
        ResultSet {
            schema: plan.schema().clone(),
            rows,
        },
        profile,
    ))
}

/// The row-at-a-time walker. Returns `Cow` so `LogicalPlan::Values`
/// lends its literal rows instead of cloning them on every run — copies
/// happen only when an ancestor operator actually consumes owned rows.
fn run<'p>(
    plan: &'p LogicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> RelResult<Cow<'p, [Row]>> {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filter,
            ..
        } => Ok(Cow::Owned(
            catalog
                .with_table(table, |t| scan_table(t, projection, filter, opts))??
                .0,
        )),

        LogicalPlan::Filter { input, predicate } => Ok(Cow::Owned(
            filter_rows_opt(run(input, catalog, opts)?.into_owned(), predicate, opts)?.0,
        )),

        LogicalPlan::Project { input, exprs, .. } => Ok(Cow::Owned(
            project_rows_opt(run(input, catalog, opts)?.into_owned(), exprs, opts)?.0,
        )),

        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            ..
        } => {
            let left_rows = run(left, catalog, opts)?.into_owned();
            let right_rows = run(right, catalog, opts)?.into_owned();
            let (rows, _, _) = join_rows_opt(
                left_rows,
                right_rows,
                left.schema().len(),
                right.schema().len(),
                *kind,
                on,
                opts,
            )?;
            Ok(Cow::Owned(rows))
        }

        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => Ok(Cow::Owned(
            aggregate_rows_opt(&run(input, catalog, opts)?, group_by, aggs, opts)?.0,
        )),

        LogicalPlan::Sort { input, keys } => Ok(Cow::Owned(sort_rows(
            run(input, catalog, opts)?.into_owned(),
            keys,
        )?)),

        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => Ok(Cow::Owned(limit_rows(
            run(input, catalog, opts)?.into_owned(),
            *limit,
            *offset,
        ))),

        LogicalPlan::Values { rows, .. } => Ok(Cow::Borrowed(rows.as_slice())),

        LogicalPlan::Union { left, right } => {
            let mut rows = run(left, catalog, opts)?.into_owned();
            match run(right, catalog, opts)? {
                Cow::Owned(mut r) => rows.append(&mut r),
                Cow::Borrowed(r) => rows.extend_from_slice(r),
            }
            Ok(Cow::Owned(rows))
        }

        LogicalPlan::Extend {
            input,
            related,
            key_col,
            rating,
            ..
        } => {
            let input_rows = run(input, catalog, opts)?.into_owned();
            let related_rows = run(related, catalog, opts)?;
            Ok(Cow::Owned(
                extend_rows_opt(input_rows, &related_rows, *key_col, *rating, opts)?.0,
            ))
        }

        LogicalPlan::Recommend {
            target,
            comparator,
            spec,
            ..
        } => {
            let target_rows = run(target, catalog, opts)?.into_owned();
            let comparator_rows = run(comparator, catalog, opts)?;
            Ok(Cow::Owned(
                recommend_rows_opt(target_rows, &comparator_rows, spec, opts)?.0,
            ))
        }
    }
}

/// Profiled twin of [`run`]: same operator implementations (the shared
/// `*_rows` helpers), with each node timed and annotated.
fn run_profiled<'p>(
    plan: &'p LogicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> RelResult<(Cow<'p, [Row]>, OpProfile)> {
    // Opened before recursing so child operators (and partition workers)
    // nest under this node in the trace; the operator name is only known
    // after the match, hence the rename below.
    let mut span = cr_obs::trace::TraceSpan::child("op");
    let t0 = Instant::now();
    let (rows, op, detail, children) = match plan {
        LogicalPlan::Scan {
            table,
            alias,
            projection,
            filter,
            ..
        } => {
            let (scanned, table_len) = catalog.with_table(table, |t| {
                (scan_table(t, projection, filter, opts), t.len())
            })?;
            let (rows, path, par) = scanned?;
            let mut detail = vec![format!("access={path}")];
            if let Some(f) = filter {
                detail.push(format!("filter={f}"));
            }
            push_par_detail(&mut detail, &par);
            if matches!(path, AccessPath::SeqScan) {
                push_adaptive_detail(&mut detail, opts, table_len, &par);
            }
            let op = match alias {
                Some(a) if a != table => format!("Scan {table} AS {a}"),
                _ => format!("Scan {table}"),
            };
            (Cow::Owned(rows), op, detail, Vec::new())
        }

        LogicalPlan::Filter { input, predicate } => {
            let (rows, child) = run_profiled(input, catalog, opts)?;
            let rows_in = rows.len();
            let (rows, par) = filter_rows_opt(rows.into_owned(), predicate, opts)?;
            let mut detail = vec![format!("predicate={predicate}")];
            push_par_detail(&mut detail, &par);
            push_adaptive_detail(&mut detail, opts, rows_in, &par);
            (Cow::Owned(rows), "Filter".to_owned(), detail, vec![child])
        }

        LogicalPlan::Project { input, exprs, .. } => {
            let (rows, child) = run_profiled(input, catalog, opts)?;
            let rows_in = rows.len();
            let (rows, par) = project_rows_opt(rows.into_owned(), exprs, opts)?;
            let mut detail = vec![format!("exprs={}", exprs.len())];
            push_par_detail(&mut detail, &par);
            push_adaptive_detail(&mut detail, opts, rows_in, &par);
            (Cow::Owned(rows), "Project".to_owned(), detail, vec![child])
        }

        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            ..
        } => {
            let (left_rows, lchild) = run_profiled(left, catalog, opts)?;
            let (right_rows, rchild) = run_profiled(right, catalog, opts)?;
            let rows_in = left_rows.len();
            let (rows, info, par) = join_rows_opt(
                left_rows.into_owned(),
                right_rows.into_owned(),
                left.schema().len(),
                right.schema().len(),
                *kind,
                on,
                opts,
            )?;
            let op = if info.hash {
                "HashJoin"
            } else {
                "NestedLoopJoin"
            };
            let mut detail = vec![format!("kind={kind:?}")];
            if info.hash {
                detail.push(format!("keys={}", info.keys));
                detail.push("build=right".to_owned());
            }
            push_par_detail(&mut detail, &par);
            if info.hash {
                push_adaptive_detail(&mut detail, opts, rows_in, &par);
            }
            (
                Cow::Owned(rows),
                op.to_owned(),
                detail,
                vec![lchild, rchild],
            )
        }

        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let (rows, child) = run_profiled(input, catalog, opts)?;
            let (out, par) = aggregate_rows_opt(&rows, group_by, aggs, opts)?;
            let mut detail = vec![
                format!("group_by={}", group_by.len()),
                format!("aggs={}", aggs.len()),
            ];
            push_par_detail(&mut detail, &par);
            push_adaptive_detail(&mut detail, opts, rows.len(), &par);
            (Cow::Owned(out), "Aggregate".to_owned(), detail, vec![child])
        }

        LogicalPlan::Sort { input, keys } => {
            let (rows, child) = run_profiled(input, catalog, opts)?;
            let rows = sort_rows(rows.into_owned(), keys)?;
            (
                Cow::Owned(rows),
                "Sort".to_owned(),
                vec![format!("keys={}", keys.len())],
                vec![child],
            )
        }

        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let (rows, child) = run_profiled(input, catalog, opts)?;
            let rows = limit_rows(rows.into_owned(), *limit, *offset);
            let mut detail = Vec::new();
            if let Some(n) = limit {
                detail.push(format!("limit={n}"));
            }
            if *offset > 0 {
                detail.push(format!("offset={offset}"));
            }
            (Cow::Owned(rows), "Limit".to_owned(), detail, vec![child])
        }

        LogicalPlan::Values { rows, .. } => (
            Cow::Borrowed(rows.as_slice()),
            "Values".to_owned(),
            Vec::new(),
            Vec::new(),
        ),

        LogicalPlan::Union { left, right } => {
            let (rows, lchild) = run_profiled(left, catalog, opts)?;
            let (right_rows, rchild) = run_profiled(right, catalog, opts)?;
            let mut rows = rows.into_owned();
            match right_rows {
                Cow::Owned(mut r) => rows.append(&mut r),
                Cow::Borrowed(r) => rows.extend_from_slice(r),
            }
            (
                Cow::Owned(rows),
                "Union".to_owned(),
                Vec::new(),
                vec![lchild, rchild],
            )
        }

        LogicalPlan::Extend {
            input,
            related,
            key_col,
            rating,
            as_name,
            ..
        } => {
            let (input_rows, ichild) = run_profiled(input, catalog, opts)?;
            let (related_rows, rchild) = run_profiled(related, catalog, opts)?;
            let rows_in = input_rows.len();
            let (rows, par) = extend_rows_opt(
                input_rows.into_owned(),
                &related_rows,
                *key_col,
                *rating,
                opts,
            )?;
            let mut detail = vec![
                format!("kind={}", if *rating { "ratings" } else { "set" }),
                format!("key=#{key_col}"),
                format!("as={as_name}"),
            ];
            push_par_detail(&mut detail, &par);
            push_adaptive_detail(&mut detail, opts, rows_in, &par);
            (
                Cow::Owned(rows),
                "Extend".to_owned(),
                detail,
                vec![ichild, rchild],
            )
        }

        LogicalPlan::Recommend {
            target,
            comparator,
            spec,
            ..
        } => {
            let (target_rows, tchild) = run_profiled(target, catalog, opts)?;
            let (comparator_rows, cchild) = run_profiled(comparator, catalog, opts)?;
            let rows_in = target_rows.len();
            let (rows, par) =
                recommend_rows_opt(target_rows.into_owned(), &comparator_rows, spec, opts)?;
            let mut detail = vec![
                format!("method={}", spec.method.name()),
                format!("agg={}", spec.agg),
            ];
            if let Some(k) = spec.k {
                detail.push(format!("top={k}"));
            }
            if spec.exclude_seen.is_some() {
                detail.push("exclude_seen".to_owned());
            }
            push_par_detail(&mut detail, &par);
            push_adaptive_detail(&mut detail, opts, rows_in, &par);
            (
                Cow::Owned(rows),
                "Recommend".to_owned(),
                detail,
                vec![tchild, cchild],
            )
        }
    };
    let elapsed = t0.elapsed();
    if cr_obs::enabled() {
        // Pre-resolved per-kind histogram: elapsed is already measured,
        // recording is one atomic bump (no Span, no registry lock).
        metrics().op_hist(plan).record_duration(elapsed);
    }
    if span.is_recording() {
        span.set_name(&op);
        span.attr("rows_out", rows.len().to_string());
        if !detail.is_empty() {
            span.attr("detail", detail.join(" "));
        }
    }
    let profile = OpProfile {
        op,
        detail,
        rows_out: rows.len(),
        elapsed,
        children,
    };
    Ok((rows, profile))
}

// ---------------------------------------------------------------------
// Row-level operator implementations, shared by the plain and profiled
// executors so both paths compute identical results.
// ---------------------------------------------------------------------

fn filter_rows(rows: Vec<Row>, predicate: &Expr) -> RelResult<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len() / 2);
    for r in rows {
        if predicate.eval_predicate(&r)? {
            out.push(r);
        }
    }
    Ok(out)
}

/// [`filter_rows`], partition-parallel when the options allow. Chunks are
/// contiguous and reassembled in order, so output order matches serial.
fn filter_rows_opt(
    rows: Vec<Row>,
    predicate: &Expr,
    opts: &ExecOptions,
) -> RelResult<(Vec<Row>, Option<ParInfo>)> {
    let threads = opts.threads_for(rows.len());
    if threads <= 1 {
        return Ok((filter_rows(rows, predicate)?, None));
    }
    let (parts, info) = run_partitioned(split_owned(rows, threads), |chunk| {
        filter_rows(chunk, predicate)
    })?;
    Ok((parts.into_iter().flatten().collect(), Some(info)))
}

fn project_rows(rows: Vec<Row>, exprs: &[(Expr, String)]) -> RelResult<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        let mut projected = Vec::with_capacity(exprs.len());
        for (e, _) in exprs {
            projected.push(e.eval(&r)?);
        }
        out.push(projected);
    }
    Ok(out)
}

/// [`project_rows`], partition-parallel when the options allow.
fn project_rows_opt(
    rows: Vec<Row>,
    exprs: &[(Expr, String)],
    opts: &ExecOptions,
) -> RelResult<(Vec<Row>, Option<ParInfo>)> {
    let threads = opts.threads_for(rows.len());
    if threads <= 1 {
        return Ok((project_rows(rows, exprs)?, None));
    }
    let (parts, info) = run_partitioned(split_owned(rows, threads), |chunk| {
        project_rows(chunk, exprs)
    })?;
    Ok((parts.into_iter().flatten().collect(), Some(info)))
}

fn limit_rows(rows: Vec<Row>, limit: Option<usize>, offset: usize) -> Vec<Row> {
    let it = rows.into_iter().skip(offset);
    match limit {
        Some(n) => it.take(n).collect(),
        None => it.collect(),
    }
}

// ---------------------------------------------------------------------
// FlexRecs operators: Extend (ε) and Recommend (▷)
// ---------------------------------------------------------------------

/// Treat a value as a scalar for the FlexRecs operators: nested
/// Set/Ratings values are not scalars; everything else (including NULL)
/// is. Mirrors the workflow layer's `Datum::as_scalar`.
fn as_rec_scalar(v: &Value) -> Option<&Value> {
    if v.is_nested() {
        None
    } else {
        Some(v)
    }
}

/// Build the fk → nested-attribute map from an iterator of related-side
/// triples `(fk, key, rating)` — `rating` is `None` in Set mode. The
/// shared core of the row and batched Extend implementations: related
/// entries are consumed in input order, so the float accumulation order of
/// duplicate-key rating averages is deterministic on both paths; set
/// elements are sorted and deduplicated, ratings sorted by key.
fn build_nest_map_core(
    related: impl Iterator<Item = (Value, Value, Option<Value>)>,
    rating: bool,
) -> RelResult<HashMap<Value, Value>> {
    let mut map: HashMap<Value, Value> = HashMap::new();
    if rating {
        let mut acc: HashMap<Value, HashMap<Value, (f64, usize)>> = HashMap::new();
        for (fk, key, rv) in related {
            let rv = rv.unwrap_or(Value::Null);
            if fk.is_null() || rv.is_null() {
                continue;
            }
            let r = rv.as_float()?;
            let e = acc.entry(fk).or_default().entry(key).or_insert((0.0, 0));
            e.0 += r;
            e.1 += 1;
        }
        for (fk, per_key) in acc {
            let mut v: Vec<(Value, f64)> = per_key
                .into_iter()
                .map(|(k, (sum, n))| (k, sum / n as f64))
                .collect();
            v.sort_by(|a, b| a.0.total_cmp(&b.0));
            map.insert(fk, Value::Ratings(v));
        }
    } else {
        let mut acc: HashMap<Value, Vec<Value>> = HashMap::new();
        for (fk, key, _) in related {
            if fk.is_null() {
                continue;
            }
            acc.entry(fk).or_default().push(key);
        }
        for (fk, mut v) in acc {
            v.sort();
            v.dedup();
            map.insert(fk, Value::Set(v));
        }
    }
    Ok(map)
}

/// [`build_nest_map_core`] over materialized rows (`[fk, key]` for Set,
/// `[fk, key, rating]` for Ratings).
fn build_nest_map(related_rows: &[Row], rating: bool) -> RelResult<HashMap<Value, Value>> {
    build_nest_map_core(
        related_rows.iter().map(|row| {
            (
                row[0].clone(),
                row[1].clone(),
                if rating { Some(row[2].clone()) } else { None },
            )
        }),
        rating,
    )
}

/// Append the nested attribute to each input row by probing the nest map.
fn extend_probe(
    rows: Vec<Row>,
    key_col: usize,
    rating: bool,
    map: &HashMap<Value, Value>,
) -> RelResult<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len());
    for mut row in rows {
        let key = as_rec_scalar(&row[key_col])
            .ok_or_else(|| RelError::Invalid("extend key not scalar".into()))?;
        let nested = match map.get(key) {
            Some(v) => v.clone(),
            None if rating => Value::Ratings(Vec::new()),
            None => Value::Set(Vec::new()),
        };
        row.push(nested);
        out.push(row);
    }
    Ok(out)
}

fn extend_rows(
    input_rows: Vec<Row>,
    related_rows: &[Row],
    key_col: usize,
    rating: bool,
) -> RelResult<Vec<Row>> {
    let map = build_nest_map(related_rows, rating)?;
    extend_probe(input_rows, key_col, rating, &map)
}

/// [`extend_rows`], with the probe side partition-parallel when the
/// options allow. The nest map is always built serially (fixed float
/// accumulation order); probing is per-row independent and chunks
/// reassemble in order, so output is byte-identical to serial.
fn extend_rows_opt(
    input_rows: Vec<Row>,
    related_rows: &[Row],
    key_col: usize,
    rating: bool,
    opts: &ExecOptions,
) -> RelResult<(Vec<Row>, Option<ParInfo>)> {
    let threads = opts.threads_for(input_rows.len());
    if threads <= 1 {
        return Ok((
            extend_rows(input_rows, related_rows, key_col, rating)?,
            None,
        ));
    }
    let map = build_nest_map(related_rows, rating)?;
    let map = &map;
    let (parts, info) = run_partitioned(split_owned(input_rows, threads), |chunk| {
        extend_probe(chunk, key_col, rating, map)
    })?;
    Ok((parts.into_iter().flatten().collect(), Some(info)))
}

/// Precomputed per-run state for the recommend operator: the exclusion
/// key set and (for `RatingLookup`) one key → rating map per comparator.
struct RecContext<'a> {
    seen: HashSet<&'a Value>,
    lookup: Vec<HashMap<&'a Value, f64>>,
}

fn build_rec_context<'a>(comparator_rows: &'a [Row], spec: &RecSpec) -> RecContext<'a> {
    let mut seen: HashSet<&Value> = HashSet::new();
    if let Some((_, c_idx)) = spec.exclude_seen {
        for c in comparator_rows {
            match &c[c_idx] {
                Value::Set(items) => seen.extend(items.iter()),
                Value::Ratings(r) => seen.extend(r.iter().map(|(k, _)| k)),
                _ => {}
            }
        }
    }
    let lookup = if matches!(spec.method, RecMethod::RatingLookup) {
        comparator_rows
            .iter()
            .map(|c| {
                c[spec.comparator_col]
                    .as_ratings()
                    .map(|r| r.iter().map(|(k, v)| (k, *v)).collect())
                    .unwrap_or_default()
            })
            .collect()
    } else {
        Vec::new()
    };
    RecContext { seen, lookup }
}

/// Score one target row against every comparator row. Returns `None` when
/// the target is excluded, matched no comparator, or scored ≤ 0. Pure per
/// target, which is what makes the parallel path trivially deterministic.
fn score_target(
    mut t: Row,
    comparator_rows: &[Row],
    spec: &RecSpec,
    ctx: &RecContext<'_>,
) -> Option<(f64, Row)> {
    if let Some((t_idx, _)) = spec.exclude_seen {
        if let Some(v) = as_rec_scalar(&t[t_idx]) {
            if ctx.seen.contains(v) {
                return None;
            }
        }
    }
    let mut acc_sum = 0.0;
    let mut acc_weight = 0.0;
    let mut acc_n = 0usize;
    let mut acc_max = f64::NEG_INFINITY;
    for (i, c) in comparator_rows.iter().enumerate() {
        let score: Option<f64> = match &spec.method {
            RecMethod::Text(sim) => match (
                as_rec_scalar(&t[spec.target_col]),
                as_rec_scalar(&c[spec.comparator_col]),
            ) {
                (Some(Value::Text(a)), Some(Value::Text(b))) => Some(sim.score(a, b)),
                _ => None,
            },
            RecMethod::Set(sim) => {
                match (t[spec.target_col].as_set(), c[spec.comparator_col].as_set()) {
                    (Some(a), Some(b)) => Some(sim.score(a, b)),
                    _ => None,
                }
            }
            RecMethod::Ratings { sim, min_common } => match (
                t[spec.target_col].as_ratings(),
                c[spec.comparator_col].as_ratings(),
            ) {
                (Some(a), Some(b)) => Some(sim.score(a, b, *min_common)),
                _ => None,
            },
            RecMethod::RatingLookup => {
                as_rec_scalar(&t[spec.target_col]).and_then(|key| ctx.lookup[i].get(key).copied())
            }
        };
        let weight = match spec.agg {
            RecAggPlan::WeightedAvg { weight_col } => match as_rec_scalar(&c[weight_col]) {
                Some(Value::Float(f)) => *f,
                Some(Value::Int(n)) => *n as f64,
                _ => 0.0,
            },
            _ => 1.0,
        };
        if let Some(s) = score {
            acc_sum += s * weight;
            acc_weight += weight;
            acc_n += 1;
            acc_max = acc_max.max(s);
        }
    }
    if acc_n == 0 {
        return None;
    }
    let final_score = match spec.agg {
        RecAggPlan::Avg => acc_sum / acc_n as f64,
        RecAggPlan::Sum => acc_sum,
        RecAggPlan::Max => acc_max,
        RecAggPlan::WeightedAvg { .. } => {
            if acc_weight <= 0.0 {
                return None;
            }
            acc_sum / acc_weight
        }
    };
    if final_score <= 0.0 {
        return None;
    }
    t.push(Value::float(final_score));
    Some((final_score, t))
}

/// Sort scored targets by score descending (stable; ties broken by the
/// first column when scalar) and apply top-k.
fn finish_recommend(mut scored: Vec<(f64, Row)>, spec: &RecSpec) -> Vec<Row> {
    use std::cmp::Ordering;
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(Ordering::Equal)
            .then_with(|| {
                match (
                    a.1.first().and_then(as_rec_scalar),
                    b.1.first().and_then(as_rec_scalar),
                ) {
                    (Some(x), Some(y)) => x.total_cmp(y),
                    _ => Ordering::Equal,
                }
            })
    });
    if let Some(k) = spec.k {
        scored.truncate(k);
    }
    scored.into_iter().map(|(_, r)| r).collect()
}

fn recommend_rows(
    target_rows: Vec<Row>,
    comparator_rows: &[Row],
    spec: &RecSpec,
) -> RelResult<Vec<Row>> {
    let ctx = build_rec_context(comparator_rows, spec);
    let mut scored = Vec::new();
    for t in target_rows {
        if let Some(s) = score_target(t, comparator_rows, spec, &ctx) {
            scored.push(s);
        }
    }
    Ok(finish_recommend(scored, spec))
}

/// [`recommend_rows`], scoring targets partition-parallel when the options
/// allow. Chunk outputs concatenate in order (preserving original target
/// order) before the stable final sort, so output is byte-identical to
/// serial.
fn recommend_rows_opt(
    target_rows: Vec<Row>,
    comparator_rows: &[Row],
    spec: &RecSpec,
    opts: &ExecOptions,
) -> RelResult<(Vec<Row>, Option<ParInfo>)> {
    let threads = opts.threads_for(target_rows.len());
    if threads <= 1 {
        return Ok((recommend_rows(target_rows, comparator_rows, spec)?, None));
    }
    let ctx = build_rec_context(comparator_rows, spec);
    let ctx = &ctx;
    let (parts, info) = run_partitioned(split_owned(target_rows, threads), |chunk| {
        let mut part = Vec::new();
        for t in chunk {
            if let Some(s) = score_target(t, comparator_rows, spec, ctx) {
                part.push(s);
            }
        }
        Ok(part)
    })?;
    let scored: Vec<(f64, Row)> = parts.into_iter().flatten().collect();
    Ok((finish_recommend(scored, spec), Some(info)))
}

// ---------------------------------------------------------------------
// Scan + access-path selection
// ---------------------------------------------------------------------

/// How a scan will fetch rows.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    SeqScan,
    /// Primary-key point lookup with the given key.
    PkLookup(Vec<Value>),
    /// Secondary-index equality lookup: (index name, key).
    IndexEq(String, Vec<Value>),
    /// Secondary B-tree index range scan on its leading column.
    IndexRange {
        index: String,
        lower: Bound<Value>,
        upper: Bound<Value>,
    },
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn key(vals: &[Value]) -> String {
            vals.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        }
        fn bound(b: &Bound<Value>, open: &str, close: &str) -> String {
            match b {
                Bound::Included(v) => format!("{open}={v}"),
                Bound::Excluded(v) => format!("{open}{v}"),
                Bound::Unbounded => close.to_owned(),
            }
        }
        match self {
            AccessPath::SeqScan => write!(f, "SeqScan"),
            AccessPath::PkLookup(k) => write!(f, "PkLookup[{}]", key(k)),
            AccessPath::IndexEq(name, k) => write!(f, "IndexEq({name})[{}]", key(k)),
            AccessPath::IndexRange {
                index,
                lower,
                upper,
            } => write!(
                f,
                "IndexRange({index})[{}..{}]",
                bound(lower, ">", ""),
                bound(upper, "<", "")
            ),
        }
    }
}

/// Decide the access path for a scan's pushed-down filter. Public so that
/// benches and tests can assert index usage (ablation A3 in DESIGN.md).
pub fn choose_access_path(table: &Table, filter: &Option<Expr>) -> AccessPath {
    let Some(filter) = filter else {
        return AccessPath::SeqScan;
    };
    let conjuncts = filter.split_conjunction();

    // 1. Full primary-key equality?
    let pk = table.pk_columns();
    if !pk.is_empty() {
        let mut key: Vec<Option<Value>> = vec![None; pk.len()];
        for c in &conjuncts {
            if let Some((col, v)) = as_col_eq_literal(c) {
                if let Some(pos) = pk.iter().position(|&p| p == col) {
                    key[pos] = Some(v);
                }
            }
        }
        if key.iter().all(Option::is_some) {
            return AccessPath::PkLookup(key.into_iter().map(Option::unwrap).collect());
        }
    }

    // 2. Single-column secondary index equality?
    for c in &conjuncts {
        if let Some((col, v)) = as_col_eq_literal(c) {
            if let Some(idx) = table.index_on_column(col) {
                if idx.columns.len() == 1 {
                    return AccessPath::IndexEq(idx.name.clone(), vec![v]);
                }
            }
        }
    }

    // 3. Range on a B-tree index's leading column?
    let mut range: HashMap<usize, (Bound<Value>, Bound<Value>)> = HashMap::new();
    for c in &conjuncts {
        if let Some((col, op, v)) = as_col_cmp_literal(c) {
            let entry = range
                .entry(col)
                .or_insert((Bound::Unbounded, Bound::Unbounded));
            match op {
                BinOp::Gt => entry.0 = Bound::Excluded(v),
                BinOp::GtEq => entry.0 = Bound::Included(v),
                BinOp::Lt => entry.1 = Bound::Excluded(v),
                BinOp::LtEq => entry.1 = Bound::Included(v),
                _ => {}
            }
        }
    }
    for (col, (lo, hi)) in range {
        if matches!((&lo, &hi), (Bound::Unbounded, Bound::Unbounded)) {
            continue;
        }
        if let Some(idx) = table.index_on_column(col) {
            if idx.kind() == crate::index::IndexKind::BTree && idx.columns.len() == 1 {
                return AccessPath::IndexRange {
                    index: idx.name.clone(),
                    lower: lo,
                    upper: hi,
                };
            }
        }
    }

    AccessPath::SeqScan
}

fn as_col_eq_literal(e: &Expr) -> Option<(usize, Value)> {
    if let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = e
    {
        match (&**left, &**right) {
            (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => {
                return Some((*c, v.clone()))
            }
            _ => {}
        }
    }
    None
}

fn as_col_cmp_literal(e: &Expr) -> Option<(usize, BinOp, Value)> {
    if let Expr::Binary { op, left, right } = e {
        if !op.is_comparison() {
            return None;
        }
        match (&**left, &**right) {
            (Expr::Column(c), Expr::Literal(v)) => return Some((*c, *op, v.clone())),
            (Expr::Literal(v), Expr::Column(c)) => {
                // Flip the comparison: v < col  ≡  col > v.
                let flipped = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::LtEq => BinOp::GtEq,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::GtEq => BinOp::LtEq,
                    other => *other,
                };
                return Some((*c, flipped, v.clone()));
            }
            _ => {}
        }
    }
    None
}

/// Scan a table, returning the matching rows and the access path that
/// served them (surfaced in EXPLAIN ANALYZE output).
fn scan_table(
    table: &Table,
    projection: &Option<Vec<usize>>,
    filter: &Option<Expr>,
    opts: &ExecOptions,
) -> RelResult<(Vec<Row>, AccessPath, Option<ParInfo>)> {
    let path = choose_access_path(table, filter);
    if cr_obs::enabled() {
        let m = metrics();
        match &path {
            AccessPath::SeqScan => m.scan_seq.inc(),
            AccessPath::PkLookup(_) => m.scan_pk.inc(),
            AccessPath::IndexEq(..) => m.scan_index_eq.inc(),
            AccessPath::IndexRange { .. } => m.scan_index_range.inc(),
        }
    }
    let project = |r: &Row| -> Row {
        match projection {
            None => r.clone(),
            Some(cols) => cols.iter().map(|&i| r[i].clone()).collect(),
        }
    };
    let passes = |r: &Row| -> RelResult<bool> {
        match filter {
            Some(f) => f.eval_predicate(r),
            None => Ok(true),
        }
    };
    let mut par_info = None;
    let mut out = Vec::new();
    match &path {
        AccessPath::SeqScan => {
            let threads = opts.threads_for(table.len());
            if threads > 1 {
                // Contiguous slot ranges per worker; concatenating the
                // partition outputs in range order reproduces the serial
                // scan order exactly.
                let slots = table.slot_count();
                let ranges: Vec<std::ops::Range<usize>> = (0..threads)
                    .map(|p| (p * slots / threads)..((p + 1) * slots / threads))
                    .collect();
                let (parts, info) = run_partitioned(ranges, |range| {
                    let mut part = Vec::new();
                    for (_, r) in table.scan_slots(range) {
                        if passes(r)? {
                            part.push(project(r));
                        }
                    }
                    Ok(part)
                })?;
                out = parts.into_iter().flatten().collect();
                par_info = Some(info);
            } else {
                for (_, r) in table.scan() {
                    if passes(r)? {
                        out.push(project(r));
                    }
                }
            }
        }
        AccessPath::PkLookup(key) => {
            if let Some(r) = table.get_by_pk(key) {
                if passes(r)? {
                    out.push(project(r));
                }
            }
        }
        AccessPath::IndexEq(name, key) => {
            let idx = table
                .index(name)
                .ok_or_else(|| RelError::UnknownIndex(name.clone()))?;
            if let Some(rids) = idx.get(key) {
                for &rid in rids {
                    if let Some(r) = table.get(rid) {
                        if passes(r)? {
                            out.push(project(r));
                        }
                    }
                }
            }
        }
        AccessPath::IndexRange {
            index,
            lower,
            upper,
        } => {
            let idx = table
                .index(index)
                .ok_or_else(|| RelError::UnknownIndex(index.clone()))?;
            let lo_key = match &lower {
                Bound::Included(v) => Bound::Included(vec![v.clone()]),
                Bound::Excluded(v) => Bound::Excluded(vec![v.clone()]),
                Bound::Unbounded => Bound::Unbounded,
            };
            let hi_key = match &upper {
                Bound::Included(v) => Bound::Included(vec![v.clone()]),
                Bound::Excluded(v) => Bound::Excluded(vec![v.clone()]),
                Bound::Unbounded => Bound::Unbounded,
            };
            let lo_ref = match &lo_key {
                Bound::Included(k) => Bound::Included(k),
                Bound::Excluded(k) => Bound::Excluded(k),
                Bound::Unbounded => Bound::Unbounded,
            };
            let hi_ref = match &hi_key {
                Bound::Included(k) => Bound::Included(k),
                Bound::Excluded(k) => Bound::Excluded(k),
                Bound::Unbounded => Bound::Unbounded,
            };
            for rid in idx.range(lo_ref, hi_ref) {
                if let Some(r) = table.get(rid) {
                    if passes(r)? {
                        out.push(project(r));
                    }
                }
            }
        }
    }
    Ok((out, path, par_info))
}

// ---------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------

/// Extract equi-join keys from a join predicate bound over the concatenated
/// schema: conjuncts of the form `left_col = right_col`. Returns
/// `(left_keys, right_keys_relative, residual)`.
fn extract_equi_keys(on: &Expr, left_width: usize) -> (Vec<usize>, Vec<usize>, Vec<Expr>) {
    let mut lk = Vec::new();
    let mut rk = Vec::new();
    let mut residual = Vec::new();
    for c in on.split_conjunction() {
        if let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = &c
        {
            if let (Expr::Column(a), Expr::Column(b)) = (&**left, &**right) {
                let (a, b) = (*a, *b);
                if a < left_width && b >= left_width {
                    lk.push(a);
                    rk.push(b - left_width);
                    continue;
                }
                if b < left_width && a >= left_width {
                    lk.push(b);
                    rk.push(a - left_width);
                    continue;
                }
            }
        }
        residual.push(c);
    }
    (lk, rk, residual)
}

/// Which algorithm a join used (EXPLAIN ANALYZE annotation).
struct JoinInfo {
    hash: bool,
    keys: usize,
}

fn join_rows(
    left_rows: Vec<Row>,
    right_rows: Vec<Row>,
    left_width: usize,
    right_width: usize,
    kind: JoinKind,
    on: &Expr,
) -> RelResult<(Vec<Row>, JoinInfo)> {
    let (lk, rk, residual) = extract_equi_keys(on, left_width);
    let residual = if residual.is_empty() {
        None
    } else {
        Some(Expr::conjoin(residual))
    };

    let mut out = Vec::new();
    if lk.is_empty() {
        // Nested-loop join on the full predicate.
        for l in &left_rows {
            let mut matched = false;
            for r in &right_rows {
                let mut combined = Vec::with_capacity(left_width + right_width);
                combined.extend_from_slice(l);
                combined.extend_from_slice(r);
                if on.eval_predicate(&combined)? {
                    matched = true;
                    out.push(combined);
                }
            }
            if !matched && kind == JoinKind::LeftOuter {
                let mut combined = Vec::with_capacity(left_width + right_width);
                combined.extend_from_slice(l);
                combined.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(combined);
            }
        }
    } else {
        // Hash join: build on the right, probe from the left.
        let mut build: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right_rows.len());
        for (i, r) in right_rows.iter().enumerate() {
            let key: Vec<Value> = rk.iter().map(|&k| r[k].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue; // NULL keys never join
            }
            build.entry(key).or_default().push(i);
        }
        for l in &left_rows {
            let key: Vec<Value> = lk.iter().map(|&k| l[k].clone()).collect();
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                if let Some(idxs) = build.get(&key) {
                    for &i in idxs {
                        let mut combined = Vec::with_capacity(left_width + right_width);
                        combined.extend_from_slice(l);
                        combined.extend_from_slice(&right_rows[i]);
                        let ok = match &residual {
                            Some(p) => p.eval_predicate(&combined)?,
                            None => true,
                        };
                        if ok {
                            matched = true;
                            out.push(combined);
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::LeftOuter {
                let mut combined = Vec::with_capacity(left_width + right_width);
                combined.extend_from_slice(l);
                combined.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(combined);
            }
        }
    }
    Ok((
        out,
        JoinInfo {
            hash: !lk.is_empty(),
            keys: lk.len(),
        },
    ))
}

/// Hash partition for a row's join key, or `None` if any key column is
/// NULL (NULL keys never join). Both sides use the same function so
/// matching keys always land in the same partition.
fn key_partition(row: &Row, cols: &[usize], parts: usize) -> Option<usize> {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for &c in cols {
        if row[c].is_null() {
            return None;
        }
        row[c].hash(&mut h);
    }
    Some((h.finish() % parts as u64) as usize)
}

/// Hash-join one partition pair: build on the right rows, probe the left
/// rows (tagged with their original position) in order. The right rows
/// preserve their original relative order, so per-probe match order is
/// identical to the serial join's.
#[allow(clippy::too_many_arguments)]
fn join_partition(
    left: &[(usize, Row)],
    right: &[Row],
    left_width: usize,
    right_width: usize,
    kind: JoinKind,
    lk: &[usize],
    rk: &[usize],
    residual: &Option<Expr>,
) -> RelResult<Vec<(usize, Row)>> {
    let mut build: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right.len());
    for (i, r) in right.iter().enumerate() {
        let key: Vec<Value> = rk.iter().map(|&k| r[k].clone()).collect();
        build.entry(key).or_default().push(i);
    }
    let mut out = Vec::new();
    for (orig, l) in left {
        let key: Vec<Value> = lk.iter().map(|&k| l[k].clone()).collect();
        let mut matched = false;
        if !key.iter().any(Value::is_null) {
            if let Some(idxs) = build.get(&key) {
                for &i in idxs {
                    let mut combined = Vec::with_capacity(left_width + right_width);
                    combined.extend_from_slice(l);
                    combined.extend_from_slice(&right[i]);
                    let ok = match residual {
                        Some(p) => p.eval_predicate(&combined)?,
                        None => true,
                    };
                    if ok {
                        matched = true;
                        out.push((*orig, combined));
                    }
                }
            }
        }
        if !matched && kind == JoinKind::LeftOuter {
            let mut combined = Vec::with_capacity(left_width + right_width);
            combined.extend_from_slice(l);
            combined.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push((*orig, combined));
        }
    }
    Ok(out)
}

/// [`join_rows`], parallel for equi-joins when the options allow: both
/// sides are hash-partitioned by join key, partition pairs join on worker
/// threads, and the outputs merge by original left-row position — so the
/// result is row-for-row identical to the serial probe order.
fn join_rows_opt(
    left_rows: Vec<Row>,
    right_rows: Vec<Row>,
    left_width: usize,
    right_width: usize,
    kind: JoinKind,
    on: &Expr,
    opts: &ExecOptions,
) -> RelResult<(Vec<Row>, JoinInfo, Option<ParInfo>)> {
    let threads = opts.threads_for(left_rows.len() + right_rows.len());
    let (lk, rk, residual) = extract_equi_keys(on, left_width);
    if lk.is_empty() || threads <= 1 {
        let (rows, info) = join_rows(left_rows, right_rows, left_width, right_width, kind, on)?;
        return Ok((rows, info, None));
    }
    let residual = if residual.is_empty() {
        None
    } else {
        Some(Expr::conjoin(residual))
    };
    // NULL-keyed left rows can never match but still null-extend under
    // LEFT JOIN; spread them round-robin so no partition is starved.
    // NULL-keyed right rows are dropped, exactly like the serial build.
    let mut lparts: Vec<Vec<(usize, Row)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, l) in left_rows.into_iter().enumerate() {
        let p = key_partition(&l, &lk, threads).unwrap_or(i % threads);
        lparts[p].push((i, l));
    }
    let mut rparts: Vec<Vec<Row>> = (0..threads).map(|_| Vec::new()).collect();
    for r in right_rows {
        if let Some(p) = key_partition(&r, &rk, threads) {
            rparts[p].push(r);
        }
    }
    let (lk, rk, residual) = (&lk, &rk, &residual);
    let pairs: Vec<_> = lparts.into_iter().zip(rparts).collect();
    let (parts, info) = run_partitioned(pairs, |(lp, rp)| {
        join_partition(&lp, &rp, left_width, right_width, kind, lk, rk, residual)
    })?;
    let mut tagged: Vec<(usize, Row)> = parts.into_iter().flatten().collect();
    // Stable: a left row's multiple matches stay in their within-partition
    // (= serial probe) order.
    tagged.sort_by_key(|(i, _)| *i);
    let rows = tagged.into_iter().map(|(_, r)| r).collect();
    Ok((
        rows,
        JoinInfo {
            hash: true,
            keys: lk.len(),
        },
        Some(info),
    ))
}

// ---------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum {
        total: f64,
        any: bool,
        int: bool,
    },
    Avg {
        total: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    /// DISTINCT wrapper: collected values, finished by the inner fn.
    Distinct(Vec<Value>, AggFn),
}

impl AggState {
    fn new(a: &AggExpr) -> AggState {
        if a.distinct {
            return AggState::Distinct(Vec::new(), a.func);
        }
        match a.func {
            AggFn::Count | AggFn::CountStar => AggState::Count(0),
            AggFn::Sum => AggState::Sum {
                total: 0.0,
                any: false,
                int: true,
            },
            AggFn::Avg => AggState::Avg { total: 0.0, n: 0 },
            AggFn::Min => AggState::Min(None),
            AggFn::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Value, is_star: bool) -> RelResult<()> {
        match self {
            AggState::Count(n) => {
                if is_star || !v.is_null() {
                    *n += 1;
                }
            }
            AggState::Sum { total, any, int } => {
                if !v.is_null() {
                    if !matches!(v, Value::Int(_)) {
                        *int = false;
                    }
                    *total += v.as_float()?;
                    *any = true;
                }
            }
            AggState::Avg { total, n } => {
                if !v.is_null() {
                    *total += v.as_float()?;
                    *n += 1;
                }
            }
            AggState::Min(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v < *c) {
                    *cur = Some(v);
                }
            }
            AggState::Max(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v > *c) {
                    *cur = Some(v);
                }
            }
            AggState::Distinct(vals, _) => {
                if is_star || !v.is_null() {
                    vals.push(v);
                }
            }
        }
        Ok(())
    }

    /// Fold another partial state (from a later input chunk) into this
    /// one. Matches the serial `update` semantics: earlier-chunk values
    /// win MIN/MAX ties, DISTINCT collections concatenate in chunk order.
    fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(n), AggState::Count(m)) => *n += m,
            (
                AggState::Sum { total, any, int },
                AggState::Sum {
                    total: t2,
                    any: a2,
                    int: i2,
                },
            ) => {
                *total += t2;
                *any |= a2;
                *int &= i2;
            }
            (AggState::Avg { total, n }, AggState::Avg { total: t2, n: n2 }) => {
                *total += t2;
                *n += n2;
            }
            (AggState::Min(cur), AggState::Min(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|c| v < *c) {
                        *cur = Some(v);
                    }
                }
            }
            (AggState::Max(cur), AggState::Max(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|c| v > *c) {
                        *cur = Some(v);
                    }
                }
            }
            (AggState::Distinct(vals, _), AggState::Distinct(mut other, _)) => {
                vals.append(&mut other);
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    fn finish(self) -> RelResult<Value> {
        Ok(match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum { total, any, int } => {
                if !any {
                    Value::Null
                } else if int {
                    Value::Int(total as i64)
                } else {
                    Value::float(total)
                }
            }
            AggState::Avg { total, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::float(total / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Distinct(mut vals, func) => {
                vals.sort();
                vals.dedup();
                let mut inner = AggState::new(&AggExpr {
                    func,
                    arg: Expr::lit(0i64),
                    distinct: false,
                    name: String::new(),
                });
                for v in vals {
                    inner.update(v, false)?;
                }
                inner.finish()?
            }
        })
    }
}

/// Per-chunk grouped partial states plus the chunk's first-seen group
/// order (the unit merged across parallel aggregation workers).
type AggPartial = (HashMap<Vec<Value>, Vec<AggState>>, Vec<Vec<Value>>);

/// One accumulation pass over a row chunk.
fn aggregate_partial(rows: &[Row], group_by: &[Expr], aggs: &[AggExpr]) -> RelResult<AggPartial> {
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    // Preserve first-seen group order for deterministic output.
    let mut order: Vec<Vec<Value>> = Vec::new();
    for r in rows {
        let mut key = Vec::with_capacity(group_by.len());
        for g in group_by {
            key.push(g.eval(r)?);
        }
        let states = match groups.get_mut(&key) {
            Some(s) => s,
            None => {
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| aggs.iter().map(AggState::new).collect())
            }
        };
        for (state, a) in states.iter_mut().zip(aggs) {
            let is_star = a.func == AggFn::CountStar;
            let v = if is_star {
                Value::Int(1)
            } else {
                a.arg.eval(r)?
            };
            state.update(v, is_star)?;
        }
    }
    Ok((groups, order))
}

/// Finish accumulated groups into output rows (first-seen group order).
fn aggregate_finish(
    mut groups: HashMap<Vec<Value>, Vec<AggState>>,
    order: Vec<Vec<Value>>,
    group_by: &[Expr],
    aggs: &[AggExpr],
) -> RelResult<Vec<Row>> {
    // Global aggregate over empty input still yields one row.
    if groups.is_empty() && group_by.is_empty() {
        let states: Vec<AggState> = aggs.iter().map(AggState::new).collect();
        let mut row = Vec::with_capacity(aggs.len());
        for s in states {
            row.push(s.finish()?);
        }
        return Ok(vec![row]);
    }
    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let states = groups.remove(&key).expect("group recorded in order");
        let mut row = key;
        for s in states {
            row.push(s.finish()?);
        }
        out.push(row);
    }
    Ok(out)
}

fn aggregate_rows(rows: &[Row], group_by: &[Expr], aggs: &[AggExpr]) -> RelResult<Vec<Row>> {
    let (groups, order) = aggregate_partial(rows, group_by, aggs)?;
    aggregate_finish(groups, order, group_by, aggs)
}

/// [`aggregate_rows`], parallel when the options allow: each worker
/// accumulates partial states over a contiguous chunk, and partials merge
/// in chunk order — so first-seen group order (and therefore output
/// order) matches the serial pass.
fn aggregate_rows_opt(
    rows: &[Row],
    group_by: &[Expr],
    aggs: &[AggExpr],
    opts: &ExecOptions,
) -> RelResult<(Vec<Row>, Option<ParInfo>)> {
    let threads = opts.threads_for(rows.len());
    if threads <= 1 {
        return Ok((aggregate_rows(rows, group_by, aggs)?, None));
    }
    let chunks: Vec<&[Row]> = (0..threads)
        .map(|p| &rows[(p * rows.len() / threads)..((p + 1) * rows.len() / threads)])
        .collect();
    let (parts, info) = run_partitioned(chunks, |chunk| aggregate_partial(chunk, group_by, aggs))?;
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for (mut part_groups, part_order) in parts {
        for key in part_order {
            let states = part_groups.remove(&key).expect("group recorded in order");
            match groups.get_mut(&key) {
                Some(existing) => {
                    for (cur, other) in existing.iter_mut().zip(states) {
                        cur.merge(other);
                    }
                }
                None => {
                    order.push(key.clone());
                    groups.insert(key, states);
                }
            }
        }
    }
    Ok((aggregate_finish(groups, order, group_by, aggs)?, Some(info)))
}

// ---------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------

fn sort_rows(mut rows: Vec<Row>, keys: &[SortKey]) -> RelResult<Vec<Row>> {
    // Pre-compute key tuples so expression evaluation happens O(n), not
    // O(n log n); then sort indices and gather.
    let mut keyed: Vec<(Vec<Value>, usize)> = Vec::with_capacity(rows.len());
    for (i, r) in rows.iter().enumerate() {
        let mut k = Vec::with_capacity(keys.len());
        for sk in keys {
            k.push(sk.expr.eval(r)?);
        }
        keyed.push((k, i));
    }
    keyed.sort_by(|(a, ai), (b, bi)| {
        for (i, sk) in keys.iter().enumerate() {
            let ord = a[i].total_cmp(&b[i]);
            let ord = if sk.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        ai.cmp(bi) // stable tiebreak
    });
    let mut out = Vec::with_capacity(rows.len());
    for (_, i) in keyed {
        out.push(std::mem::take(&mut rows[i]));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Vectorized (batch-at-a-time) operators
//
// Operators exchange `Batch`es: `Arc`-shared typed columns plus a
// selection vector. Filters narrow the selection instead of copying
// rows; projections run `Expr::eval_batch` kernels over the selected
// slots only. Row materialization happens once, at the `ResultSet`
// boundary. Results are byte-identical to the row executor above (the
// differential oracle) — `tests/batch_differential.rs` holds the line.
// ---------------------------------------------------------------------

/// Evaluate `predicate` over the batch's live rows in `batch_size`-row
/// chunks; returns the surviving *view* positions plus the chunk count.
/// SQL WHERE semantics: NULL and false both drop the row, a non-boolean
/// result is a type error (exactly [`Expr::eval_predicate`]).
fn filter_selection(
    batch: &Batch,
    predicate: &Expr,
    batch_size: usize,
) -> RelResult<(Vec<u32>, usize)> {
    let sel = batch.selection();
    let cols = batch.columns();
    let chunk = batch_size.max(1);
    let mut keep = Vec::new();
    let mut batches = 0usize;
    for part in sel.chunks(chunk) {
        let base = batches * chunk;
        batches += 1;
        let ec = predicate.eval_batch(cols, part)?;
        for k in 0..part.len() {
            match ec.value_at(k) {
                Value::Bool(true) => keep.push((base + k) as u32),
                Value::Bool(false) | Value::Null => {}
                other => {
                    return Err(RelError::TypeMismatch {
                        expected: "Bool".into(),
                        found: other.type_name().into(),
                    })
                }
            }
        }
    }
    Ok((keep, batches))
}

/// Evaluate the projection kernels over the selected slots, producing a
/// dense batch. Column-picking projections over a dense input reuse the
/// input column `Arc` outright.
fn project_batched(
    batch: &Batch,
    exprs: &[(Expr, String)],
    batch_size: usize,
) -> RelResult<(Batch, usize)> {
    let sel = batch.selection();
    let n = sel.len();
    let cols = batch.columns();
    let chunk = batch_size.max(1);
    let batches = n.div_ceil(chunk);
    let mut out: Vec<Arc<BatchColumn>> = Vec::with_capacity(exprs.len());
    for (e, _) in exprs {
        if let Expr::Column(i) = e {
            if *i < cols.len() && !batch.has_selection() {
                out.push(Arc::clone(&cols[*i]));
                continue;
            }
        }
        if n <= chunk {
            out.push(Arc::new(e.eval_batch(cols, &sel)?.into_column(n)));
        } else {
            let mut b = ColumnBuilder::with_capacity(n);
            for part in sel.chunks(chunk) {
                let ec = e.eval_batch(cols, part)?;
                for k in 0..part.len() {
                    b.push(ec.value_at(k));
                }
            }
            out.push(Arc::new(b.finish()));
        }
    }
    Ok((Batch::new(out, n), batches))
}

/// Batched scan. Sequential scans serve the table's cached columnar image
/// ([`Table::columnar`]) and fuse the pushed-down filter (selection
/// vector) and projection (column picking) into it without copying a
/// single row. Index-served paths touch few rows, so they reuse the row
/// machinery and transpose.
fn scan_batched(
    t: &Table,
    projection: &Option<Vec<usize>>,
    filter: &Option<Expr>,
    opts: &ExecOptions,
) -> RelResult<(Batch, AccessPath, usize)> {
    let path = choose_access_path(t, filter);
    if matches!(path, AccessPath::SeqScan) {
        if cr_obs::enabled() {
            metrics().scan_seq.inc();
        }
        let cols = t.columnar();
        let mut batch = Batch::new((*cols).clone(), t.len());
        let mut batches = 1;
        if let Some(f) = filter {
            let (keep, nb) = filter_selection(&batch, f, opts.batch_size)?;
            batches = nb;
            batch = batch.select(keep);
        }
        if let Some(idx) = projection {
            let projected = idx.iter().map(|&i| Arc::clone(batch.column(i))).collect();
            batch = batch.with_columns(projected);
        }
        Ok((batch, path, batches))
    } else {
        let (rows, path, _) = scan_table(t, projection, filter, opts)?;
        let width = projection
            .as_ref()
            .map_or(t.schema().columns().len(), Vec::len);
        Ok((Batch::from_rows(&rows, width), path, 1))
    }
}

/// Batched hash join: build over the right columns, probe the left view
/// in order, then gather both sides' output columns by match index (typed
/// gathers; NULL-extension for LEFT OUTER falls back to a builder).
/// Non-equi predicates use the row nested-loop join and transpose.
fn join_batched(
    left: &Batch,
    right: &Batch,
    kind: JoinKind,
    on: &Expr,
) -> RelResult<(Batch, JoinInfo)> {
    let (left_width, right_width) = (left.width(), right.width());
    let (lk, rk, residual) = extract_equi_keys(on, left_width);
    if lk.is_empty() {
        let (rows, info) = join_rows(
            left.to_rows(),
            right.to_rows(),
            left_width,
            right_width,
            kind,
            on,
        )?;
        return Ok((Batch::from_rows(&rows, left_width + right_width), info));
    }
    let residual = if residual.is_empty() {
        None
    } else {
        Some(Expr::conjoin(residual))
    };
    let mut build: HashMap<Vec<Value>, Vec<u32>> = HashMap::with_capacity(right.len());
    for j in 0..right.len() {
        let key: Vec<Value> = rk.iter().map(|&k| right.value(k, j)).collect();
        if key.iter().any(Value::is_null) {
            continue; // NULL keys never join
        }
        build.entry(key).or_default().push(j as u32);
    }
    let mut pairs: Vec<(u32, Option<u32>)> = Vec::new();
    for j in 0..left.len() {
        let key: Vec<Value> = lk.iter().map(|&k| left.value(k, j)).collect();
        let mut matched = false;
        if !key.iter().any(Value::is_null) {
            if let Some(idxs) = build.get(&key) {
                for &i in idxs {
                    let ok = match &residual {
                        Some(p) => {
                            let mut combined = left.row(j);
                            combined.extend(right.row(i as usize));
                            p.eval_predicate(&combined)?
                        }
                        None => true,
                    };
                    if ok {
                        matched = true;
                        pairs.push((j as u32, Some(i)));
                    }
                }
            }
        }
        if !matched && kind == JoinKind::LeftOuter {
            pairs.push((j as u32, None));
        }
    }
    let lidx: Vec<u32> = pairs
        .iter()
        .map(|&(j, _)| left.base_index(j as usize) as u32)
        .collect();
    let mut out: Vec<Arc<BatchColumn>> = Vec::with_capacity(left_width + right_width);
    for c in 0..left_width {
        out.push(Arc::new(left.column(c).gather(&lidx)));
    }
    if pairs.iter().all(|&(_, r)| r.is_some()) {
        let ridx: Vec<u32> = pairs
            .iter()
            .filter_map(|&(_, r)| r.map(|i| right.base_index(i as usize) as u32))
            .collect();
        for c in 0..right_width {
            out.push(Arc::new(right.column(c).gather(&ridx)));
        }
    } else {
        for c in 0..right_width {
            let col = right.column(c);
            let mut b = ColumnBuilder::with_capacity(pairs.len());
            for &(_, r) in &pairs {
                match r {
                    Some(i) => b.push(col.value(right.base_index(i as usize))),
                    None => b.push(Value::Null),
                }
            }
            out.push(Arc::new(b.finish()));
        }
    }
    Ok((
        Batch::new(out, pairs.len()),
        JoinInfo {
            hash: true,
            keys: lk.len(),
        },
    ))
}

/// Batched aggregation: group keys and aggregate arguments evaluate as
/// kernels over the full selection, then feed the shared [`AggState`]
/// machinery — so grouping/accumulation semantics (including first-seen
/// group order) are the row path's by construction.
fn aggregate_batched(batch: &Batch, group_by: &[Expr], aggs: &[AggExpr]) -> RelResult<Vec<Row>> {
    let sel = batch.selection();
    let n = sel.len();
    let cols = batch.columns();
    let gcols: Vec<EvalCol> = group_by
        .iter()
        .map(|g| g.eval_batch(cols, &sel))
        .collect::<RelResult<Vec<_>>>()?;
    let acols: Vec<Option<EvalCol>> = aggs
        .iter()
        .map(|a| {
            if a.func == AggFn::CountStar {
                Ok(None) // COUNT(*): the argument is never evaluated
            } else {
                a.arg.eval_batch(cols, &sel).map(Some)
            }
        })
        .collect::<RelResult<Vec<_>>>()?;
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for j in 0..n {
        let key: Vec<Value> = gcols.iter().map(|g| g.value_at(j)).collect();
        let states = match groups.get_mut(&key) {
            Some(s) => s,
            None => {
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| aggs.iter().map(AggState::new).collect())
            }
        };
        for ((state, a), ac) in states.iter_mut().zip(aggs).zip(&acols) {
            let is_star = a.func == AggFn::CountStar;
            let v = match ac {
                None => Value::Int(1),
                Some(c) => c.value_at(j),
            };
            state.update(v, is_star)?;
        }
    }
    aggregate_finish(groups, order, group_by, aggs)
}

/// Batched sort: key expressions evaluate as kernels, then only the
/// selection vector is permuted — column data never moves.
fn sort_batched(batch: Batch, keys: &[SortKey]) -> RelResult<Batch> {
    let n = batch.len();
    let kcols: Vec<EvalCol> = {
        let sel = batch.selection();
        keys.iter()
            .map(|sk| sk.expr.eval_batch(batch.columns(), &sel))
            .collect::<RelResult<Vec<_>>>()?
    };
    let keyed: Vec<Vec<Value>> = (0..n)
        .map(|j| kcols.iter().map(|k| k.value_at(j)).collect())
        .collect();
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_by(|&a, &b| {
        for (i, sk) in keys.iter().enumerate() {
            let ord = keyed[a as usize][i].total_cmp(&keyed[b as usize][i]);
            let ord = if sk.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.cmp(&b) // stable tiebreak
    });
    Ok(batch.select(idx))
}

/// Batched limit/offset: a selection-vector slice; no data moves.
fn limit_batched(batch: Batch, limit: Option<usize>, offset: usize) -> Batch {
    let n = batch.len();
    let start = offset.min(n);
    let end = match limit {
        Some(l) => start.saturating_add(l).min(n),
        None => n,
    };
    if start == 0 && end == n {
        return batch;
    }
    batch.select((start as u32..end as u32).collect())
}

/// Concatenate two batches (UNION ALL).
fn union_batched(left: &Batch, right: &Batch) -> Batch {
    let width = left.width();
    let n = left.len() + right.len();
    let mut cols = Vec::with_capacity(width);
    for c in 0..width {
        let mut b = ColumnBuilder::with_capacity(n);
        for j in 0..left.len() {
            b.push(left.value(c, j));
        }
        for j in 0..right.len() {
            b.push(right.value(c, j));
        }
        cols.push(Arc::new(b.finish()));
    }
    Batch::new(cols, n)
}

/// Batched Extend: the nest map builds straight from the related batch's
/// columns (shared [`build_nest_map_core`]), the probe appends one nested
/// column to the compacted input.
fn extend_batched(input: Batch, related: &Batch, key_col: usize, rating: bool) -> RelResult<Batch> {
    let map = build_nest_map_core(
        (0..related.len()).map(|j| {
            (
                related.value(0, j),
                related.value(1, j),
                if rating {
                    Some(related.value(2, j))
                } else {
                    None
                },
            )
        }),
        rating,
    )?;
    let input = input.compact();
    let n = input.len();
    let mut b = ColumnBuilder::with_capacity(n);
    for j in 0..n {
        let keyv = input.value(key_col, j);
        let key = as_rec_scalar(&keyv)
            .ok_or_else(|| RelError::Invalid("extend key not scalar".into()))?;
        let nested = match map.get(key) {
            Some(v) => v.clone(),
            None if rating => Value::Ratings(Vec::new()),
            None => Value::Set(Vec::new()),
        };
        b.push(nested);
    }
    let mut cols = input.columns().to_vec();
    cols.push(Arc::new(b.finish()));
    Ok(Batch::new(cols, n))
}

/// Batched Recommend. Scoring is O(targets × comparators) over nested
/// Set/Ratings values — compute-bound, not dispatch-bound — so both sides
/// materialize once and the scoring core runs unchanged (shared with the
/// oracle by construction).
fn recommend_batched(target: &Batch, comparator: &Batch, spec: &RecSpec) -> RelResult<Batch> {
    let width = target.width() + 1;
    let rows = recommend_rows(target.to_rows(), &comparator.to_rows(), spec)?;
    Ok(Batch::from_rows(&rows, width))
}

/// The vectorized walker (the default execution path).
fn run_batched(plan: &LogicalPlan, catalog: &Catalog, opts: &ExecOptions) -> RelResult<Batch> {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filter,
            ..
        } => Ok(catalog
            .with_table(table, |t| scan_batched(t, projection, filter, opts))??
            .0),

        LogicalPlan::Filter { input, predicate } => {
            let batch = run_batched(input, catalog, opts)?;
            let (keep, _) = filter_selection(&batch, predicate, opts.batch_size)?;
            Ok(batch.select(keep))
        }

        LogicalPlan::Project { input, exprs, .. } => {
            let batch = run_batched(input, catalog, opts)?;
            Ok(project_batched(&batch, exprs, opts.batch_size)?.0)
        }

        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            ..
        } => {
            let l = run_batched(left, catalog, opts)?;
            let r = run_batched(right, catalog, opts)?;
            Ok(join_batched(&l, &r, *kind, on)?.0)
        }

        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let batch = run_batched(input, catalog, opts)?;
            let rows = aggregate_batched(&batch, group_by, aggs)?;
            Ok(Batch::from_rows(&rows, group_by.len() + aggs.len()))
        }

        LogicalPlan::Sort { input, keys } => sort_batched(run_batched(input, catalog, opts)?, keys),

        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => Ok(limit_batched(
            run_batched(input, catalog, opts)?,
            *limit,
            *offset,
        )),

        LogicalPlan::Values { rows, .. } => Ok(Batch::from_rows(rows, plan.schema().len())),

        LogicalPlan::Union { left, right } => {
            let l = run_batched(left, catalog, opts)?;
            let r = run_batched(right, catalog, opts)?;
            Ok(union_batched(&l, &r))
        }

        LogicalPlan::Extend {
            input,
            related,
            key_col,
            rating,
            ..
        } => {
            let i = run_batched(input, catalog, opts)?;
            let r = run_batched(related, catalog, opts)?;
            extend_batched(i, &r, *key_col, *rating)
        }

        LogicalPlan::Recommend {
            target,
            comparator,
            spec,
            ..
        } => {
            let t = run_batched(target, catalog, opts)?;
            let c = run_batched(comparator, catalog, opts)?;
            recommend_batched(&t, &c, spec)
        }
    }
}

/// Profiled twin of [`run_batched`]: same batched operator
/// implementations, with each node timed and annotated. Spans and
/// EXPLAIN ANALYZE keep the row path's operator names and fields, plus
/// the new `batches=`/`selected=` detail. The batched path runs each
/// operator serially; when the options asked for parallelism the adaptive
/// decision is still recorded on the span.
fn run_batched_profiled(
    plan: &LogicalPlan,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> RelResult<(Batch, OpProfile)> {
    let mut span = cr_obs::trace::TraceSpan::child("op");
    let t0 = Instant::now();
    let (batch, op, detail, children) = match plan {
        LogicalPlan::Scan {
            table,
            alias,
            projection,
            filter,
            ..
        } => {
            let (scanned, table_len) = catalog.with_table(table, |t| {
                (scan_batched(t, projection, filter, opts), t.len())
            })?;
            let (batch, path, batches) = scanned?;
            let mut detail = vec![format!("access={path}")];
            if let Some(f) = filter {
                detail.push(format!("filter={f}"));
            }
            detail.push(format!("batches={batches}"));
            detail.push(format!("selected={}", batch.len()));
            if matches!(path, AccessPath::SeqScan) {
                push_adaptive_detail(&mut detail, opts, table_len, &None);
            }
            let op = match alias {
                Some(a) if a != table => format!("Scan {table} AS {a}"),
                _ => format!("Scan {table}"),
            };
            (batch, op, detail, Vec::new())
        }

        LogicalPlan::Filter { input, predicate } => {
            let (batch, child) = run_batched_profiled(input, catalog, opts)?;
            let rows_in = batch.len();
            let (keep, batches) = filter_selection(&batch, predicate, opts.batch_size)?;
            let batch = batch.select(keep);
            let mut detail = vec![
                format!("predicate={predicate}"),
                format!("batches={batches}"),
                format!("selected={}", batch.len()),
            ];
            push_adaptive_detail(&mut detail, opts, rows_in, &None);
            (batch, "Filter".to_owned(), detail, vec![child])
        }

        LogicalPlan::Project { input, exprs, .. } => {
            let (batch, child) = run_batched_profiled(input, catalog, opts)?;
            let rows_in = batch.len();
            let (batch, batches) = project_batched(&batch, exprs, opts.batch_size)?;
            let mut detail = vec![
                format!("exprs={}", exprs.len()),
                format!("batches={batches}"),
            ];
            push_adaptive_detail(&mut detail, opts, rows_in, &None);
            (batch, "Project".to_owned(), detail, vec![child])
        }

        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            ..
        } => {
            let (l, lchild) = run_batched_profiled(left, catalog, opts)?;
            let (r, rchild) = run_batched_profiled(right, catalog, opts)?;
            let rows_in = l.len();
            let (batch, info) = join_batched(&l, &r, *kind, on)?;
            let op = if info.hash {
                "HashJoin"
            } else {
                "NestedLoopJoin"
            };
            let mut detail = vec![format!("kind={kind:?}")];
            if info.hash {
                detail.push(format!("keys={}", info.keys));
                detail.push("build=right".to_owned());
                push_adaptive_detail(&mut detail, opts, rows_in, &None);
            }
            (batch, op.to_owned(), detail, vec![lchild, rchild])
        }

        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let (batch, child) = run_batched_profiled(input, catalog, opts)?;
            let rows_in = batch.len();
            let rows = aggregate_batched(&batch, group_by, aggs)?;
            let out = Batch::from_rows(&rows, group_by.len() + aggs.len());
            let mut detail = vec![
                format!("group_by={}", group_by.len()),
                format!("aggs={}", aggs.len()),
            ];
            push_adaptive_detail(&mut detail, opts, rows_in, &None);
            (out, "Aggregate".to_owned(), detail, vec![child])
        }

        LogicalPlan::Sort { input, keys } => {
            let (batch, child) = run_batched_profiled(input, catalog, opts)?;
            let batch = sort_batched(batch, keys)?;
            (
                batch,
                "Sort".to_owned(),
                vec![format!("keys={}", keys.len())],
                vec![child],
            )
        }

        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let (batch, child) = run_batched_profiled(input, catalog, opts)?;
            let batch = limit_batched(batch, *limit, *offset);
            let mut detail = Vec::new();
            if let Some(n) = limit {
                detail.push(format!("limit={n}"));
            }
            if *offset > 0 {
                detail.push(format!("offset={offset}"));
            }
            (batch, "Limit".to_owned(), detail, vec![child])
        }

        LogicalPlan::Values { rows, .. } => (
            Batch::from_rows(rows, plan.schema().len()),
            "Values".to_owned(),
            Vec::new(),
            Vec::new(),
        ),

        LogicalPlan::Union { left, right } => {
            let (l, lchild) = run_batched_profiled(left, catalog, opts)?;
            let (r, rchild) = run_batched_profiled(right, catalog, opts)?;
            (
                union_batched(&l, &r),
                "Union".to_owned(),
                Vec::new(),
                vec![lchild, rchild],
            )
        }

        LogicalPlan::Extend {
            input,
            related,
            key_col,
            rating,
            as_name,
            ..
        } => {
            let (i, ichild) = run_batched_profiled(input, catalog, opts)?;
            let (r, rchild) = run_batched_profiled(related, catalog, opts)?;
            let rows_in = i.len();
            let batch = extend_batched(i, &r, *key_col, *rating)?;
            let mut detail = vec![
                format!("kind={}", if *rating { "ratings" } else { "set" }),
                format!("key=#{key_col}"),
                format!("as={as_name}"),
            ];
            push_adaptive_detail(&mut detail, opts, rows_in, &None);
            (batch, "Extend".to_owned(), detail, vec![ichild, rchild])
        }

        LogicalPlan::Recommend {
            target,
            comparator,
            spec,
            ..
        } => {
            let (t, tchild) = run_batched_profiled(target, catalog, opts)?;
            let (c, cchild) = run_batched_profiled(comparator, catalog, opts)?;
            let rows_in = t.len();
            let batch = recommend_batched(&t, &c, spec)?;
            let mut detail = vec![
                format!("method={}", spec.method.name()),
                format!("agg={}", spec.agg),
            ];
            if let Some(k) = spec.k {
                detail.push(format!("top={k}"));
            }
            if spec.exclude_seen.is_some() {
                detail.push("exclude_seen".to_owned());
            }
            push_adaptive_detail(&mut detail, opts, rows_in, &None);
            (batch, "Recommend".to_owned(), detail, vec![tchild, cchild])
        }
    };
    let elapsed = t0.elapsed();
    if cr_obs::enabled() {
        metrics().op_hist(plan).record_duration(elapsed);
    }
    if span.is_recording() {
        span.set_name(&op);
        span.attr("rows_out", batch.len().to_string());
        if !detail.is_empty() {
            span.attr("detail", detail.join(" "));
        }
    }
    let profile = OpProfile {
        op,
        detail,
        rows_out: batch.len(),
        elapsed,
        children,
    };
    Ok((batch, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::plan::PlanBuilder;
    use crate::schema::DataType;

    fn db() -> Database {
        let db = Database::new();
        db.execute_sql(
            "CREATE TABLE courses (id INT PRIMARY KEY, dep TEXT, units INT, rating FLOAT)",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO courses VALUES \
             (1,'CS',5,4.5),(2,'CS',3,3.0),(3,'HIST',4,4.0),(4,'HIST',4,NULL),(5,'MATH',3,2.5)",
        )
        .unwrap();
        db.execute_sql("CREATE TABLE comments (cid INT PRIMARY KEY, course_id INT, text TEXT)")
            .unwrap();
        db.execute_sql("INSERT INTO comments VALUES (10,1,'great'),(11,1,'hard'),(12,3,'fun')")
            .unwrap();
        db
    }

    #[test]
    fn seq_scan_all() {
        let db = db();
        let rs = db.query_sql("SELECT * FROM courses").unwrap();
        assert_eq!(rs.rows.len(), 5);
        assert_eq!(rs.schema.len(), 4);
    }

    #[test]
    fn pk_lookup_path_chosen() {
        let db = db();
        db.catalog()
            .with_table("courses", |t| {
                let filter = Some(Expr::col_idx(0).eq(Expr::lit(3i64)));
                assert_eq!(
                    choose_access_path(t, &filter),
                    AccessPath::PkLookup(vec![Value::Int(3)])
                );
            })
            .unwrap();
    }

    #[test]
    fn secondary_index_path_chosen_and_correct() {
        let db = db();
        db.create_index("courses", "by_dep", &["dep"], false)
            .unwrap();
        db.catalog()
            .with_table("courses", |t| {
                let filter = Some(Expr::col_idx(1).eq(Expr::lit("CS")));
                assert_eq!(
                    choose_access_path(t, &filter),
                    AccessPath::IndexEq("by_dep".into(), vec![Value::text("CS")])
                );
            })
            .unwrap();
        let rs = db
            .query_sql("SELECT id FROM courses WHERE dep = 'CS'")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn btree_range_path() {
        let db = db();
        db.create_btree_index("courses", "by_units", &["units"], false)
            .unwrap();
        let rs = db
            .query_sql("SELECT id FROM courses WHERE units >= 4 AND units <= 5")
            .unwrap();
        let mut ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        ids.sort();
        assert_eq!(ids, vec![1, 3, 4]);
        db.catalog()
            .with_table("courses", |t| {
                let filter = Some(
                    Expr::col_idx(2)
                        .gt_eq(Expr::lit(4i64))
                        .and(Expr::col_idx(2).lt_eq(Expr::lit(5i64))),
                );
                assert!(matches!(
                    choose_access_path(t, &filter),
                    AccessPath::IndexRange { .. }
                ));
            })
            .unwrap();
    }

    #[test]
    fn hash_join_inner() {
        let db = db();
        let rs = db
            .query_sql(
                "SELECT courses.id, comments.text FROM courses \
                 JOIN comments ON courses.id = comments.course_id",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn left_outer_join_extends_with_nulls() {
        let db = db();
        let rs = db
            .query_sql(
                "SELECT courses.id, comments.text FROM courses \
                 LEFT JOIN comments ON courses.id = comments.course_id \
                 ORDER BY courses.id",
            )
            .unwrap();
        // 1 has two comments, 3 has one, 2/4/5 null-extended: 6 rows.
        assert_eq!(rs.rows.len(), 6);
        let null_rows = rs.rows.iter().filter(|r| r[1].is_null()).count();
        assert_eq!(null_rows, 3);
    }

    #[test]
    fn nested_loop_for_non_equi_join() {
        let db = db();
        let rs = db
            .query_sql("SELECT a.id, b.id FROM courses a JOIN courses b ON a.units < b.units")
            .unwrap();
        // pairs with strictly smaller units: units are [5,3,4,4,3]
        // 3<4 (2 with id3), 3<4(id4), 3<5; two rows with units 3 → 2*3=6, 4<5 ×2 → 8
        assert_eq!(rs.rows.len(), 8);
    }

    #[test]
    fn aggregate_groups_and_nulls() {
        let db = db();
        let rs = db
            .query_sql(
                "SELECT dep, COUNT(*) AS n, AVG(rating) AS avg_r, SUM(units) AS su \
                 FROM courses GROUP BY dep ORDER BY dep",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
        // CS: n=2, avg=(4.5+3)/2=3.75
        assert_eq!(rs.rows[0][0], Value::text("CS"));
        assert_eq!(rs.rows[0][1], Value::Int(2));
        assert_eq!(rs.rows[0][2], Value::Float(3.75));
        // HIST: one NULL rating → avg over non-null only = 4.0
        assert_eq!(rs.rows[1][2], Value::Float(4.0));
    }

    #[test]
    fn count_ignores_null_countstar_does_not() {
        let db = db();
        let rs = db
            .query_sql("SELECT COUNT(rating) AS c, COUNT(*) AS cs FROM courses")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(4));
        assert_eq!(rs.rows[0][1], Value::Int(5));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = db();
        let rs = db
            .query_sql("SELECT COUNT(*) AS c, MAX(units) AS m FROM courses WHERE id > 999")
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert!(rs.rows[0][1].is_null());
    }

    #[test]
    fn distinct_count() {
        let db = db();
        let rs = db
            .query_sql("SELECT COUNT(DISTINCT dep) AS d FROM courses")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn sort_asc_desc_with_nulls_first() {
        let db = db();
        let rs = db
            .query_sql("SELECT id, rating FROM courses ORDER BY rating DESC, id")
            .unwrap();
        // DESC: NULL sorts first ascending → last descending? Our total
        // order puts NULL lowest, so DESC puts it last.
        let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 3, 2, 5, 4]);
    }

    #[test]
    fn limit_offset() {
        let db = db();
        let rs = db
            .query_sql("SELECT id FROM courses ORDER BY id LIMIT 2 OFFSET 1")
            .unwrap();
        let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn union_appends() {
        let db = db();
        let rs = db
            .query_sql(
                "SELECT id FROM courses WHERE dep = 'CS' \
                 UNION ALL SELECT id FROM courses WHERE dep = 'MATH'",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn result_set_helpers() {
        let db = db();
        let rs = db.query_sql("SELECT COUNT(*) AS n FROM courses").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(5)));
        let table = rs.to_text_table();
        assert!(table.contains("| n "));
        assert!(table.contains("| 5 "));
    }

    #[test]
    fn programmatic_plan_matches_sql() {
        let db = db();
        let plan = PlanBuilder::scan(&db.catalog(), "courses")
            .unwrap()
            .filter(Expr::col("units").gt_eq(Expr::lit(4i64)))
            .unwrap()
            .select_columns(&["id"])
            .unwrap()
            .sort_by("id", false)
            .unwrap()
            .build();
        let a = db.run_plan(&plan).unwrap();
        let b = db
            .query_sql("SELECT id FROM courses WHERE units >= 4 ORDER BY id")
            .unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn instrumented_matches_plain_and_annotates() {
        let db = db();
        let sql = "SELECT courses.id, comments.text FROM courses \
                   JOIN comments ON courses.id = comments.course_id \
                   WHERE courses.units >= 3 ORDER BY courses.id";
        let plain = db.query_sql(sql).unwrap();
        let (rs, profile) = db.explain_analyze_sql(sql).unwrap();
        assert_eq!(rs.rows, plain.rows);
        // Root operator's row count equals the result set's.
        assert_eq!(profile.rows_out, rs.rows.len());
        // The join and both scans are in the tree, scans annotated with
        // their access path.
        let join = profile.find("HashJoin").expect("join profiled");
        assert_eq!(join.children.len(), 2);
        let scan = profile.find("Scan courses").expect("scan profiled");
        assert!(scan.detail.iter().any(|d| d.starts_with("access=")));
        let text = profile.render();
        assert!(text.contains("rows="));
        assert!(text.contains("time="));
    }

    #[test]
    fn instrumented_reports_pk_lookup_access_path() {
        let db = db();
        let (rs, profile) = db
            .explain_analyze_sql("SELECT id FROM courses WHERE id = 3")
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        let scan = profile.find("Scan courses").expect("scan profiled");
        assert!(
            scan.detail.iter().any(|d| d.contains("PkLookup")),
            "detail: {:?}",
            scan.detail
        );
    }

    #[test]
    fn join_null_keys_never_match() {
        let db = Database::new();
        db.execute_sql("CREATE TABLE a (x INT)").unwrap();
        db.execute_sql("CREATE TABLE b (y INT)").unwrap();
        db.execute_sql("INSERT INTO a VALUES (NULL),(1)").unwrap();
        db.execute_sql("INSERT INTO b VALUES (NULL),(1)").unwrap();
        let rs = db.query_sql("SELECT * FROM a JOIN b ON a.x = b.y").unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    /// Options that force every parallelizable operator to split, even on
    /// tiny test tables and single-CPU hosts. `batch_size: 0` pins the
    /// row executor — the only path that partitions.
    fn par(n: usize) -> ExecOptions {
        ExecOptions {
            parallelism: n,
            min_partition_rows: 1,
            adaptive: false,
            batch_size: 0,
        }
    }

    #[test]
    fn parallel_results_match_serial() {
        let db = db();
        let queries = [
            "SELECT * FROM courses",
            "SELECT id, units FROM courses WHERE units >= 3 AND dep <> 'MATH'",
            "SELECT courses.id, comments.text FROM courses \
             JOIN comments ON courses.id = comments.course_id",
            "SELECT courses.id, comments.text FROM courses \
             LEFT JOIN comments ON courses.id = comments.course_id",
            "SELECT dep, COUNT(*) AS n, SUM(units) AS su, MIN(units) AS mn, \
             MAX(units) AS mx, COUNT(DISTINCT units) AS d \
             FROM courses GROUP BY dep",
            "SELECT COUNT(*) AS c, MAX(units) AS m FROM courses WHERE id > 999",
            "SELECT id FROM courses ORDER BY id LIMIT 2 OFFSET 1",
        ];
        for sql in queries {
            let serial = db.query_sql(sql).unwrap();
            for n in [2, 3, 8] {
                let parallel = db.query_sql_with(sql, &par(n)).unwrap();
                assert_eq!(parallel, serial, "parallelism={n} sql={sql}");
            }
        }
    }

    #[test]
    fn parallel_join_null_keys_match_serial() {
        let db = Database::new();
        db.execute_sql("CREATE TABLE a (x INT)").unwrap();
        db.execute_sql("CREATE TABLE b (y INT)").unwrap();
        db.execute_sql("INSERT INTO a VALUES (NULL),(1),(2),(NULL),(2)")
            .unwrap();
        db.execute_sql("INSERT INTO b VALUES (NULL),(1),(2),(2)")
            .unwrap();
        for sql in [
            "SELECT * FROM a JOIN b ON a.x = b.y",
            "SELECT * FROM a LEFT JOIN b ON a.x = b.y",
        ] {
            let serial = db.query_sql(sql).unwrap();
            let parallel = db.query_sql_with(sql, &par(4)).unwrap();
            assert_eq!(parallel, serial, "sql={sql}");
        }
    }

    #[test]
    fn parallel_profile_reports_partitions() {
        let db = db();
        let (rs, profile) = db
            .explain_analyze_sql_with("SELECT * FROM courses", &par(2))
            .unwrap();
        assert_eq!(rs.rows.len(), 5);
        let scan = profile.find("Scan courses").expect("scan profiled");
        assert!(
            scan.detail.iter().any(|d| d == "partitions=2"),
            "detail: {:?}",
            scan.detail
        );
        assert!(
            scan.detail
                .iter()
                .any(|d| d.starts_with("partition_times=")),
            "detail: {:?}",
            scan.detail
        );
    }

    #[test]
    fn parallel_metrics_count_partitions() {
        cr_obs::install();
        let db = db();
        let before = cr_obs::Registry::global()
            .snapshot()
            .counter("relation.parallel.partitions_spawned")
            .unwrap_or(0);
        db.query_sql_with("SELECT * FROM courses", &par(3)).unwrap();
        let after = cr_obs::Registry::global()
            .snapshot()
            .counter("relation.parallel.partitions_spawned")
            .unwrap_or(0);
        assert!(after >= before + 3, "before={before} after={after}");
    }

    #[test]
    fn database_default_options_apply() {
        let db = db().with_exec_options(par(4));
        assert_eq!(db.exec_options().parallelism, 4);
        let rs = db.query_sql("SELECT * FROM courses").unwrap();
        assert_eq!(rs.rows.len(), 5);
        let serial = Database::clone(&db)
            .with_exec_options(ExecOptions::default())
            .query_sql("SELECT * FROM courses")
            .unwrap();
        assert_eq!(rs, serial);
    }

    /// Fixture for the FlexRecs operators: students and the courses they
    /// took, with ratings (one NULL, one duplicate enrollment).
    fn nest_db() -> Database {
        let db = Database::new();
        db.execute_sql("CREATE TABLE students (sid INT PRIMARY KEY, name TEXT)")
            .unwrap();
        db.execute_sql("INSERT INTO students VALUES (1,'ann'),(2,'bob'),(3,'cat')")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE taken (tid INT PRIMARY KEY, sid INT, course INT, rating FLOAT)",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO taken VALUES \
             (1,1,101,5.0),(2,1,102,3.0),(3,2,101,4.0),(4,2,103,2.0),\
             (5,3,102,NULL),(6,1,101,3.0)",
        )
        .unwrap();
        db
    }

    fn extend_students(db: &Database, rating: bool) -> crate::plan::LogicalPlan {
        let cols: &[&str] = if rating {
            &["sid", "course", "rating"]
        } else {
            &["sid", "course"]
        };
        let related = PlanBuilder::scan(&db.catalog(), "taken")
            .unwrap()
            .select_columns(cols)
            .unwrap();
        PlanBuilder::scan(&db.catalog(), "students")
            .unwrap()
            .extend(related, "sid", rating, "courses")
            .unwrap()
            .build()
    }

    #[test]
    fn extend_set_nests_sorted_deduped() {
        let db = nest_db();
        let rs = db.run_plan(&extend_students(&db, false)).unwrap();
        assert_eq!(rs.schema.column(2).name, "courses");
        assert_eq!(rs.schema.column(2).data_type, DataType::Set);
        // ann took 101 twice + 102 → deduped sorted {101, 102}.
        assert_eq!(
            rs.rows[0][2],
            Value::Set(vec![Value::Int(101), Value::Int(102)])
        );
        assert_eq!(
            rs.rows[1][2],
            Value::Set(vec![Value::Int(101), Value::Int(103)])
        );
        // cat's only enrollment has NULL rating but the course id exists.
        assert_eq!(rs.rows[2][2], Value::Set(vec![Value::Int(102)]));
    }

    #[test]
    fn extend_ratings_averages_and_skips_nulls() {
        let db = nest_db();
        let rs = db.run_plan(&extend_students(&db, true)).unwrap();
        assert_eq!(rs.schema.column(2).data_type, DataType::Ratings);
        // ann rated 101 twice (5.0, 3.0) → avg 4.0.
        assert_eq!(
            rs.rows[0][2],
            Value::Ratings(vec![(Value::Int(101), 4.0), (Value::Int(102), 3.0)])
        );
        // cat's single enrollment has a NULL rating → empty ratings.
        assert_eq!(rs.rows[2][2], Value::Ratings(vec![]));
    }

    #[test]
    fn recommend_set_similarity_ranks_peers() {
        let db = nest_db();
        let targets = PlanBuilder::from_plan(extend_students(&db, false));
        let comparators = PlanBuilder::from_plan(extend_students(&db, false))
            .filter(Expr::col("name").eq(Expr::lit("ann")))
            .unwrap();
        let spec = RecSpec {
            target_col: 2,
            comparator_col: 2,
            method: RecMethod::Set(crate::similarity::SetSim::Jaccard),
            agg: RecAggPlan::Max,
            k: None,
            unbounded_ok: false,
            score_name: "score".into(),
            exclude_seen: None,
        };
        let plan = targets.recommend(comparators, spec).unwrap().build();
        let rs = db.run_plan(&plan).unwrap();
        assert_eq!(rs.schema.column(3).name, "score");
        // ann vs ann: jaccard 1.0; bob {101,103} vs {101,102}: 1/3;
        // cat {102}: 1/2. Sorted descending: ann, cat, bob.
        let names: Vec<&str> = rs.rows.iter().map(|r| r[1].as_text().unwrap()).collect();
        assert_eq!(names, vec!["ann", "cat", "bob"]);
        assert_eq!(rs.rows[0][3], Value::Float(1.0));
    }

    #[test]
    fn recommend_rating_lookup_with_exclude_seen() {
        let db = nest_db();
        // Targets: the courses themselves; comparators: ann's ratings row.
        let targets = PlanBuilder::scan(&db.catalog(), "taken")
            .unwrap()
            .select_columns(&["course"])
            .unwrap();
        let ann = PlanBuilder::from_plan(extend_students(&db, true))
            .filter(Expr::col("name").eq(Expr::lit("ann")))
            .unwrap();
        let spec = RecSpec {
            target_col: 0,
            comparator_col: 2,
            method: RecMethod::RatingLookup,
            agg: RecAggPlan::Avg,
            k: Some(10),
            unbounded_ok: false,
            score_name: "score".into(),
            exclude_seen: None,
        };
        let rs = db
            .run_plan(&targets.recommend(ann, spec).unwrap().build())
            .unwrap();
        // Courses ann rated: 101→4.0, 102→3.0; 103 has no lookup → dropped.
        // Every `taken` row for 101/102 scores; 101 appears 3×, 102 2×.
        assert_eq!(rs.rows.len(), 5);
        assert_eq!(rs.rows[0][0], Value::Int(101));
        assert_eq!(rs.rows[0][1], Value::Float(4.0));
        // exclude_seen against ann's ratings drops 101 and 102 entirely.
        let targets2 = PlanBuilder::scan(&db.catalog(), "taken")
            .unwrap()
            .select_columns(&["course"])
            .unwrap();
        let ann2 = PlanBuilder::from_plan(extend_students(&db, true))
            .filter(Expr::col("name").eq(Expr::lit("ann")))
            .unwrap();
        let spec2 = RecSpec {
            target_col: 0,
            comparator_col: 2,
            method: RecMethod::RatingLookup,
            agg: RecAggPlan::Avg,
            k: None,
            unbounded_ok: false,
            score_name: "score".into(),
            exclude_seen: Some((0, 2)),
        };
        let rs2 = db
            .run_plan(&targets2.recommend(ann2, spec2).unwrap().build())
            .unwrap();
        assert!(rs2.rows.is_empty(), "all rated courses excluded: {rs2:?}");
    }

    #[test]
    fn recommend_weighted_avg_and_nonpositive_dropped() {
        let db = nest_db();
        // Score students against each other by ratings similarity, weighting
        // by sid (a stand-in for an upstream score column).
        let targets = PlanBuilder::from_plan(extend_students(&db, true));
        let comparators = PlanBuilder::from_plan(extend_students(&db, true));
        let spec = RecSpec {
            target_col: 2,
            comparator_col: 2,
            method: RecMethod::Ratings {
                sim: crate::similarity::RatingsSim::InverseEuclidean,
                min_common: 1,
            },
            agg: RecAggPlan::WeightedAvg { weight_col: 0 },
            k: None,
            unbounded_ok: false,
            score_name: "s".into(),
            exclude_seen: None,
        };
        let rs = db
            .run_plan(&targets.recommend(comparators, spec).unwrap().build())
            .unwrap();
        // cat has an empty ratings attr: inverse-euclidean with no common
        // keys scores 0 against everyone → dropped (score <= 0).
        assert!(rs.rows.iter().all(|r| r[1] != Value::text("cat")));
        assert!(!rs.rows.is_empty());
        for r in &rs.rows {
            assert!(r[3].as_float().unwrap() > 0.0);
        }
    }

    #[test]
    fn extend_recommend_parallel_match_serial() {
        let db = nest_db();
        let mk = || {
            let targets = PlanBuilder::from_plan(extend_students(&db, false));
            let comparators = PlanBuilder::from_plan(extend_students(&db, false));
            let spec = RecSpec {
                target_col: 2,
                comparator_col: 2,
                method: RecMethod::Set(crate::similarity::SetSim::Dice),
                agg: RecAggPlan::Avg,
                k: Some(2),
                unbounded_ok: false,
                score_name: "score".into(),
                exclude_seen: None,
            };
            targets.recommend(comparators, spec).unwrap().build()
        };
        let plan = mk();
        let serial = db.run_plan(&plan).unwrap();
        for n in [2, 3, 8] {
            let parallel = db.run_plan_with(&plan, &par(n)).unwrap();
            assert_eq!(parallel, serial, "parallelism={n}");
        }
    }

    #[test]
    fn extend_key_must_be_scalar() {
        let db = nest_db();
        // Extending on the nested column itself errors.
        let base = PlanBuilder::from_plan(extend_students(&db, false));
        let related = PlanBuilder::scan(&db.catalog(), "taken")
            .unwrap()
            .select_columns(&["sid", "course"])
            .unwrap();
        let plan = base
            .extend(related, "courses", false, "again")
            .unwrap()
            .build();
        let err = db.run_plan(&plan).unwrap_err();
        assert!(err.to_string().contains("not scalar"), "{err}");
    }

    #[test]
    fn extend_recommend_profiled_render() {
        let db = nest_db();
        let targets = PlanBuilder::from_plan(extend_students(&db, true));
        let comparators = PlanBuilder::from_plan(extend_students(&db, true));
        let spec = RecSpec {
            target_col: 2,
            comparator_col: 2,
            method: RecMethod::Ratings {
                sim: crate::similarity::RatingsSim::Pearson,
                min_common: 2,
            },
            agg: RecAggPlan::Max,
            k: Some(3),
            unbounded_ok: false,
            score_name: "score".into(),
            exclude_seen: None,
        };
        let plan = targets.recommend(comparators, spec).unwrap().build();
        let (rs, profile) = db.run_plan_instrumented(&plan).unwrap();
        assert_eq!(profile.rows_out, rs.rows.len());
        let rec = profile.find("Recommend").expect("recommend profiled");
        assert_eq!(rec.children.len(), 2);
        assert!(
            rec.detail.iter().any(|d| d.contains("ratings:pearson")),
            "detail: {:?}",
            rec.detail
        );
        assert!(rec.detail.iter().any(|d| d == "top=3"), "{:?}", rec.detail);
        let ext = profile.find("Extend").expect("extend profiled");
        assert!(
            ext.detail.iter().any(|d| d == "kind=ratings"),
            "detail: {:?}",
            ext.detail
        );
    }

    #[test]
    fn split_owned_is_contiguous_and_complete() {
        for len in [0usize, 1, 5, 10, 17] {
            for parts in 1..=6 {
                let v: Vec<usize> = (0..len).collect();
                let chunks = split_owned(v, parts);
                assert_eq!(chunks.len(), parts);
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(flat, (0..len).collect::<Vec<_>>(), "{len}/{parts}");
            }
        }
    }
}
