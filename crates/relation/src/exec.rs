//! Physical execution.
//!
//! Plans execute as a pipeline of row iterators. Scans clone only the rows
//! (and columns) that survive their pushed-down filter and projection;
//! operators above stream owned rows. Pipeline breakers (hash join build
//! side, aggregation, sort) materialize as usual.
//!
//! Scans pick an **access path** at runtime: if the pushed-down predicate
//! contains an equality (or range) conjunct on the primary key or an
//! indexed column, the matching index serves the lookup and only the
//! residual predicate is evaluated per row. This is what makes FlexRecs'
//! compiled per-user queries cheap on paper-scale data.

use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::ops::Bound;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::catalog::Catalog;
use crate::error::{RelError, RelResult};
use crate::expr::{BinOp, Expr};
use crate::plan::{AggExpr, AggFn, JoinKind, LogicalPlan, SortKey};
use crate::profile::OpProfile;
use crate::row::Row;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

// ---------------------------------------------------------------------
// Metrics (handles resolved once; recording is relaxed atomics only)
// ---------------------------------------------------------------------

struct RelMetrics {
    queries: Arc<cr_obs::Counter>,
    query_ns: Arc<cr_obs::Histogram>,
    rows_out: Arc<cr_obs::Counter>,
    scan_seq: Arc<cr_obs::Counter>,
    scan_pk: Arc<cr_obs::Counter>,
    scan_index_eq: Arc<cr_obs::Counter>,
    scan_index_range: Arc<cr_obs::Counter>,
}

fn metrics() -> &'static RelMetrics {
    static M: OnceLock<RelMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = cr_obs::Registry::global();
        RelMetrics {
            queries: r.counter("relation.queries"),
            query_ns: r.histogram("relation.query_ns"),
            rows_out: r.counter("relation.rows_out"),
            scan_seq: r.counter("relation.scan.seq_scan"),
            scan_pk: r.counter("relation.scan.pk_lookup"),
            scan_index_eq: r.counter("relation.scan.index_eq"),
            scan_index_range: r.counter("relation.scan.index_range"),
        }
    })
}

/// A fully materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Empty result with a schema.
    pub fn empty(schema: Schema) -> Self {
        ResultSet {
            schema,
            rows: Vec::new(),
        }
    }

    /// Column index by (unqualified) name.
    pub fn column_index(&self, name: &str) -> RelResult<usize> {
        self.schema.index_of(name)
    }

    /// Iterate a single column's values.
    pub fn column_values(&self, name: &str) -> RelResult<Vec<&Value>> {
        let i = self.column_index(name)?;
        Ok(self.rows.iter().map(|r| &r[i]).collect())
    }

    /// First row, first column — for scalar queries (`SELECT COUNT(*) ...`).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// Render as an aligned text table (used by the example binaries to
    /// reproduce the paper's screenshots in terminal form).
    pub fn to_text_table(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        if s.len() > widths[i] {
                            widths[i] = s.len();
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                let _ = write!(out, "+-{}-", "-".repeat(*w));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, h) in headers.iter().enumerate() {
            let _ = write!(out, "| {h:<width$} ", width = widths[i]);
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                let _ = write!(out, "| {c:<width$} ", width = widths[i]);
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }
}

/// Execute a logical plan against a catalog, materializing the result.
///
/// When metrics collection is on ([`cr_obs::enabled`]) this records the
/// query counter and latency histogram; otherwise the only overhead over
/// raw execution is one relaxed atomic load.
pub fn execute(plan: &LogicalPlan, catalog: &Catalog) -> RelResult<ResultSet> {
    let started = if cr_obs::enabled() {
        Some(Instant::now())
    } else {
        None
    };
    let rows = run(plan, catalog)?;
    if let Some(t0) = started {
        let m = metrics();
        m.queries.inc();
        m.rows_out.add(rows.len() as u64);
        m.query_ns.record_duration(t0.elapsed());
    }
    Ok(ResultSet {
        schema: plan.schema().clone(),
        rows,
    })
}

/// Execute a plan with per-operator profiling: every physical operator is
/// wrapped with rows-in/rows-out/elapsed accounting and the access path
/// it chose, yielding an `EXPLAIN ANALYZE`-style [`OpProfile`] tree next
/// to the normal [`ResultSet`]. Profiling cost is per plan *node* (one
/// clock read each), not per row, so it stays within a few percent of
/// [`execute`] — the `instrumentation_overhead` bench pins this down.
pub fn execute_instrumented(
    plan: &LogicalPlan,
    catalog: &Catalog,
) -> RelResult<(ResultSet, OpProfile)> {
    let started = Instant::now();
    let (rows, profile) = run_profiled(plan, catalog)?;
    if cr_obs::enabled() {
        let m = metrics();
        m.queries.inc();
        m.rows_out.add(rows.len() as u64);
        m.query_ns.record_duration(started.elapsed());
    }
    Ok((
        ResultSet {
            schema: plan.schema().clone(),
            rows,
        },
        profile,
    ))
}

fn run(plan: &LogicalPlan, catalog: &Catalog) -> RelResult<Vec<Row>> {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filter,
            ..
        } => Ok(catalog
            .with_table(table, |t| scan_table(t, projection, filter))??
            .0),

        LogicalPlan::Filter { input, predicate } => filter_rows(run(input, catalog)?, predicate),

        LogicalPlan::Project { input, exprs, .. } => project_rows(run(input, catalog)?, exprs),

        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            ..
        } => {
            let left_rows = run(left, catalog)?;
            let right_rows = run(right, catalog)?;
            let (rows, _) = join_rows(
                left_rows,
                right_rows,
                left.schema().len(),
                right.schema().len(),
                *kind,
                on,
            )?;
            Ok(rows)
        }

        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => aggregate_rows(&run(input, catalog)?, group_by, aggs),

        LogicalPlan::Sort { input, keys } => sort_rows(run(input, catalog)?, keys),

        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => Ok(limit_rows(run(input, catalog)?, *limit, *offset)),

        LogicalPlan::Values { rows, .. } => Ok(rows.clone()),

        LogicalPlan::Union { left, right } => {
            let mut rows = run(left, catalog)?;
            rows.extend(run(right, catalog)?);
            Ok(rows)
        }
    }
}

/// Profiled twin of [`run`]: same operator implementations (the shared
/// `*_rows` helpers), with each node timed and annotated.
fn run_profiled(plan: &LogicalPlan, catalog: &Catalog) -> RelResult<(Vec<Row>, OpProfile)> {
    let t0 = Instant::now();
    let (rows, op, detail, children) = match plan {
        LogicalPlan::Scan {
            table,
            alias,
            projection,
            filter,
            ..
        } => {
            let (rows, path) =
                catalog.with_table(table, |t| scan_table(t, projection, filter))??;
            let mut detail = vec![format!("access={path}")];
            if let Some(f) = filter {
                detail.push(format!("filter={f}"));
            }
            let op = match alias {
                Some(a) if a != table => format!("Scan {table} AS {a}"),
                _ => format!("Scan {table}"),
            };
            (rows, op, detail, Vec::new())
        }

        LogicalPlan::Filter { input, predicate } => {
            let (rows, child) = run_profiled(input, catalog)?;
            let rows = filter_rows(rows, predicate)?;
            (
                rows,
                "Filter".to_owned(),
                vec![format!("predicate={predicate}")],
                vec![child],
            )
        }

        LogicalPlan::Project { input, exprs, .. } => {
            let (rows, child) = run_profiled(input, catalog)?;
            let rows = project_rows(rows, exprs)?;
            (
                rows,
                "Project".to_owned(),
                vec![format!("exprs={}", exprs.len())],
                vec![child],
            )
        }

        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            ..
        } => {
            let (left_rows, lchild) = run_profiled(left, catalog)?;
            let (right_rows, rchild) = run_profiled(right, catalog)?;
            let (rows, info) = join_rows(
                left_rows,
                right_rows,
                left.schema().len(),
                right.schema().len(),
                *kind,
                on,
            )?;
            let op = if info.hash {
                "HashJoin"
            } else {
                "NestedLoopJoin"
            };
            let mut detail = vec![format!("kind={kind:?}")];
            if info.hash {
                detail.push(format!("keys={}", info.keys));
                detail.push("build=right".to_owned());
            }
            (rows, op.to_owned(), detail, vec![lchild, rchild])
        }

        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let (rows, child) = run_profiled(input, catalog)?;
            let out = aggregate_rows(&rows, group_by, aggs)?;
            (
                out,
                "Aggregate".to_owned(),
                vec![
                    format!("group_by={}", group_by.len()),
                    format!("aggs={}", aggs.len()),
                ],
                vec![child],
            )
        }

        LogicalPlan::Sort { input, keys } => {
            let (rows, child) = run_profiled(input, catalog)?;
            let rows = sort_rows(rows, keys)?;
            (
                rows,
                "Sort".to_owned(),
                vec![format!("keys={}", keys.len())],
                vec![child],
            )
        }

        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let (rows, child) = run_profiled(input, catalog)?;
            let rows = limit_rows(rows, *limit, *offset);
            let mut detail = Vec::new();
            if let Some(n) = limit {
                detail.push(format!("limit={n}"));
            }
            if *offset > 0 {
                detail.push(format!("offset={offset}"));
            }
            (rows, "Limit".to_owned(), detail, vec![child])
        }

        LogicalPlan::Values { rows, .. } => {
            (rows.clone(), "Values".to_owned(), Vec::new(), Vec::new())
        }

        LogicalPlan::Union { left, right } => {
            let (mut rows, lchild) = run_profiled(left, catalog)?;
            let (right_rows, rchild) = run_profiled(right, catalog)?;
            rows.extend(right_rows);
            (rows, "Union".to_owned(), Vec::new(), vec![lchild, rchild])
        }
    };
    let profile = OpProfile {
        op,
        detail,
        rows_out: rows.len(),
        elapsed: t0.elapsed(),
        children,
    };
    Ok((rows, profile))
}

// ---------------------------------------------------------------------
// Row-level operator implementations, shared by the plain and profiled
// executors so both paths compute identical results.
// ---------------------------------------------------------------------

fn filter_rows(rows: Vec<Row>, predicate: &Expr) -> RelResult<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len() / 2);
    for r in rows {
        if predicate.eval_predicate(&r)? {
            out.push(r);
        }
    }
    Ok(out)
}

fn project_rows(rows: Vec<Row>, exprs: &[(Expr, String)]) -> RelResult<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        let mut projected = Vec::with_capacity(exprs.len());
        for (e, _) in exprs {
            projected.push(e.eval(&r)?);
        }
        out.push(projected);
    }
    Ok(out)
}

fn limit_rows(rows: Vec<Row>, limit: Option<usize>, offset: usize) -> Vec<Row> {
    let it = rows.into_iter().skip(offset);
    match limit {
        Some(n) => it.take(n).collect(),
        None => it.collect(),
    }
}

// ---------------------------------------------------------------------
// Scan + access-path selection
// ---------------------------------------------------------------------

/// How a scan will fetch rows.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    SeqScan,
    /// Primary-key point lookup with the given key.
    PkLookup(Vec<Value>),
    /// Secondary-index equality lookup: (index name, key).
    IndexEq(String, Vec<Value>),
    /// Secondary B-tree index range scan on its leading column.
    IndexRange {
        index: String,
        lower: Bound<Value>,
        upper: Bound<Value>,
    },
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn key(vals: &[Value]) -> String {
            vals.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        }
        fn bound(b: &Bound<Value>, open: &str, close: &str) -> String {
            match b {
                Bound::Included(v) => format!("{open}={v}"),
                Bound::Excluded(v) => format!("{open}{v}"),
                Bound::Unbounded => close.to_owned(),
            }
        }
        match self {
            AccessPath::SeqScan => write!(f, "SeqScan"),
            AccessPath::PkLookup(k) => write!(f, "PkLookup[{}]", key(k)),
            AccessPath::IndexEq(name, k) => write!(f, "IndexEq({name})[{}]", key(k)),
            AccessPath::IndexRange {
                index,
                lower,
                upper,
            } => write!(
                f,
                "IndexRange({index})[{}..{}]",
                bound(lower, ">", ""),
                bound(upper, "<", "")
            ),
        }
    }
}

/// Decide the access path for a scan's pushed-down filter. Public so that
/// benches and tests can assert index usage (ablation A3 in DESIGN.md).
pub fn choose_access_path(table: &Table, filter: &Option<Expr>) -> AccessPath {
    let Some(filter) = filter else {
        return AccessPath::SeqScan;
    };
    let conjuncts = filter.split_conjunction();

    // 1. Full primary-key equality?
    let pk = table.pk_columns();
    if !pk.is_empty() {
        let mut key: Vec<Option<Value>> = vec![None; pk.len()];
        for c in &conjuncts {
            if let Some((col, v)) = as_col_eq_literal(c) {
                if let Some(pos) = pk.iter().position(|&p| p == col) {
                    key[pos] = Some(v);
                }
            }
        }
        if key.iter().all(Option::is_some) {
            return AccessPath::PkLookup(key.into_iter().map(Option::unwrap).collect());
        }
    }

    // 2. Single-column secondary index equality?
    for c in &conjuncts {
        if let Some((col, v)) = as_col_eq_literal(c) {
            if let Some(idx) = table.index_on_column(col) {
                if idx.columns.len() == 1 {
                    return AccessPath::IndexEq(idx.name.clone(), vec![v]);
                }
            }
        }
    }

    // 3. Range on a B-tree index's leading column?
    let mut range: HashMap<usize, (Bound<Value>, Bound<Value>)> = HashMap::new();
    for c in &conjuncts {
        if let Some((col, op, v)) = as_col_cmp_literal(c) {
            let entry = range
                .entry(col)
                .or_insert((Bound::Unbounded, Bound::Unbounded));
            match op {
                BinOp::Gt => entry.0 = Bound::Excluded(v),
                BinOp::GtEq => entry.0 = Bound::Included(v),
                BinOp::Lt => entry.1 = Bound::Excluded(v),
                BinOp::LtEq => entry.1 = Bound::Included(v),
                _ => {}
            }
        }
    }
    for (col, (lo, hi)) in range {
        if matches!((&lo, &hi), (Bound::Unbounded, Bound::Unbounded)) {
            continue;
        }
        if let Some(idx) = table.index_on_column(col) {
            if idx.kind() == crate::index::IndexKind::BTree && idx.columns.len() == 1 {
                return AccessPath::IndexRange {
                    index: idx.name.clone(),
                    lower: lo,
                    upper: hi,
                };
            }
        }
    }

    AccessPath::SeqScan
}

fn as_col_eq_literal(e: &Expr) -> Option<(usize, Value)> {
    if let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = e
    {
        match (&**left, &**right) {
            (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => {
                return Some((*c, v.clone()))
            }
            _ => {}
        }
    }
    None
}

fn as_col_cmp_literal(e: &Expr) -> Option<(usize, BinOp, Value)> {
    if let Expr::Binary { op, left, right } = e {
        if !op.is_comparison() {
            return None;
        }
        match (&**left, &**right) {
            (Expr::Column(c), Expr::Literal(v)) => return Some((*c, *op, v.clone())),
            (Expr::Literal(v), Expr::Column(c)) => {
                // Flip the comparison: v < col  ≡  col > v.
                let flipped = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::LtEq => BinOp::GtEq,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::GtEq => BinOp::LtEq,
                    other => *other,
                };
                return Some((*c, flipped, v.clone()));
            }
            _ => {}
        }
    }
    None
}

/// Scan a table, returning the matching rows and the access path that
/// served them (surfaced in EXPLAIN ANALYZE output).
fn scan_table(
    table: &Table,
    projection: &Option<Vec<usize>>,
    filter: &Option<Expr>,
) -> RelResult<(Vec<Row>, AccessPath)> {
    let path = choose_access_path(table, filter);
    if cr_obs::enabled() {
        let m = metrics();
        match &path {
            AccessPath::SeqScan => m.scan_seq.inc(),
            AccessPath::PkLookup(_) => m.scan_pk.inc(),
            AccessPath::IndexEq(..) => m.scan_index_eq.inc(),
            AccessPath::IndexRange { .. } => m.scan_index_range.inc(),
        }
    }
    let project = |r: &Row| -> Row {
        match projection {
            None => r.clone(),
            Some(cols) => cols.iter().map(|&i| r[i].clone()).collect(),
        }
    };
    let passes = |r: &Row| -> RelResult<bool> {
        match filter {
            Some(f) => f.eval_predicate(r),
            None => Ok(true),
        }
    };
    let mut out = Vec::new();
    match &path {
        AccessPath::SeqScan => {
            for (_, r) in table.scan() {
                if passes(r)? {
                    out.push(project(r));
                }
            }
        }
        AccessPath::PkLookup(key) => {
            if let Some(r) = table.get_by_pk(key) {
                if passes(r)? {
                    out.push(project(r));
                }
            }
        }
        AccessPath::IndexEq(name, key) => {
            let idx = table
                .index(name)
                .ok_or_else(|| RelError::UnknownIndex(name.clone()))?;
            if let Some(rids) = idx.get(key) {
                for &rid in rids {
                    if let Some(r) = table.get(rid) {
                        if passes(r)? {
                            out.push(project(r));
                        }
                    }
                }
            }
        }
        AccessPath::IndexRange {
            index,
            lower,
            upper,
        } => {
            let idx = table
                .index(index)
                .ok_or_else(|| RelError::UnknownIndex(index.clone()))?;
            let lo_key = match &lower {
                Bound::Included(v) => Bound::Included(vec![v.clone()]),
                Bound::Excluded(v) => Bound::Excluded(vec![v.clone()]),
                Bound::Unbounded => Bound::Unbounded,
            };
            let hi_key = match &upper {
                Bound::Included(v) => Bound::Included(vec![v.clone()]),
                Bound::Excluded(v) => Bound::Excluded(vec![v.clone()]),
                Bound::Unbounded => Bound::Unbounded,
            };
            let lo_ref = match &lo_key {
                Bound::Included(k) => Bound::Included(k),
                Bound::Excluded(k) => Bound::Excluded(k),
                Bound::Unbounded => Bound::Unbounded,
            };
            let hi_ref = match &hi_key {
                Bound::Included(k) => Bound::Included(k),
                Bound::Excluded(k) => Bound::Excluded(k),
                Bound::Unbounded => Bound::Unbounded,
            };
            for rid in idx.range(lo_ref, hi_ref) {
                if let Some(r) = table.get(rid) {
                    if passes(r)? {
                        out.push(project(r));
                    }
                }
            }
        }
    }
    Ok((out, path))
}

// ---------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------

/// Extract equi-join keys from a join predicate bound over the concatenated
/// schema: conjuncts of the form `left_col = right_col`. Returns
/// `(left_keys, right_keys_relative, residual)`.
fn extract_equi_keys(on: &Expr, left_width: usize) -> (Vec<usize>, Vec<usize>, Vec<Expr>) {
    let mut lk = Vec::new();
    let mut rk = Vec::new();
    let mut residual = Vec::new();
    for c in on.split_conjunction() {
        if let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = &c
        {
            if let (Expr::Column(a), Expr::Column(b)) = (&**left, &**right) {
                let (a, b) = (*a, *b);
                if a < left_width && b >= left_width {
                    lk.push(a);
                    rk.push(b - left_width);
                    continue;
                }
                if b < left_width && a >= left_width {
                    lk.push(b);
                    rk.push(a - left_width);
                    continue;
                }
            }
        }
        residual.push(c);
    }
    (lk, rk, residual)
}

/// Which algorithm a join used (EXPLAIN ANALYZE annotation).
struct JoinInfo {
    hash: bool,
    keys: usize,
}

fn join_rows(
    left_rows: Vec<Row>,
    right_rows: Vec<Row>,
    left_width: usize,
    right_width: usize,
    kind: JoinKind,
    on: &Expr,
) -> RelResult<(Vec<Row>, JoinInfo)> {
    let (lk, rk, residual) = extract_equi_keys(on, left_width);
    let residual = if residual.is_empty() {
        None
    } else {
        Some(Expr::conjoin(residual))
    };

    let mut out = Vec::new();
    if lk.is_empty() {
        // Nested-loop join on the full predicate.
        for l in &left_rows {
            let mut matched = false;
            for r in &right_rows {
                let mut combined = Vec::with_capacity(left_width + right_width);
                combined.extend_from_slice(l);
                combined.extend_from_slice(r);
                if on.eval_predicate(&combined)? {
                    matched = true;
                    out.push(combined);
                }
            }
            if !matched && kind == JoinKind::LeftOuter {
                let mut combined = Vec::with_capacity(left_width + right_width);
                combined.extend_from_slice(l);
                combined.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(combined);
            }
        }
    } else {
        // Hash join: build on the right, probe from the left.
        let mut build: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right_rows.len());
        for (i, r) in right_rows.iter().enumerate() {
            let key: Vec<Value> = rk.iter().map(|&k| r[k].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue; // NULL keys never join
            }
            build.entry(key).or_default().push(i);
        }
        for l in &left_rows {
            let key: Vec<Value> = lk.iter().map(|&k| l[k].clone()).collect();
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                if let Some(idxs) = build.get(&key) {
                    for &i in idxs {
                        let mut combined = Vec::with_capacity(left_width + right_width);
                        combined.extend_from_slice(l);
                        combined.extend_from_slice(&right_rows[i]);
                        let ok = match &residual {
                            Some(p) => p.eval_predicate(&combined)?,
                            None => true,
                        };
                        if ok {
                            matched = true;
                            out.push(combined);
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::LeftOuter {
                let mut combined = Vec::with_capacity(left_width + right_width);
                combined.extend_from_slice(l);
                combined.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(combined);
            }
        }
    }
    Ok((
        out,
        JoinInfo {
            hash: !lk.is_empty(),
            keys: lk.len(),
        },
    ))
}

// ---------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum {
        total: f64,
        any: bool,
        int: bool,
    },
    Avg {
        total: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    /// DISTINCT wrapper: collected values, finished by the inner fn.
    Distinct(Vec<Value>, AggFn),
}

impl AggState {
    fn new(a: &AggExpr) -> AggState {
        if a.distinct {
            return AggState::Distinct(Vec::new(), a.func);
        }
        match a.func {
            AggFn::Count | AggFn::CountStar => AggState::Count(0),
            AggFn::Sum => AggState::Sum {
                total: 0.0,
                any: false,
                int: true,
            },
            AggFn::Avg => AggState::Avg { total: 0.0, n: 0 },
            AggFn::Min => AggState::Min(None),
            AggFn::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Value, is_star: bool) -> RelResult<()> {
        match self {
            AggState::Count(n) => {
                if is_star || !v.is_null() {
                    *n += 1;
                }
            }
            AggState::Sum { total, any, int } => {
                if !v.is_null() {
                    if !matches!(v, Value::Int(_)) {
                        *int = false;
                    }
                    *total += v.as_float()?;
                    *any = true;
                }
            }
            AggState::Avg { total, n } => {
                if !v.is_null() {
                    *total += v.as_float()?;
                    *n += 1;
                }
            }
            AggState::Min(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v < *c) {
                    *cur = Some(v);
                }
            }
            AggState::Max(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v > *c) {
                    *cur = Some(v);
                }
            }
            AggState::Distinct(vals, _) => {
                if is_star || !v.is_null() {
                    vals.push(v);
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> RelResult<Value> {
        Ok(match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum { total, any, int } => {
                if !any {
                    Value::Null
                } else if int {
                    Value::Int(total as i64)
                } else {
                    Value::float(total)
                }
            }
            AggState::Avg { total, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::float(total / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Distinct(mut vals, func) => {
                vals.sort();
                vals.dedup();
                let mut inner = AggState::new(&AggExpr {
                    func,
                    arg: Expr::lit(0i64),
                    distinct: false,
                    name: String::new(),
                });
                for v in vals {
                    inner.update(v, false)?;
                }
                inner.finish()?
            }
        })
    }
}

fn aggregate_rows(rows: &[Row], group_by: &[Expr], aggs: &[AggExpr]) -> RelResult<Vec<Row>> {
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    // Preserve first-seen group order for deterministic output.
    let mut order: Vec<Vec<Value>> = Vec::new();
    for r in rows {
        let mut key = Vec::with_capacity(group_by.len());
        for g in group_by {
            key.push(g.eval(r)?);
        }
        let states = match groups.get_mut(&key) {
            Some(s) => s,
            None => {
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| aggs.iter().map(AggState::new).collect())
            }
        };
        for (state, a) in states.iter_mut().zip(aggs) {
            let is_star = a.func == AggFn::CountStar;
            let v = if is_star {
                Value::Int(1)
            } else {
                a.arg.eval(r)?
            };
            state.update(v, is_star)?;
        }
    }
    // Global aggregate over empty input still yields one row.
    if groups.is_empty() && group_by.is_empty() {
        let states: Vec<AggState> = aggs.iter().map(AggState::new).collect();
        let mut row = Vec::with_capacity(aggs.len());
        for s in states {
            row.push(s.finish()?);
        }
        return Ok(vec![row]);
    }
    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let states = groups.remove(&key).expect("group recorded in order");
        let mut row = key;
        for s in states {
            row.push(s.finish()?);
        }
        out.push(row);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------

fn sort_rows(mut rows: Vec<Row>, keys: &[SortKey]) -> RelResult<Vec<Row>> {
    // Pre-compute key tuples so expression evaluation happens O(n), not
    // O(n log n); then sort indices and gather.
    let mut keyed: Vec<(Vec<Value>, usize)> = Vec::with_capacity(rows.len());
    for (i, r) in rows.iter().enumerate() {
        let mut k = Vec::with_capacity(keys.len());
        for sk in keys {
            k.push(sk.expr.eval(r)?);
        }
        keyed.push((k, i));
    }
    keyed.sort_by(|(a, ai), (b, bi)| {
        for (i, sk) in keys.iter().enumerate() {
            let ord = a[i].total_cmp(&b[i]);
            let ord = if sk.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        ai.cmp(bi) // stable tiebreak
    });
    let mut out = Vec::with_capacity(rows.len());
    for (_, i) in keyed {
        out.push(std::mem::take(&mut rows[i]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::plan::PlanBuilder;

    fn db() -> Database {
        let db = Database::new();
        db.execute_sql(
            "CREATE TABLE courses (id INT PRIMARY KEY, dep TEXT, units INT, rating FLOAT)",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO courses VALUES \
             (1,'CS',5,4.5),(2,'CS',3,3.0),(3,'HIST',4,4.0),(4,'HIST',4,NULL),(5,'MATH',3,2.5)",
        )
        .unwrap();
        db.execute_sql("CREATE TABLE comments (cid INT PRIMARY KEY, course_id INT, text TEXT)")
            .unwrap();
        db.execute_sql("INSERT INTO comments VALUES (10,1,'great'),(11,1,'hard'),(12,3,'fun')")
            .unwrap();
        db
    }

    #[test]
    fn seq_scan_all() {
        let db = db();
        let rs = db.query_sql("SELECT * FROM courses").unwrap();
        assert_eq!(rs.rows.len(), 5);
        assert_eq!(rs.schema.len(), 4);
    }

    #[test]
    fn pk_lookup_path_chosen() {
        let db = db();
        db.catalog()
            .with_table("courses", |t| {
                let filter = Some(Expr::col_idx(0).eq(Expr::lit(3i64)));
                assert_eq!(
                    choose_access_path(t, &filter),
                    AccessPath::PkLookup(vec![Value::Int(3)])
                );
            })
            .unwrap();
    }

    #[test]
    fn secondary_index_path_chosen_and_correct() {
        let db = db();
        db.create_index("courses", "by_dep", &["dep"], false)
            .unwrap();
        db.catalog()
            .with_table("courses", |t| {
                let filter = Some(Expr::col_idx(1).eq(Expr::lit("CS")));
                assert_eq!(
                    choose_access_path(t, &filter),
                    AccessPath::IndexEq("by_dep".into(), vec![Value::text("CS")])
                );
            })
            .unwrap();
        let rs = db
            .query_sql("SELECT id FROM courses WHERE dep = 'CS'")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn btree_range_path() {
        let db = db();
        db.create_btree_index("courses", "by_units", &["units"], false)
            .unwrap();
        let rs = db
            .query_sql("SELECT id FROM courses WHERE units >= 4 AND units <= 5")
            .unwrap();
        let mut ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        ids.sort();
        assert_eq!(ids, vec![1, 3, 4]);
        db.catalog()
            .with_table("courses", |t| {
                let filter = Some(
                    Expr::col_idx(2)
                        .gt_eq(Expr::lit(4i64))
                        .and(Expr::col_idx(2).lt_eq(Expr::lit(5i64))),
                );
                assert!(matches!(
                    choose_access_path(t, &filter),
                    AccessPath::IndexRange { .. }
                ));
            })
            .unwrap();
    }

    #[test]
    fn hash_join_inner() {
        let db = db();
        let rs = db
            .query_sql(
                "SELECT courses.id, comments.text FROM courses \
                 JOIN comments ON courses.id = comments.course_id",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn left_outer_join_extends_with_nulls() {
        let db = db();
        let rs = db
            .query_sql(
                "SELECT courses.id, comments.text FROM courses \
                 LEFT JOIN comments ON courses.id = comments.course_id \
                 ORDER BY courses.id",
            )
            .unwrap();
        // 1 has two comments, 3 has one, 2/4/5 null-extended: 6 rows.
        assert_eq!(rs.rows.len(), 6);
        let null_rows = rs.rows.iter().filter(|r| r[1].is_null()).count();
        assert_eq!(null_rows, 3);
    }

    #[test]
    fn nested_loop_for_non_equi_join() {
        let db = db();
        let rs = db
            .query_sql("SELECT a.id, b.id FROM courses a JOIN courses b ON a.units < b.units")
            .unwrap();
        // pairs with strictly smaller units: units are [5,3,4,4,3]
        // 3<4 (2 with id3), 3<4(id4), 3<5; two rows with units 3 → 2*3=6, 4<5 ×2 → 8
        assert_eq!(rs.rows.len(), 8);
    }

    #[test]
    fn aggregate_groups_and_nulls() {
        let db = db();
        let rs = db
            .query_sql(
                "SELECT dep, COUNT(*) AS n, AVG(rating) AS avg_r, SUM(units) AS su \
                 FROM courses GROUP BY dep ORDER BY dep",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
        // CS: n=2, avg=(4.5+3)/2=3.75
        assert_eq!(rs.rows[0][0], Value::text("CS"));
        assert_eq!(rs.rows[0][1], Value::Int(2));
        assert_eq!(rs.rows[0][2], Value::Float(3.75));
        // HIST: one NULL rating → avg over non-null only = 4.0
        assert_eq!(rs.rows[1][2], Value::Float(4.0));
    }

    #[test]
    fn count_ignores_null_countstar_does_not() {
        let db = db();
        let rs = db
            .query_sql("SELECT COUNT(rating) AS c, COUNT(*) AS cs FROM courses")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(4));
        assert_eq!(rs.rows[0][1], Value::Int(5));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = db();
        let rs = db
            .query_sql("SELECT COUNT(*) AS c, MAX(units) AS m FROM courses WHERE id > 999")
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert!(rs.rows[0][1].is_null());
    }

    #[test]
    fn distinct_count() {
        let db = db();
        let rs = db
            .query_sql("SELECT COUNT(DISTINCT dep) AS d FROM courses")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn sort_asc_desc_with_nulls_first() {
        let db = db();
        let rs = db
            .query_sql("SELECT id, rating FROM courses ORDER BY rating DESC, id")
            .unwrap();
        // DESC: NULL sorts first ascending → last descending? Our total
        // order puts NULL lowest, so DESC puts it last.
        let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 3, 2, 5, 4]);
    }

    #[test]
    fn limit_offset() {
        let db = db();
        let rs = db
            .query_sql("SELECT id FROM courses ORDER BY id LIMIT 2 OFFSET 1")
            .unwrap();
        let ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn union_appends() {
        let db = db();
        let rs = db
            .query_sql(
                "SELECT id FROM courses WHERE dep = 'CS' \
                 UNION ALL SELECT id FROM courses WHERE dep = 'MATH'",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn result_set_helpers() {
        let db = db();
        let rs = db.query_sql("SELECT COUNT(*) AS n FROM courses").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(5)));
        let table = rs.to_text_table();
        assert!(table.contains("| n "));
        assert!(table.contains("| 5 "));
    }

    #[test]
    fn programmatic_plan_matches_sql() {
        let db = db();
        let plan = PlanBuilder::scan(&db.catalog(), "courses")
            .unwrap()
            .filter(Expr::col("units").gt_eq(Expr::lit(4i64)))
            .unwrap()
            .select_columns(&["id"])
            .unwrap()
            .sort_by("id", false)
            .unwrap()
            .build();
        let a = db.run_plan(&plan).unwrap();
        let b = db
            .query_sql("SELECT id FROM courses WHERE units >= 4 ORDER BY id")
            .unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn instrumented_matches_plain_and_annotates() {
        let db = db();
        let sql = "SELECT courses.id, comments.text FROM courses \
                   JOIN comments ON courses.id = comments.course_id \
                   WHERE courses.units >= 3 ORDER BY courses.id";
        let plain = db.query_sql(sql).unwrap();
        let (rs, profile) = db.explain_analyze_sql(sql).unwrap();
        assert_eq!(rs.rows, plain.rows);
        // Root operator's row count equals the result set's.
        assert_eq!(profile.rows_out, rs.rows.len());
        // The join and both scans are in the tree, scans annotated with
        // their access path.
        let join = profile.find("HashJoin").expect("join profiled");
        assert_eq!(join.children.len(), 2);
        let scan = profile.find("Scan courses").expect("scan profiled");
        assert!(scan.detail.iter().any(|d| d.starts_with("access=")));
        let text = profile.render();
        assert!(text.contains("rows="));
        assert!(text.contains("time="));
    }

    #[test]
    fn instrumented_reports_pk_lookup_access_path() {
        let db = db();
        let (rs, profile) = db
            .explain_analyze_sql("SELECT id FROM courses WHERE id = 3")
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        let scan = profile.find("Scan courses").expect("scan profiled");
        assert!(
            scan.detail.iter().any(|d| d.contains("PkLookup")),
            "detail: {:?}",
            scan.detail
        );
    }

    #[test]
    fn join_null_keys_never_match() {
        let db = Database::new();
        db.execute_sql("CREATE TABLE a (x INT)").unwrap();
        db.execute_sql("CREATE TABLE b (y INT)").unwrap();
        db.execute_sql("INSERT INTO a VALUES (NULL),(1)").unwrap();
        db.execute_sql("INSERT INTO b VALUES (NULL),(1)").unwrap();
        let rs = db.query_sql("SELECT * FROM a JOIN b ON a.x = b.y").unwrap();
        assert_eq!(rs.rows.len(), 1);
    }
}
