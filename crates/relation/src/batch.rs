//! Columnar batches: typed value vectors, validity bitmaps, selection
//! vectors.
//!
//! The vectorized executor (PR 7) represents intermediate results as a
//! [`Batch`] — a set of equal-length [`Column`]s plus an optional
//! *selection vector* naming the slots that are logically present. Filters
//! narrow the selection instead of copying survivors; projections that
//! merely pick columns clone an `Arc`, not data. Values are materialized
//! only at pipeline breakers (hash build, sort gather, final result).
//!
//! A [`Column`] stores values in a type-specialized vector ([`ColumnData`])
//! when the column is homogeneous (`Int`/`Float`/`Bool`/`Text` per
//! [`crate::schema::DataType`]), with a validity bitmap marking NULL slots.
//! Heterogeneous or nested data (`Date`, `Set`, `Ratings`, mixed numerics)
//! degrades to a `Generic` vector of [`Value`]s with NULLs inline — the
//! representation is an optimization, never a semantic: `Column::value(i)`
//! reconstructs exactly the `Value` that was pushed.

use std::borrow::Cow;
use std::sync::Arc;

use crate::row::Row;
use crate::schema::DataType;
use crate::value::Value;

/// Type-specialized value storage for one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Text(Vec<String>),
    /// Fallback for nested, mixed-type, or date data: plain values with
    /// NULLs inline (no separate validity bitmap).
    Generic(Vec<Value>),
}

/// One column of a [`Batch`]: typed storage plus an optional validity
/// bitmap (`true` = valid). `Generic` storage never carries a bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Option<Vec<bool>>,
}

impl Column {
    /// An empty (zero-length) column.
    pub fn empty() -> Column {
        Column {
            data: ColumnData::Generic(Vec::new()),
            validity: None,
        }
    }

    /// Build a column from owned values.
    pub fn from_values(values: Vec<Value>) -> Column {
        let mut b = ColumnBuilder::with_capacity(values.len());
        for v in values {
            b.push(v);
        }
        b.finish()
    }

    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Text(v) => v.len(),
            ColumnData::Generic(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Is slot `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        if let Some(v) = &self.validity {
            return !v[i];
        }
        match &self.data {
            ColumnData::Generic(v) => v[i].is_null(),
            _ => false,
        }
    }

    /// Reconstruct the value at slot `i` (clones Text/nested payloads).
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        if let Some(v) = &self.validity {
            if !v[i] {
                return Value::Null;
            }
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Text(v) => Value::Text(v[i].clone()),
            ColumnData::Generic(v) => v[i].clone(),
        }
    }

    /// Borrow the value at slot `i` without cloning — only possible for
    /// `Generic` storage (nested rec data lives there). Used by the
    /// batch Recommend path to score `Set`/`Ratings` targets in place.
    #[inline]
    pub fn value_ref(&self, i: usize) -> Option<&Value> {
        match &self.data {
            ColumnData::Generic(v) => Some(&v[i]),
            _ => None,
        }
    }

    /// A dense copy of the slots named by `idx`, preserving typed storage.
    pub fn gather(&self, idx: &[u32]) -> Column {
        let gathered_validity = |validity: &Option<Vec<bool>>| {
            validity
                .as_ref()
                .map(|v| idx.iter().map(|&i| v[i as usize]).collect::<Vec<_>>())
                .filter(|v: &Vec<bool>| v.iter().any(|ok| !ok))
        };
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => ColumnData::Float(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Text(v) => {
                ColumnData::Text(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnData::Generic(v) => {
                ColumnData::Generic(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        Column {
            validity: gathered_validity(&self.validity),
            data,
        }
    }

    /// Clone out all values as a plain `Vec<Value>`.
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.value(i)).collect()
    }
}

/// Incremental [`Column`] builder. Starts type-undecided, specializes on
/// the first non-NULL value, and degrades to `Generic` storage the moment
/// a value of another type (or a nested/date value) arrives.
#[derive(Debug)]
pub struct ColumnBuilder {
    data: Option<ColumnData>,
    validity: Option<Vec<bool>>,
    /// NULLs seen before the storage type was decided.
    pending_nulls: usize,
}

impl ColumnBuilder {
    pub fn new() -> ColumnBuilder {
        ColumnBuilder::with_capacity(0)
    }

    pub fn with_capacity(_cap: usize) -> ColumnBuilder {
        ColumnBuilder {
            data: None,
            validity: None,
            pending_nulls: 0,
        }
    }

    /// Pre-commit to the storage for a schema type (used when building
    /// table columns, where the type is known up front).
    pub fn for_type(ty: DataType, cap: usize) -> ColumnBuilder {
        let data = match ty {
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
            DataType::Text => ColumnData::Text(Vec::with_capacity(cap)),
            DataType::Date | DataType::Set | DataType::Ratings => {
                ColumnData::Generic(Vec::with_capacity(cap))
            }
        };
        ColumnBuilder {
            data: Some(data),
            validity: None,
            pending_nulls: 0,
        }
    }

    fn len(&self) -> usize {
        match &self.data {
            None => self.pending_nulls,
            Some(ColumnData::Int(v)) => v.len(),
            Some(ColumnData::Float(v)) => v.len(),
            Some(ColumnData::Bool(v)) => v.len(),
            Some(ColumnData::Text(v)) => v.len(),
            Some(ColumnData::Generic(v)) => v.len(),
        }
    }

    /// Convert current typed storage to `Generic`, preserving every slot.
    fn degrade(&mut self) {
        let n = self.len();
        let snapshot = Column {
            data: self
                .data
                .take()
                .unwrap_or_else(|| ColumnData::Generic(vec![Value::Null; self.pending_nulls])),
            validity: self.validity.take(),
        };
        let mut generic = Vec::with_capacity(n);
        for i in 0..snapshot.len() {
            generic.push(snapshot.value(i));
        }
        generic.resize(n, Value::Null);
        self.data = Some(ColumnData::Generic(generic));
        self.pending_nulls = 0;
    }

    fn push_null(&mut self) {
        match &mut self.data {
            None => self.pending_nulls += 1,
            Some(ColumnData::Generic(v)) => v.push(Value::Null),
            Some(typed) => {
                let n = match typed {
                    ColumnData::Int(v) => {
                        v.push(0);
                        v.len()
                    }
                    ColumnData::Float(v) => {
                        v.push(0.0);
                        v.len()
                    }
                    ColumnData::Bool(v) => {
                        v.push(false);
                        v.len()
                    }
                    ColumnData::Text(v) => {
                        v.push(String::new());
                        v.len()
                    }
                    ColumnData::Generic(_) => unreachable!("generic handled above"),
                };
                self.validity
                    .get_or_insert_with(|| vec![true; n - 1])
                    .push(false);
            }
        }
    }

    /// Append a value. NULLs go to the validity bitmap (typed storage) or
    /// inline (generic storage).
    pub fn push(&mut self, v: Value) {
        if v.is_null() {
            return self.push_null();
        }
        // Decide storage on the first non-NULL value.
        if self.data.is_none() {
            let nulls = self.pending_nulls;
            self.pending_nulls = 0;
            let (data, validity) = match &v {
                Value::Int(_) => (ColumnData::Int(Vec::new()), true),
                Value::Float(_) => (ColumnData::Float(Vec::new()), true),
                Value::Bool(_) => (ColumnData::Bool(Vec::new()), true),
                Value::Text(_) => (ColumnData::Text(Vec::new()), true),
                _ => (ColumnData::Generic(Vec::new()), false),
            };
            self.data = Some(data);
            if nulls > 0 {
                if validity {
                    self.validity = Some(vec![false; nulls]);
                    match self.data.as_mut() {
                        Some(ColumnData::Int(d)) => d.resize(nulls, 0),
                        Some(ColumnData::Float(d)) => d.resize(nulls, 0.0),
                        Some(ColumnData::Bool(d)) => d.resize(nulls, false),
                        Some(ColumnData::Text(d)) => d.resize(nulls, String::new()),
                        _ => {}
                    }
                } else if let Some(ColumnData::Generic(d)) = self.data.as_mut() {
                    d.resize(nulls, Value::Null);
                }
            }
        }
        let rejected = match (self.data.as_mut(), v) {
            (Some(ColumnData::Int(d)), Value::Int(i)) => {
                d.push(i);
                None
            }
            (Some(ColumnData::Float(d)), Value::Float(f)) => {
                d.push(f);
                None
            }
            (Some(ColumnData::Bool(d)), Value::Bool(b)) => {
                d.push(b);
                None
            }
            (Some(ColumnData::Text(d)), Value::Text(s)) => {
                d.push(s);
                None
            }
            (Some(ColumnData::Generic(d)), v) => {
                d.push(v);
                return;
            }
            (_, v) => Some(v),
        };
        match rejected {
            None => {
                if let Some(val) = &mut self.validity {
                    val.push(true);
                }
            }
            Some(v) => {
                // Type mismatch: degrade and retry (generic accepts anything).
                self.degrade();
                if let Some(ColumnData::Generic(d)) = self.data.as_mut() {
                    d.push(v);
                }
            }
        }
    }

    pub fn finish(mut self) -> Column {
        if self.data.is_none() {
            // All NULLs (or empty).
            return Column {
                data: ColumnData::Generic(vec![Value::Null; self.pending_nulls]),
                validity: None,
            };
        }
        let validity = self.validity.take().filter(|v| v.iter().any(|ok| !ok));
        Column {
            data: self.data.take().unwrap_or(ColumnData::Generic(Vec::new())),
            validity,
        }
    }
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        ColumnBuilder::new()
    }
}

/// A batch: equal-length columns plus an optional selection vector naming
/// the live slots (in output order). Columns are `Arc`-shared so that
/// column-picking projections and repeated scans are zero-copy.
#[derive(Debug, Clone)]
pub struct Batch {
    columns: Vec<Arc<Column>>,
    /// Slot indices (into the columns) that are logically present, in
    /// order. `None` means all of `0..base_rows`.
    sel: Option<Vec<u32>>,
    base_rows: usize,
}

impl Batch {
    /// A batch over `columns`, all of which must have length `base_rows`.
    pub fn new(columns: Vec<Arc<Column>>, base_rows: usize) -> Batch {
        debug_assert!(columns.iter().all(|c| c.len() == base_rows));
        Batch {
            columns,
            sel: None,
            base_rows,
        }
    }

    /// An empty batch with `width` empty columns.
    pub fn empty(width: usize) -> Batch {
        Batch::new((0..width).map(|_| Arc::new(Column::empty())).collect(), 0)
    }

    /// Transpose rows into columns.
    pub fn from_rows(rows: &[Row], width: usize) -> Batch {
        let mut builders: Vec<ColumnBuilder> = (0..width)
            .map(|_| ColumnBuilder::with_capacity(rows.len()))
            .collect();
        for r in rows {
            for (c, b) in builders.iter_mut().enumerate() {
                b.push(r.get(c).cloned().unwrap_or(Value::Null));
            }
        }
        Batch::new(
            builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
            rows.len(),
        )
    }

    /// Number of live (selected) rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.base_rows,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn width(&self) -> usize {
        self.columns.len()
    }

    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    pub fn column(&self, c: usize) -> &Arc<Column> {
        &self.columns[c]
    }

    /// Does this batch carry a selection vector (i.e. live rows are a
    /// subset of the underlying slots)?
    pub fn has_selection(&self) -> bool {
        self.sel.is_some()
    }

    /// The base-slot indices of the live rows, in output order.
    pub fn selection(&self) -> Cow<'_, [u32]> {
        match &self.sel {
            Some(s) => Cow::Borrowed(s),
            None => Cow::Owned((0..self.base_rows as u32).collect()),
        }
    }

    /// Narrow to the view positions in `keep` (indices into the *current*
    /// live rows, in output order). Composes with an existing selection.
    pub fn select(mut self, keep: Vec<u32>) -> Batch {
        self.sel = Some(match self.sel.take() {
            Some(old) => keep.into_iter().map(|j| old[j as usize]).collect(),
            None => keep,
        });
        self
    }

    /// Replace the columns (e.g. after a projection), keeping the
    /// selection state.
    pub fn with_columns(&self, columns: Vec<Arc<Column>>) -> Batch {
        Batch {
            columns,
            sel: self.sel.clone(),
            base_rows: self.base_rows,
        }
    }

    /// The value of column `c` at live row `j`.
    #[inline]
    pub fn value(&self, c: usize, j: usize) -> Value {
        self.columns[c].value(self.base_index(j))
    }

    /// Resolve live row `j` to its base slot.
    #[inline]
    pub fn base_index(&self, j: usize) -> usize {
        match &self.sel {
            Some(s) => s[j] as usize,
            None => j,
        }
    }

    /// Materialize the live rows densely: drops the selection vector and
    /// copies survivors so every column is contiguous again. No-op when
    /// there is no selection.
    pub fn compact(self) -> Batch {
        let Some(sel) = self.sel else { return self };
        let columns = self
            .columns
            .iter()
            .map(|c| Arc::new(c.gather(&sel)))
            .collect();
        Batch {
            columns,
            sel: None,
            base_rows: sel.len(),
        }
    }

    /// Materialize live row `j` as a [`Row`].
    pub fn row(&self, j: usize) -> Row {
        let i = self.base_index(j);
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Materialize all live rows.
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len()).map(|j| self.row(j)).collect()
    }
}

/// The result of evaluating an expression over a batch selection: either a
/// dense column (one slot per selected row) or a single constant that
/// logically broadcasts.
#[derive(Debug)]
pub enum EvalCol {
    Col(Column),
    Const(Value),
}

impl EvalCol {
    /// The value for selected row `j`.
    #[inline]
    pub fn value_at(&self, j: usize) -> Value {
        match self {
            EvalCol::Col(c) => c.value(j),
            EvalCol::Const(v) => v.clone(),
        }
    }

    /// Is the value for selected row `j` NULL?
    #[inline]
    pub fn is_null_at(&self, j: usize) -> bool {
        match self {
            EvalCol::Col(c) => c.is_null(j),
            EvalCol::Const(v) => v.is_null(),
        }
    }

    /// Force into a dense column of length `n` (broadcasting a constant).
    pub fn into_column(self, n: usize) -> Column {
        match self {
            EvalCol::Col(c) => c,
            EvalCol::Const(v) => {
                let mut b = ColumnBuilder::with_capacity(n);
                for _ in 0..n {
                    b.push(v.clone());
                }
                b.finish()
            }
        }
    }
}

// ----------------------------------------------------------------------
// Element accessors used by the vectorized kernels in `expr`.
// ----------------------------------------------------------------------

/// A uniform elementwise view over a kernel operand: a column viewed
/// through a selection, a dense computed column, or a broadcast constant.
pub(crate) enum Vals<'a> {
    View {
        col: &'a Column,
        /// `None` = dense (identity selection).
        sel: Option<&'a [u32]>,
    },
    Const {
        v: &'a Value,
    },
}

impl<'a> Vals<'a> {
    #[inline]
    fn base(&self, j: usize) -> usize {
        match self {
            Vals::View { sel: Some(s), .. } => s[j] as usize,
            _ => j,
        }
    }

    /// Clone out the value at logical position `j`.
    #[inline]
    pub(crate) fn value_at(&self, j: usize) -> Value {
        match self {
            Vals::View { col, .. } => col.value(self.base(j)),
            Vals::Const { v, .. } => (*v).clone(),
        }
    }

    #[inline]
    pub(crate) fn null_at(&self, j: usize) -> bool {
        match self {
            Vals::View { col, .. } => col.is_null(self.base(j)),
            Vals::Const { v, .. } => v.is_null(),
        }
    }

    /// Borrow the value at position `j` when the underlying storage holds
    /// whole `Value`s (generic column or constant).
    #[inline]
    pub(crate) fn ref_at(&self, j: usize) -> Option<&Value> {
        match self {
            Vals::View { col, .. } => col.value_ref(self.base(j)),
            Vals::Const { v, .. } => Some(v),
        }
    }

    /// Integer accessor: `Some` iff every value is `Int` or NULL.
    pub(crate) fn ints(&self) -> Option<IntsAcc<'a>> {
        match self {
            Vals::View { col, sel } => match &col.data {
                ColumnData::Int(data) => Some(IntsAcc::Slice {
                    data,
                    validity: col.validity.as_deref(),
                    sel: *sel,
                }),
                _ => None,
            },
            Vals::Const {
                v: Value::Int(i), ..
            } => Some(IntsAcc::Const(Some(*i))),
            Vals::Const { v: Value::Null, .. } => Some(IntsAcc::Const(None)),
            _ => None,
        }
    }

    /// Numeric accessor (`Int` or `Float` storage, as `f64`).
    pub(crate) fn nums(&self) -> Option<NumsAcc<'a>> {
        match self {
            Vals::View { col, sel } => match &col.data {
                ColumnData::Int(data) => Some(NumsAcc::IntSlice {
                    data,
                    validity: col.validity.as_deref(),
                    sel: *sel,
                }),
                ColumnData::Float(data) => Some(NumsAcc::FloatSlice {
                    data,
                    validity: col.validity.as_deref(),
                    sel: *sel,
                }),
                _ => None,
            },
            Vals::Const {
                v: Value::Int(i), ..
            } => Some(NumsAcc::Const(Some(*i as f64))),
            Vals::Const {
                v: Value::Float(f), ..
            } => Some(NumsAcc::Const(Some(*f))),
            Vals::Const { v: Value::Null, .. } => Some(NumsAcc::Const(None)),
            _ => None,
        }
    }

    /// Text accessor: `Some` iff every value is `Text` or NULL.
    pub(crate) fn texts(&self) -> Option<TextsAcc<'a>> {
        match self {
            Vals::View { col, sel } => match &col.data {
                ColumnData::Text(data) => Some(TextsAcc::Slice {
                    data,
                    validity: col.validity.as_deref(),
                    sel: *sel,
                }),
                _ => None,
            },
            Vals::Const {
                v: Value::Text(s), ..
            } => Some(TextsAcc::Const(Some(s))),
            Vals::Const { v: Value::Null, .. } => Some(TextsAcc::Const(None)),
            _ => None,
        }
    }
}

#[inline]
fn resolve(sel: Option<&[u32]>, j: usize) -> usize {
    match sel {
        Some(s) => s[j] as usize,
        None => j,
    }
}

#[inline]
fn valid(validity: Option<&[bool]>, i: usize) -> bool {
    validity.map(|v| v[i]).unwrap_or(true)
}

pub(crate) enum IntsAcc<'a> {
    Slice {
        data: &'a [i64],
        validity: Option<&'a [bool]>,
        sel: Option<&'a [u32]>,
    },
    Const(Option<i64>),
}

impl IntsAcc<'_> {
    #[inline]
    pub(crate) fn get(&self, j: usize) -> Option<i64> {
        match self {
            IntsAcc::Const(v) => *v,
            IntsAcc::Slice {
                data,
                validity,
                sel,
            } => {
                let i = resolve(*sel, j);
                valid(*validity, i).then(|| data[i])
            }
        }
    }
}

pub(crate) enum NumsAcc<'a> {
    IntSlice {
        data: &'a [i64],
        validity: Option<&'a [bool]>,
        sel: Option<&'a [u32]>,
    },
    FloatSlice {
        data: &'a [f64],
        validity: Option<&'a [bool]>,
        sel: Option<&'a [u32]>,
    },
    Const(Option<f64>),
}

impl NumsAcc<'_> {
    #[inline]
    pub(crate) fn get(&self, j: usize) -> Option<f64> {
        match self {
            NumsAcc::Const(v) => *v,
            NumsAcc::IntSlice {
                data,
                validity,
                sel,
            } => {
                let i = resolve(*sel, j);
                valid(*validity, i).then(|| data[i] as f64)
            }
            NumsAcc::FloatSlice {
                data,
                validity,
                sel,
            } => {
                let i = resolve(*sel, j);
                valid(*validity, i).then(|| data[i])
            }
        }
    }
}

pub(crate) enum TextsAcc<'a> {
    Slice {
        data: &'a [String],
        validity: Option<&'a [bool]>,
        sel: Option<&'a [u32]>,
    },
    Const(Option<&'a str>),
}

impl<'a> TextsAcc<'a> {
    #[inline]
    pub(crate) fn get(&self, j: usize) -> Option<&str> {
        match self {
            TextsAcc::Const(v) => *v,
            TextsAcc::Slice {
                data,
                validity,
                sel,
            } => {
                let i = resolve(*sel, j);
                valid(*validity, i).then(|| data[i].as_str())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_specializes_and_roundtrips() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        let c = Column::from_values(vals.clone());
        assert!(matches!(c.data, ColumnData::Int(_)));
        assert_eq!(c.to_values(), vals);
        assert!(c.is_null(1));
    }

    #[test]
    fn builder_degrades_on_mixed_types() {
        let vals = vec![Value::Int(1), Value::Float(2.5), Value::Null];
        let c = Column::from_values(vals.clone());
        assert!(matches!(c.data, ColumnData::Generic(_)));
        assert_eq!(c.to_values(), vals);
    }

    #[test]
    fn builder_handles_leading_nulls() {
        let vals = vec![Value::Null, Value::Null, Value::text("x")];
        let c = Column::from_values(vals.clone());
        assert!(matches!(c.data, ColumnData::Text(_)));
        assert_eq!(c.to_values(), vals);

        let all_null = vec![Value::Null; 3];
        let c = Column::from_values(all_null.clone());
        assert_eq!(c.to_values(), all_null);
    }

    #[test]
    fn gather_preserves_values_and_validity() {
        let c = Column::from_values(vec![
            Value::Int(10),
            Value::Null,
            Value::Int(30),
            Value::Int(40),
        ]);
        let g = c.gather(&[3, 1, 0]);
        assert_eq!(
            g.to_values(),
            vec![Value::Int(40), Value::Null, Value::Int(10)]
        );
    }

    #[test]
    fn batch_selection_composes() {
        let rows: Vec<Row> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let b = Batch::from_rows(&rows, 1);
        // Keep even slots, then keep positions 1 and 3 of those (slots 2, 6).
        let b = b.select(vec![0, 2, 4, 6, 8]).select(vec![1, 3]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.value(0, 0), Value::Int(2));
        assert_eq!(b.value(0, 1), Value::Int(6));
        let dense = b.compact();
        assert!(!dense.has_selection());
        assert_eq!(
            dense.to_rows(),
            vec![vec![Value::Int(2)], vec![Value::Int(6)]]
        );
    }

    #[test]
    fn from_rows_to_rows_roundtrip() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::text("a"), Value::Null],
            vec![Value::Int(2), Value::Null, Value::Float(0.5)],
        ];
        let b = Batch::from_rows(&rows, 3);
        assert_eq!(b.to_rows(), rows);
    }
}
