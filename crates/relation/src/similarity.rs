//! The similarity-function library.
//!
//! §3.2: "The operator may call upon functions in a library that implement
//! common tasks for recommendations, such as computing the Jaccard or
//! Pearson similarity of two sets of objects." Figure 5(b) computes
//! student similarity "by taking the inverse Euclidean distance of their
//! ratings"; Figure 5(a) compares course titles.
//!
//! All functions return values in a comparable range: set and text
//! similarities are in [0, 1]; Pearson is in [-1, 1]; inverse Euclidean is
//! in (0, 1] via 1/(1+d).

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

use crate::value::Value;

/// Set similarities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SetSim {
    #[default]
    Jaccard,
    Dice,
    /// Overlap coefficient: |A∩B| / min(|A|,|B|).
    Overlap,
    /// Cosine over binary membership vectors: |A∩B| / √(|A|·|B|).
    Cosine,
}

impl SetSim {
    pub fn score(&self, a: &[Value], b: &[Value]) -> f64 {
        let sa: HashSet<&Value> = a.iter().collect();
        let sb: HashSet<&Value> = b.iter().collect();
        if sa.is_empty() && sb.is_empty() {
            return 0.0;
        }
        let inter = sa.intersection(&sb).count() as f64;
        let (la, lb) = (sa.len() as f64, sb.len() as f64);
        match self {
            SetSim::Jaccard => {
                let union = la + lb - inter;
                if union == 0.0 {
                    0.0
                } else {
                    inter / union
                }
            }
            SetSim::Dice => {
                if la + lb == 0.0 {
                    0.0
                } else {
                    2.0 * inter / (la + lb)
                }
            }
            SetSim::Overlap => {
                let m = la.min(lb);
                if m == 0.0 {
                    0.0
                } else {
                    inter / m
                }
            }
            SetSim::Cosine => {
                let d = (la * lb).sqrt();
                if d == 0.0 {
                    0.0
                } else {
                    inter / d
                }
            }
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            SetSim::Jaccard => "jaccard",
            SetSim::Dice => "dice",
            SetSim::Overlap => "overlap",
            SetSim::Cosine => "cosine",
        }
    }
}

/// Rating-vector similarities over the keys two vectors share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RatingsSim {
    /// 1 / (1 + ‖a − b‖₂) over common keys — Figure 5(b)'s choice.
    #[default]
    InverseEuclidean,
    /// Pearson correlation over common keys.
    Pearson,
    /// Cosine of the two rating vectors over common keys.
    Cosine,
}

impl RatingsSim {
    /// `min_common`: below this many shared keys the similarity is 0
    /// (a single shared rating says nothing; CF folklore uses 2–5).
    pub fn score(&self, a: &[(Value, f64)], b: &[(Value, f64)], min_common: usize) -> f64 {
        // Pair up common keys.
        let bm: std::collections::HashMap<&Value, f64> = b.iter().map(|(k, v)| (k, *v)).collect();
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for (k, va) in a {
            if let Some(vb) = bm.get(k) {
                xs.push(*va);
                ys.push(*vb);
            }
        }
        let n = xs.len();
        if n < min_common.max(1) {
            return 0.0;
        }
        match self {
            RatingsSim::InverseEuclidean => {
                let d2: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - y) * (x - y)).sum();
                1.0 / (1.0 + d2.sqrt())
            }
            RatingsSim::Pearson => {
                let nf = n as f64;
                let mx = xs.iter().sum::<f64>() / nf;
                let my = ys.iter().sum::<f64>() / nf;
                let mut cov = 0.0;
                let mut vx = 0.0;
                let mut vy = 0.0;
                for (x, y) in xs.iter().zip(&ys) {
                    cov += (x - mx) * (y - my);
                    vx += (x - mx) * (x - mx);
                    vy += (y - my) * (y - my);
                }
                if vx == 0.0 || vy == 0.0 {
                    0.0
                } else {
                    cov / (vx.sqrt() * vy.sqrt())
                }
            }
            RatingsSim::Cosine => {
                let dot: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
                let na: f64 = xs.iter().map(|x| x * x).sum::<f64>().sqrt();
                let nb: f64 = ys.iter().map(|y| y * y).sum::<f64>().sqrt();
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    dot / (na * nb)
                }
            }
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            RatingsSim::InverseEuclidean => "inverse_euclidean",
            RatingsSim::Pearson => "pearson",
            RatingsSim::Cosine => "cosine",
        }
    }
}

/// Text similarities — Figure 5(a) finds "courses with titles similar to
/// the indicated course".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TextSim {
    /// Jaccard over lowercase word sets.
    #[default]
    WordJaccard,
    /// Jaccard over character trigrams (catches morphology:
    /// "programming" ~ "programs").
    TrigramJaccard,
    /// 1 − normalized Levenshtein distance.
    Levenshtein,
}

impl TextSim {
    pub fn score(&self, a: &str, b: &str) -> f64 {
        match self {
            TextSim::WordJaccard => {
                let sa: HashSet<String> = a
                    .to_lowercase()
                    .split_whitespace()
                    .map(str::to_owned)
                    .collect();
                let sb: HashSet<String> = b
                    .to_lowercase()
                    .split_whitespace()
                    .map(str::to_owned)
                    .collect();
                if sa.is_empty() && sb.is_empty() {
                    return 0.0;
                }
                let inter = sa.intersection(&sb).count() as f64;
                let union = (sa.len() + sb.len()) as f64 - inter;
                if union == 0.0 {
                    0.0
                } else {
                    inter / union
                }
            }
            TextSim::TrigramJaccard => {
                let ta = trigrams(&a.to_lowercase());
                let tb = trigrams(&b.to_lowercase());
                if ta.is_empty() && tb.is_empty() {
                    return 0.0;
                }
                let inter = ta.intersection(&tb).count() as f64;
                let union = (ta.len() + tb.len()) as f64 - inter;
                if union == 0.0 {
                    0.0
                } else {
                    inter / union
                }
            }
            TextSim::Levenshtein => {
                let la = a.chars().count();
                let lb = b.chars().count();
                if la == 0 && lb == 0 {
                    return 1.0;
                }
                let d = levenshtein(a, b) as f64;
                1.0 - d / la.max(lb) as f64
            }
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            TextSim::WordJaccard => "word_jaccard",
            TextSim::TrigramJaccard => "trigram_jaccard",
            TextSim::Levenshtein => "levenshtein",
        }
    }
}

fn trigrams(s: &str) -> HashSet<[char; 3]> {
    let padded: Vec<char> = std::iter::once(' ')
        .chain(s.chars())
        .chain(std::iter::once(' '))
        .collect();
    padded.windows(3).map(|w| [w[0], w[1], w[2]]).collect()
}

/// Classic DP Levenshtein with a rolling row (O(min) memory).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vals(v: &[i64]) -> Vec<Value> {
        v.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(
            SetSim::Jaccard.score(&vals(&[1, 2, 3]), &vals(&[2, 3, 4])),
            0.5
        );
        assert_eq!(SetSim::Jaccard.score(&vals(&[1]), &vals(&[1])), 1.0);
        assert_eq!(SetSim::Jaccard.score(&vals(&[1]), &vals(&[2])), 0.0);
        assert_eq!(SetSim::Jaccard.score(&[], &[]), 0.0);
    }

    #[test]
    fn dice_overlap_cosine() {
        let a = vals(&[1, 2, 3]);
        let b = vals(&[2, 3, 4, 5]);
        // inter=2, |a|=3, |b|=4
        assert!((SetSim::Dice.score(&a, &b) - 4.0 / 7.0).abs() < 1e-12);
        assert!((SetSim::Overlap.score(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((SetSim::Cosine.score(&a, &b) - 2.0 / 12f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn inverse_euclidean_identical_is_one() {
        let a = vec![(Value::Int(1), 4.0), (Value::Int(2), 3.0)];
        assert_eq!(RatingsSim::InverseEuclidean.score(&a, &a, 1), 1.0);
    }

    #[test]
    fn inverse_euclidean_decreases_with_distance() {
        let a = vec![(Value::Int(1), 4.0), (Value::Int(2), 3.0)];
        let near = vec![(Value::Int(1), 4.5), (Value::Int(2), 3.0)];
        let far = vec![(Value::Int(1), 1.0), (Value::Int(2), 5.0)];
        let s_near = RatingsSim::InverseEuclidean.score(&a, &near, 1);
        let s_far = RatingsSim::InverseEuclidean.score(&a, &far, 1);
        assert!(s_near > s_far);
        assert!(s_near < 1.0);
        assert!(s_far > 0.0);
    }

    #[test]
    fn min_common_gate() {
        let a = vec![(Value::Int(1), 4.0)];
        let b = vec![(Value::Int(1), 4.0)];
        assert_eq!(RatingsSim::InverseEuclidean.score(&a, &b, 2), 0.0);
        assert_eq!(RatingsSim::InverseEuclidean.score(&a, &b, 1), 1.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = vec![
            (Value::Int(1), 1.0),
            (Value::Int(2), 2.0),
            (Value::Int(3), 3.0),
        ];
        let b = vec![
            (Value::Int(1), 2.0),
            (Value::Int(2), 4.0),
            (Value::Int(3), 6.0),
        ];
        assert!((RatingsSim::Pearson.score(&a, &b, 2) - 1.0).abs() < 1e-12);
        let inv = vec![
            (Value::Int(1), 3.0),
            (Value::Int(2), 2.0),
            (Value::Int(3), 1.0),
        ];
        assert!((RatingsSim::Pearson.score(&a, &inv, 2) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_vector_is_zero() {
        let a = vec![(Value::Int(1), 3.0), (Value::Int(2), 3.0)];
        let b = vec![(Value::Int(1), 1.0), (Value::Int(2), 5.0)];
        assert_eq!(RatingsSim::Pearson.score(&a, &b, 2), 0.0);
    }

    #[test]
    fn no_common_keys_zero() {
        let a = vec![(Value::Int(1), 4.0)];
        let b = vec![(Value::Int(2), 4.0)];
        for sim in [
            RatingsSim::InverseEuclidean,
            RatingsSim::Pearson,
            RatingsSim::Cosine,
        ] {
            assert_eq!(sim.score(&a, &b, 1), 0.0, "{}", sim.name());
        }
    }

    #[test]
    fn text_similarity_fig5a() {
        // "Introduction to Programming" vs related titles.
        let target = "Introduction to Programming";
        let close = "Programming Methodology";
        let far = "Medieval Art History";
        for sim in [TextSim::WordJaccard, TextSim::TrigramJaccard] {
            let sc = sim.score(target, close);
            let sf = sim.score(target, far);
            assert!(sc > sf, "{}: {sc} vs {sf}", sim.name());
        }
        assert_eq!(TextSim::WordJaccard.score(target, target), 1.0);
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert!((TextSim::Levenshtein.score("abc", "abd") - 2.0 / 3.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn set_sims_bounded_and_symmetric(
            a in proptest::collection::vec(0i64..20, 0..15),
            b in proptest::collection::vec(0i64..20, 0..15)
        ) {
            let (va, vb) = (vals(&a), vals(&b));
            for sim in [SetSim::Jaccard, SetSim::Dice, SetSim::Overlap, SetSim::Cosine] {
                let s = sim.score(&va, &vb);
                prop_assert!((0.0..=1.0).contains(&s), "{} out of range: {s}", sim.name());
                prop_assert!((s - sim.score(&vb, &va)).abs() < 1e-12);
            }
        }

        #[test]
        fn set_sim_identity(a in proptest::collection::vec(0i64..20, 1..15)) {
            let va = vals(&a);
            for sim in [SetSim::Jaccard, SetSim::Dice, SetSim::Overlap, SetSim::Cosine] {
                prop_assert!((sim.score(&va, &va) - 1.0).abs() < 1e-12);
            }
        }

        #[test]
        fn ratings_sims_bounded(
            a in proptest::collection::vec((0i64..10, 1.0f64..5.0), 0..10),
            b in proptest::collection::vec((0i64..10, 1.0f64..5.0), 0..10)
        ) {
            let ra: Vec<(Value, f64)> = a.iter().map(|(k, v)| (Value::Int(*k), *v)).collect();
            let rb: Vec<(Value, f64)> = b.iter().map(|(k, v)| (Value::Int(*k), *v)).collect();
            let ie = RatingsSim::InverseEuclidean.score(&ra, &rb, 1);
            prop_assert!((0.0..=1.0).contains(&ie));
            let p = RatingsSim::Pearson.score(&ra, &rb, 1);
            prop_assert!((-1.0 - 1e9_f64.recip()..=1.0 + 1e9_f64.recip()).contains(&p));
        }

        #[test]
        fn levenshtein_triangle_inequality(
            a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}"
        ) {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn text_sims_bounded(a in "[a-z ]{0,20}", b in "[a-z ]{0,20}") {
            for sim in [TextSim::WordJaccard, TextSim::TrigramJaccard, TextSim::Levenshtein] {
                let s = sim.score(&a, &b);
                prop_assert!((0.0..=1.0).contains(&s), "{}: {s}", sim.name());
            }
        }
    }
}
