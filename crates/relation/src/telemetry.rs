//! The `cr_stat_*` telemetry system tables.
//!
//! Each table is a [`ScanProvider`] over `cr-obs` state — the metrics
//! registry, the trace flight recorder, and the slow-request log — so
//! observability is queryable through the exact plan path it observes
//! ("dogfooding the IR"): `SELECT name, p95 FROM cr_stat_histograms
//! ORDER BY p95 DESC LIMIT 5` goes through the binder, validator,
//! optimizer, and executor like any user query, EXPLAIN included.
//!
//! | table                  | one row per                                  |
//! |------------------------|----------------------------------------------|
//! | `cr_stat_counters`     | counter or gauge                             |
//! | `cr_stat_histograms`   | histogram (count/sum/min/max/mean/p50/95/99) |
//! | `cr_stat_traces`       | span in the flight recorder                  |
//! | `cr_stat_slow_queries` | captured slow request                        |
//! | `cr_stat_cache`        | `courserank.reccache.*` counter (fallback)   |
//! | `cr_stat_storage`      | `storage.*` metric (histograms expanded)     |
//!
//! `cr_stat_cache` here is the generic fallback view. Registration is
//! first-wins (see [`register_system_tables`]), and `cr-core` registers
//! a richer per-entry provider under the same name *before* calling
//! this — one row per live cache entry with its dependency footprint
//! and survival counters (spared / delta-applied).
//!
//! Values are snapshots at scan time; the catalog reports an
//! always-fresh version for them, so nothing downstream caches
//! telemetry. Register the set with [`register_system_tables`].

use std::sync::Arc;

use cr_obs::trace;
use cr_obs::Registry;

use crate::catalog::Catalog;
use crate::error::RelResult;
use crate::plan::flow::{Sensitivity, TablePolicy};
use crate::provider::ScanProvider;
use crate::row::Row;
use crate::schema::{Column, DataType, Schema};
use crate::value::Value;

/// Saturate a `u64` metric into the engine's `i64` column type.
fn int(v: u64) -> Value {
    Value::Int(v.min(i64::MAX as u64) as i64)
}

fn schema(table: &str, columns: Vec<Column>) -> Schema {
    Schema::qualified(table, columns)
}

/// `cr_stat_counters(name, kind, value)` — every counter and gauge.
struct CountersProvider;

impl ScanProvider for CountersProvider {
    fn schema(&self) -> Schema {
        schema(
            "cr_stat_counters",
            vec![
                Column::not_null("name", DataType::Text),
                Column::not_null("kind", DataType::Text),
                Column::not_null("value", DataType::Int),
            ],
        )
    }

    fn rows(&self) -> RelResult<Vec<Row>> {
        let snap = Registry::global().snapshot();
        let mut rows = Vec::with_capacity(snap.counters.len() + snap.gauges.len());
        for (name, v) in &snap.counters {
            rows.push(vec![
                Value::text(name.clone()),
                Value::text("counter"),
                int(*v),
            ]);
        }
        for (name, v) in &snap.gauges {
            rows.push(vec![
                Value::text(name.clone()),
                Value::text("gauge"),
                Value::Int(*v),
            ]);
        }
        Ok(rows)
    }
}

/// `cr_stat_histograms(name, count, sum, min, max, mean, p50, p95, p99)`.
struct HistogramsProvider;

impl ScanProvider for HistogramsProvider {
    fn schema(&self) -> Schema {
        schema(
            "cr_stat_histograms",
            vec![
                Column::not_null("name", DataType::Text),
                Column::not_null("count", DataType::Int),
                Column::not_null("sum", DataType::Int),
                Column::not_null("min", DataType::Int),
                Column::not_null("max", DataType::Int),
                Column::not_null("mean", DataType::Float),
                Column::not_null("p50", DataType::Int),
                Column::not_null("p95", DataType::Int),
                Column::not_null("p99", DataType::Int),
            ],
        )
    }

    fn rows(&self) -> RelResult<Vec<Row>> {
        let snap = Registry::global().snapshot();
        Ok(snap
            .histograms
            .iter()
            .map(|h| {
                let min = if h.count == 0 { 0 } else { h.min };
                vec![
                    Value::text(h.name.clone()),
                    int(h.count),
                    int(h.sum),
                    int(min),
                    int(h.max),
                    Value::float(h.mean),
                    int(h.p50),
                    int(h.p95),
                    int(h.p99),
                ]
            })
            .collect())
    }
}

/// `cr_stat_traces(trace_id, span_id, parent_id, name, thread,
/// start_ns, duration_ns, attrs)` — the flight recorder, oldest first.
struct TracesProvider;

impl ScanProvider for TracesProvider {
    fn schema(&self) -> Schema {
        schema(
            "cr_stat_traces",
            vec![
                Column::not_null("trace_id", DataType::Int),
                Column::not_null("span_id", DataType::Int),
                Column::new("parent_id", DataType::Int),
                Column::not_null("name", DataType::Text),
                Column::not_null("thread", DataType::Int),
                Column::not_null("start_ns", DataType::Int),
                Column::not_null("duration_ns", DataType::Int),
                Column::not_null("attrs", DataType::Text),
            ],
        )
    }

    fn rows(&self) -> RelResult<Vec<Row>> {
        Ok(trace::recorder()
            .snapshot()
            .into_iter()
            .map(|r| {
                let mut attrs = String::new();
                for (i, (k, v)) in r.attrs.iter().enumerate() {
                    if i > 0 {
                        attrs.push(' ');
                    }
                    attrs.push_str(k);
                    attrs.push('=');
                    attrs.push_str(v);
                }
                vec![
                    int(r.trace.0),
                    int(r.span.0),
                    r.parent.map_or(Value::Null, |p| int(p.0)),
                    Value::text(r.name),
                    Value::Int(i64::from(r.thread)),
                    int(r.start_ns),
                    int(r.dur_ns),
                    Value::Text(attrs),
                ]
            })
            .collect())
    }
}

/// `cr_stat_slow_queries(seq, trace_id, fingerprint, label, total_ns,
/// threshold_ns, plan)` — the slow-request log. `fingerprint` is the
/// plan fingerprint as zero-padded hex; `plan` is the full EXPLAIN
/// ANALYZE tree at capture time.
struct SlowQueriesProvider;

impl ScanProvider for SlowQueriesProvider {
    fn schema(&self) -> Schema {
        schema(
            "cr_stat_slow_queries",
            vec![
                Column::not_null("seq", DataType::Int),
                Column::new("trace_id", DataType::Int),
                Column::not_null("fingerprint", DataType::Text),
                Column::not_null("label", DataType::Text),
                Column::not_null("total_ns", DataType::Int),
                Column::not_null("threshold_ns", DataType::Int),
                Column::not_null("plan", DataType::Text),
            ],
        )
    }

    fn rows(&self) -> RelResult<Vec<Row>> {
        Ok(trace::slow_queries()
            .into_iter()
            .map(|q| {
                vec![
                    int(q.seq),
                    q.trace.map_or(Value::Null, |t| int(t.0)),
                    Value::Text(format!("{:016x}", q.fingerprint)),
                    Value::text(q.label),
                    int(q.total_ns),
                    int(q.threshold_ns),
                    Value::Text(q.tree),
                ]
            })
            .collect())
    }
}

/// A `(name, value)` view over counters under one prefix
/// (`cr_stat_cache` = `courserank.reccache.*`).
struct PrefixCountersProvider {
    table: &'static str,
    prefix: &'static str,
}

impl ScanProvider for PrefixCountersProvider {
    fn schema(&self) -> Schema {
        schema(
            self.table,
            vec![
                Column::not_null("name", DataType::Text),
                Column::not_null("value", DataType::Int),
            ],
        )
    }

    fn rows(&self) -> RelResult<Vec<Row>> {
        let snap = Registry::global().snapshot();
        Ok(snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with(self.prefix))
            .map(|(name, v)| vec![Value::text(name.clone()), int(*v)])
            .collect())
    }
}

/// `cr_stat_storage(name, stat, value)` — every `storage.*` metric.
/// Counters and gauges contribute a `value` row; histograms are
/// expanded into `count`/`p50`/`p95`/`p99` rows so WAL fsync tails are
/// one `WHERE stat = 'p99'` away.
struct StorageProvider;

impl ScanProvider for StorageProvider {
    fn schema(&self) -> Schema {
        schema(
            "cr_stat_storage",
            vec![
                Column::not_null("name", DataType::Text),
                Column::not_null("stat", DataType::Text),
                Column::not_null("value", DataType::Int),
            ],
        )
    }

    fn rows(&self) -> RelResult<Vec<Row>> {
        const PREFIX: &str = "storage.";
        let snap = Registry::global().snapshot();
        let mut rows = Vec::new();
        for (name, v) in snap.counters.iter().filter(|(n, _)| n.starts_with(PREFIX)) {
            rows.push(vec![
                Value::text(name.clone()),
                Value::text("value"),
                int(*v),
            ]);
        }
        for (name, v) in snap.gauges.iter().filter(|(n, _)| n.starts_with(PREFIX)) {
            rows.push(vec![
                Value::text(name.clone()),
                Value::text("value"),
                Value::Int(*v),
            ]);
        }
        for h in snap
            .histograms
            .iter()
            .filter(|h| h.name.starts_with(PREFIX))
        {
            for (stat, v) in [
                ("count", h.count),
                ("p50", h.p50),
                ("p95", h.p95),
                ("p99", h.p99),
            ] {
                rows.push(vec![Value::text(h.name.clone()), Value::text(stat), int(v)]);
            }
        }
        Ok(rows)
    }
}

/// The full system-table set, in registration order.
pub const SYSTEM_TABLES: &[&str] = &[
    "cr_stat_counters",
    "cr_stat_histograms",
    "cr_stat_traces",
    "cr_stat_slow_queries",
    "cr_stat_cache",
    "cr_stat_storage",
];

/// Register every `cr_stat_*` table on `catalog`. Idempotent: tables
/// already present (another component registered first) are skipped.
pub fn register_system_tables(catalog: &Catalog) -> RelResult<()> {
    let providers: [(&str, Arc<dyn ScanProvider>); 6] = [
        ("cr_stat_counters", Arc::new(CountersProvider)),
        ("cr_stat_histograms", Arc::new(HistogramsProvider)),
        ("cr_stat_traces", Arc::new(TracesProvider)),
        ("cr_stat_slow_queries", Arc::new(SlowQueriesProvider)),
        (
            "cr_stat_cache",
            Arc::new(PrefixCountersProvider {
                table: "cr_stat_cache",
                prefix: "courserank.reccache.",
            }),
        ),
        ("cr_stat_storage", Arc::new(StorageProvider)),
    ];
    for (name, provider) in providers {
        if catalog.has_table(name) {
            continue;
        }
        catalog.register_scan_provider(name, provider)?;
    }
    // Sensitivity labels apply even when another component registered the
    // provider first (e.g. cr-core's richer cr_stat_cache): traces and the
    // slow-query log embed query text and plan trees, so they are
    // operator-only; aggregate counters/histograms are community-visible.
    for (table, label) in [
        ("cr_stat_counters", Sensitivity::Community),
        ("cr_stat_histograms", Sensitivity::Community),
        ("cr_stat_traces", Sensitivity::Restricted),
        ("cr_stat_slow_queries", Sensitivity::Restricted),
        ("cr_stat_cache", Sensitivity::Community),
        ("cr_stat_storage", Sensitivity::Community),
    ] {
        catalog.set_table_policy(table, TablePolicy::new(label));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;

    fn db_with_system_tables() -> Database {
        let db = Database::new();
        register_system_tables(&db.catalog()).expect("registration");
        db
    }

    #[test]
    fn registration_is_idempotent() {
        let db = db_with_system_tables();
        register_system_tables(&db.catalog()).expect("second registration");
        for t in SYSTEM_TABLES {
            assert!(db.catalog().has_table(t), "{t} missing");
        }
        assert!(db.catalog().table_names().is_empty());
    }

    #[test]
    fn counters_flow_through_sql() {
        let db = db_with_system_tables();
        cr_obs::Registry::global()
            .counter("telemetry.test.pings")
            .add(7);
        let rs = db
            .query_sql(
                "SELECT value FROM cr_stat_counters \
                 WHERE name = 'telemetry.test.pings' AND kind = 'counter'",
            )
            .expect("query");
        assert_eq!(rs.scalar(), Some(&Value::Int(7)));
    }

    #[test]
    fn every_system_table_selects_cleanly() {
        let db = db_with_system_tables();
        for t in SYSTEM_TABLES {
            let rs = db
                .query_sql(&format!("SELECT COUNT(*) AS n FROM {t}"))
                .unwrap_or_else(|e| panic!("SELECT over {t}: {e}"));
            assert_eq!(rs.rows.len(), 1, "{t}");
        }
    }

    #[test]
    fn telemetry_tables_are_labeled() {
        use crate::plan::flow::{check_disclosure, Principal, P_RESTRICTED_SOURCE};

        let db = db_with_system_tables();
        let catalog = db.catalog();
        let plan = crate::sql::plan_query("SELECT label FROM cr_stat_slow_queries", &catalog)
            .expect("plan");
        let student = check_disclosure(&plan, &catalog, &Principal::Student(Some(1)));
        assert!(student.has_code(P_RESTRICTED_SOURCE), "{student}");
        let faculty = check_disclosure(&plan, &catalog, &Principal::Faculty);
        assert!(faculty.has_errors(), "{faculty}");
        let staff = check_disclosure(&plan, &catalog, &Principal::Staff);
        assert!(staff.is_empty(), "{staff}");

        // Aggregate counters are community-visible but not anonymous.
        let counters = crate::sql::plan_query("SELECT name, value FROM cr_stat_counters", &catalog)
            .expect("plan");
        assert!(check_disclosure(&counters, &catalog, &Principal::Student(Some(1))).is_empty());
        assert!(check_disclosure(&counters, &catalog, &Principal::Anonymous).has_errors());
    }

    #[test]
    fn histograms_expose_quantiles() {
        let db = db_with_system_tables();
        let h = cr_obs::Registry::global().histogram("telemetry.test.lat_ns");
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let rs = db
            .query_sql(
                "SELECT count, p50 FROM cr_stat_histograms \
                 WHERE name = 'telemetry.test.lat_ns'",
            )
            .expect("query");
        assert_eq!(rs.rows.len(), 1);
        assert!(matches!(rs.rows[0][0], Value::Int(n) if n >= 3));
    }
}
