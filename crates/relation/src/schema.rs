//! Schemas: column definitions and name resolution.

use serde::{Deserialize, Serialize};

use crate::error::{RelError, RelResult};
use crate::value::Value;

/// The engine's column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Text,
    Date,
    /// Set of scalar values (FlexRecs `Extend` output). Not creatable from
    /// SQL DDL; exists only in plan-synthesized schemas.
    Set,
    /// Key → rating map (FlexRecs `Extend ... with rating` output). Not
    /// creatable from SQL DDL; exists only in plan-synthesized schemas.
    Ratings,
}

impl DataType {
    /// SQL keyword for this type (used by `CREATE TABLE` round-tripping).
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Date => "DATE",
            DataType::Set => "SET",
            DataType::Ratings => "RATINGS",
        }
    }
}

/// A column: name, type, nullability.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Column {
    /// A nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// A NOT NULL column.
    pub fn not_null(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }
}

/// An ordered list of columns, optionally qualified by a table alias.
///
/// Qualifiers matter during joins: `Courses.id` and `Comments.id` must stay
/// distinguishable. Resolution follows SQL rules: an unqualified name is an
/// error if it matches columns under two different qualifiers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Schema {
    columns: Vec<Column>,
    /// Per-column qualifier (table name or alias); parallel to `columns`.
    qualifiers: Vec<Option<String>>,
}

impl Schema {
    /// Build a schema with no qualifiers.
    pub fn new(columns: Vec<Column>) -> Self {
        let n = columns.len();
        Schema {
            columns,
            qualifiers: vec![None; n],
        }
    }

    /// Build a schema whose columns are all qualified by `qualifier`.
    pub fn qualified(qualifier: impl Into<String>, columns: Vec<Column>) -> Self {
        let q = qualifier.into();
        let n = columns.len();
        Schema {
            columns,
            qualifiers: vec![Some(q); n],
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Qualifier of column `i`, if any.
    pub fn qualifier(&self, i: usize) -> Option<&str> {
        self.qualifiers[i].as_deref()
    }

    /// Re-qualify every column (e.g. applying a table alias).
    pub fn with_qualifier(mut self, qualifier: impl Into<String>) -> Self {
        let q = qualifier.into();
        for slot in &mut self.qualifiers {
            *slot = Some(q.clone());
        }
        self
    }

    /// Append a column (used by planners when synthesizing outputs).
    pub fn push(&mut self, column: Column, qualifier: Option<String>) {
        self.columns.push(column);
        self.qualifiers.push(qualifier);
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut columns = Vec::with_capacity(self.len() + right.len());
        let mut qualifiers = Vec::with_capacity(self.len() + right.len());
        columns.extend_from_slice(&self.columns);
        columns.extend_from_slice(&right.columns);
        qualifiers.extend_from_slice(&self.qualifiers);
        qualifiers.extend_from_slice(&right.qualifiers);
        Schema {
            columns,
            qualifiers,
        }
    }

    /// Resolve a possibly-qualified column name to its index.
    ///
    /// `qualifier = None` matches any qualifier but errors if ambiguous.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> RelResult<usize> {
        let mut found: Option<usize> = None;
        for (i, col) in self.columns.iter().enumerate() {
            if !col.name.eq_ignore_ascii_case(name) {
                continue;
            }
            match qualifier {
                Some(q) => {
                    if self.qualifiers[i]
                        .as_deref()
                        .is_some_and(|cq| cq.eq_ignore_ascii_case(q))
                    {
                        return Ok(i);
                    }
                }
                None => {
                    if found.is_some() {
                        return Err(RelError::AmbiguousColumn(name.to_owned()));
                    }
                    found = Some(i);
                }
            }
        }
        found.ok_or_else(|| match qualifier {
            Some(q) => RelError::UnknownColumn(format!("{q}.{name}")),
            None => RelError::UnknownColumn(name.to_owned()),
        })
    }

    /// Index of an unqualified column name (convenience for table schemas).
    pub fn index_of(&self, name: &str) -> RelResult<usize> {
        self.resolve(None, name)
    }

    /// Validate a row against this schema: arity, types (with coercion),
    /// nullability. Returns the (possibly coerced) row.
    pub fn validate_row(&self, row: Vec<Value>) -> RelResult<Vec<Value>> {
        if row.len() != self.len() {
            return Err(RelError::Arity {
                expected: self.len(),
                found: row.len(),
            });
        }
        let mut out = Vec::with_capacity(row.len());
        for (value, col) in row.into_iter().zip(&self.columns) {
            if value.is_null() {
                if !col.nullable {
                    return Err(RelError::NullViolation(col.name.clone()));
                }
                out.push(Value::Null);
            } else {
                out.push(value.coerce_to(col.data_type)?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::qualified(
            "courses",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("units", DataType::Int),
            ],
        )
    }

    #[test]
    fn resolve_unqualified() {
        let s = sample();
        assert_eq!(s.index_of("title").unwrap(), 1);
        assert_eq!(s.index_of("TITLE").unwrap(), 1); // case-insensitive
        assert!(matches!(
            s.index_of("nope"),
            Err(RelError::UnknownColumn(_))
        ));
    }

    #[test]
    fn resolve_qualified() {
        let s = sample();
        assert_eq!(s.resolve(Some("courses"), "id").unwrap(), 0);
        assert!(matches!(
            s.resolve(Some("students"), "id"),
            Err(RelError::UnknownColumn(_))
        ));
    }

    #[test]
    fn join_detects_ambiguity() {
        let left = sample();
        let right = Schema::qualified(
            "comments",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("text", DataType::Text),
            ],
        );
        let joined = left.join(&right);
        assert_eq!(joined.len(), 5);
        assert!(matches!(
            joined.index_of("id"),
            Err(RelError::AmbiguousColumn(_))
        ));
        assert_eq!(joined.resolve(Some("comments"), "id").unwrap(), 3);
        assert_eq!(joined.resolve(Some("courses"), "id").unwrap(), 0);
        // Unambiguous unqualified names still resolve.
        assert_eq!(joined.index_of("text").unwrap(), 4);
    }

    #[test]
    fn validate_row_coerces_and_checks() {
        let s = sample();
        let row = s
            .validate_row(vec![Value::Int(1), Value::text("DB"), Value::text("4")])
            .unwrap();
        assert_eq!(row[2], Value::Int(4));

        assert!(matches!(
            s.validate_row(vec![Value::Null, Value::Null, Value::Null]),
            Err(RelError::NullViolation(_))
        ));
        assert!(matches!(
            s.validate_row(vec![Value::Int(1)]),
            Err(RelError::Arity { .. })
        ));
    }

    #[test]
    fn with_qualifier_applies_alias() {
        let s = sample().with_qualifier("c");
        assert_eq!(s.resolve(Some("c"), "title").unwrap(), 1);
        assert!(s.resolve(Some("courses"), "title").is_err());
    }
}
