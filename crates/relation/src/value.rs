//! Dynamically typed values.
//!
//! Every cell in the engine is a [`Value`]. The type lattice is small —
//! `Null < Bool < Int < Float < Text < Date < Set < Ratings` — matching
//! what CourseRank's schema (§3.2 of the paper) needs: ids, titles, free
//! text, ratings, units, GPAs, terms and dates. The two nested types,
//! [`Value::Set`] and [`Value::Ratings`], exist for the FlexRecs *extend*
//! operator (§3.2), which views the related tuples of a row — e.g. the
//! courses a student took, or the ratings they gave — as one set-valued
//! attribute so the *recommend* operator can compare rows by similarity.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::error::{RelError, RelResult};
use crate::schema::DataType;

/// A single dynamically-typed cell value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL. Compares equal to itself for grouping/ordering purposes
    /// (engine-internal semantics; predicate evaluation treats comparisons
    /// with NULL as false, as in three-valued logic collapsed to two).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is normalized to NULL on construction via
    /// [`Value::float`].
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// A calendar date stored as days since the (proleptic) epoch
    /// 1970-01-01. Date arithmetic in the social-site layer works on this.
    Date(i32),
    /// A set of scalar values, produced by the FlexRecs `Extend` operator
    /// (e.g. the set of CourseIDs a student has taken). Stored sorted and
    /// deduplicated by the producer.
    Set(Vec<Value>),
    /// A key → rating map, produced by `Extend ... with rating` (e.g.
    /// CourseID → the rating a student gave). Stored sorted by key.
    Ratings(Vec<(Value, f64)>),
}

impl Value {
    /// Construct a text value from anything string-like.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Construct a float value; NaN becomes NULL so that ordering and
    /// hashing stay total.
    pub fn float(f: f64) -> Self {
        if f.is_nan() {
            Value::Null
        } else {
            Value::Float(f)
        }
    }

    /// The engine type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
            Value::Set(_) => Some(DataType::Set),
            Value::Ratings(_) => Some(DataType::Ratings),
        }
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an `i64`, coercing Bool; errors otherwise.
    pub fn as_int(&self) -> RelResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(RelError::TypeMismatch {
                expected: "Int".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Extract an `f64`, coercing Int; errors otherwise.
    pub fn as_float(&self) -> RelResult<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(RelError::TypeMismatch {
                expected: "Float".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Extract a `&str`; errors for non-text.
    pub fn as_text(&self) -> RelResult<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(RelError::TypeMismatch {
                expected: "Text".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Extract a bool; errors for non-bool.
    pub fn as_bool(&self) -> RelResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(RelError::TypeMismatch {
                expected: "Bool".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Borrow the elements of a `Set` value, or `None` for anything else.
    pub fn as_set(&self) -> Option<&[Value]> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the `(key, rating)` pairs of a `Ratings` value, or `None`.
    pub fn as_ratings(&self) -> Option<&[(Value, f64)]> {
        match self {
            Value::Ratings(r) => Some(r),
            _ => None,
        }
    }

    /// True for the nested (`Set`/`Ratings`) types; scalar comparison and
    /// arithmetic reject these.
    pub fn is_nested(&self) -> bool {
        matches!(self, Value::Set(_) | Value::Ratings(_))
    }

    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Bool(_) => "Bool",
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Text(_) => "Text",
            Value::Date(_) => "Date",
            Value::Set(_) => "Set",
            Value::Ratings(_) => "Ratings",
        }
    }

    /// Attempt to coerce this value to `target`. Lossless numeric widening
    /// (Int → Float) and text parsing are supported; anything else is a
    /// [`RelError::TypeMismatch`]. NULL coerces to any type.
    pub fn coerce_to(&self, target: DataType) -> RelResult<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        match (self, target) {
            (v, t) if v.data_type() == Some(t) => Ok(v.clone()),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Int) if f.fract() == 0.0 => Ok(Value::Int(*f as i64)),
            (Value::Int(i), DataType::Bool) => Ok(Value::Bool(*i != 0)),
            (Value::Bool(b), DataType::Int) => Ok(Value::Int(*b as i64)),
            (Value::Int(d), DataType::Date) => {
                Ok(Value::Date(i32::try_from(*d).map_err(|_| {
                    RelError::Arithmetic("date out of range".into())
                })?))
            }
            (Value::Date(d), DataType::Int) => Ok(Value::Int(*d as i64)),
            (Value::Text(s), DataType::Int) => {
                s.trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| RelError::TypeMismatch {
                        expected: "Int".into(),
                        found: format!("Text({s:?})"),
                    })
            }
            (Value::Text(s), DataType::Float) => {
                s.trim()
                    .parse::<f64>()
                    .map(Value::float)
                    .map_err(|_| RelError::TypeMismatch {
                        expected: "Float".into(),
                        found: format!("Text({s:?})"),
                    })
            }
            (v, t) => Err(RelError::TypeMismatch {
                expected: format!("{t:?}"),
                found: v.type_name().into(),
            }),
        }
    }

    /// Total ordering used by ORDER BY, B-tree indexes, and grouping.
    ///
    /// NULL sorts first; cross numeric types (Int/Float) compare by
    /// numeric value; other cross-type pairs compare by a fixed type rank
    /// so the ordering stays total (needed for sort stability).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Text(a), Text(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Set(a), Set(b)) => {
                // Lexicographic elementwise; shorter set sorts first on a tie.
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.total_cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Ratings(a), Ratings(b)) => {
                // Lexicographic by key, then by rating.
                for ((xk, xr), (yk, yr)) in a.iter().zip(b.iter()) {
                    let o = xk
                        .total_cmp(yk)
                        .then_with(|| xr.partial_cmp(yr).unwrap_or(Ordering::Equal));
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // same rank: numerics compare by value
            Value::Text(_) => 3,
            Value::Date(_) => 4,
            Value::Set(_) => 5,
            Value::Ratings(_) => 6,
        }
    }

    /// SQL equality used by joins and grouping: NULL equals NULL here
    /// (group semantics); Int and Float compare numerically.
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.sql_eq(other)
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash identically when numerically equal,
            // because sql_eq treats them as equal (hash/eq consistency).
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                // normalize -0.0 to 0.0 so they hash together
                let f = if *f == 0.0 { 0.0 } else { *f };
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
            Value::Set(s) => {
                5u8.hash(state);
                s.len().hash(state);
                for v in s {
                    v.hash(state);
                }
            }
            Value::Ratings(r) => {
                6u8.hash(state);
                r.len().hash(state);
                for (k, rating) in r {
                    k.hash(state);
                    // normalize -0.0 to 0.0, same as Float above
                    let f = if *rating == 0.0 { 0.0 } else { *rating };
                    f.to_bits().hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => write!(f, "{s}"),
            Value::Date(d) => {
                let (y, m, day) = days_to_ymd(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Ratings(r) => {
                write!(f, "{{")?;
                for (i, (k, v)) in r.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}:{v:.1}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

/// Convert a `(year, month, day)` triple to days since 1970-01-01
/// (proleptic Gregorian). Used for the `Date` value type.
pub fn ymd_to_days(y: i32, m: u32, d: u32) -> i32 {
    // Howard Hinnant's algorithm (days_from_civil).
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // [0, 11]
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Inverse of [`ymd_to_days`].
pub fn days_to_ymd(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + (m <= 2) as i64) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn nan_becomes_null() {
        assert!(Value::float(f64::NAN).is_null());
        assert_eq!(Value::float(1.5), Value::Float(1.5));
    }

    #[test]
    fn cross_numeric_equality_and_hash_agree() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn null_sorts_first() {
        let mut v = [Value::Int(2), Value::Null, Value::Int(1)];
        v.sort();
        assert_eq!(v, [Value::Null, Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::text("42").coerce_to(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::Float(4.0).coerce_to(DataType::Int).unwrap(),
            Value::Int(4)
        );
        assert!(Value::Float(4.5).coerce_to(DataType::Int).is_err());
        assert!(Value::text("abc").coerce_to(DataType::Int).is_err());
        assert_eq!(Value::Null.coerce_to(DataType::Text).unwrap(), Value::Null);
    }

    #[test]
    fn date_roundtrip_known_values() {
        assert_eq!(ymd_to_days(1970, 1, 1), 0);
        assert_eq!(ymd_to_days(1970, 1, 2), 1);
        assert_eq!(ymd_to_days(2000, 3, 1), 11017);
        assert_eq!(days_to_ymd(0), (1970, 1, 1));
        // Paper timeframe: CourseRank launched ~Sept 2007, CIDR Jan 2009.
        let d = ymd_to_days(2009, 1, 4);
        assert_eq!(days_to_ymd(d), (2009, 1, 4));
    }

    #[test]
    fn date_display() {
        let v = Value::Date(ymd_to_days(2008, 9, 15));
        assert_eq!(v.to_string(), "2008-09-15");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
        assert_eq!(Value::text("hi").to_string(), "hi");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn accessor_errors_name_types() {
        let e = Value::text("x").as_int().unwrap_err();
        assert_eq!(
            e,
            RelError::TypeMismatch {
                expected: "Int".into(),
                found: "Text".into()
            }
        );
    }

    proptest! {
        #[test]
        fn date_roundtrip(y in -1000i32..3000, m in 1u32..=12, d in 1u32..=28) {
            let days = ymd_to_days(y, m, d);
            prop_assert_eq!(days_to_ymd(days), (y, m, d));
        }

        #[test]
        fn total_order_is_antisymmetric(a in any_value(), b in any_value()) {
            let ab = a.total_cmp(&b);
            let ba = b.total_cmp(&a);
            prop_assert_eq!(ab, ba.reverse());
        }

        #[test]
        fn total_order_is_transitive(a in any_value(), b in any_value(), c in any_value()) {
            let mut v = [a, b, c];
            // sort() panics (in debug) or misbehaves if Ord is inconsistent;
            // sorting then checking pairwise order exercises transitivity.
            v.sort();
            prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
        }

        #[test]
        fn eq_implies_same_hash(a in any_value(), b in any_value()) {
            if a == b {
                prop_assert_eq!(hash_of(&a), hash_of(&b));
            }
        }

        #[test]
        fn int_float_coercion_roundtrip(i in -1_000_000i64..1_000_000) {
            let f = Value::Int(i).coerce_to(DataType::Float).unwrap();
            let back = f.coerce_to(DataType::Int).unwrap();
            prop_assert_eq!(back, Value::Int(i));
        }
    }

    fn any_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            (-1e12f64..1e12).prop_map(Value::float),
            "[a-z]{0,8}".prop_map(Value::Text),
            any::<i32>().prop_map(Value::Date),
        ]
    }
}
