//! Row-oriented table storage.
//!
//! A [`Table`] owns its rows (a `Vec<Option<Row>>` slot array — `None` is a
//! tombstone left by DELETE), a primary-key index, and any number of
//! secondary [`Index`]es which are maintained eagerly on every mutation.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::batch::{Column as BatchColumn, ColumnBuilder};
use crate::error::{RelError, RelResult};
use crate::index::{Index, IndexKey, IndexKind};
use crate::mutation::{Mutation, MutationObserver, ObserverSlot};
use crate::row::{Row, RowId};
use crate::schema::Schema;
use crate::value::Value;

/// Cached columnar image of a table's live rows, keyed by the mutation
/// [`Table::version`] it was built at. Built lazily on first batched scan
/// and reused until the next mutation. Cloning a table copies the current
/// snapshot (cheap — the columns are `Arc`-shared and immutable) into a
/// fresh cell, so clones that later diverge can never see each other's
/// rebuilds.
type ColumnarSnapshot = (u64, Arc<Vec<Arc<BatchColumn>>>);

#[derive(Debug, Default)]
struct ColumnarCache(Mutex<Option<ColumnarSnapshot>>);

impl Clone for ColumnarCache {
    fn clone(&self) -> Self {
        ColumnarCache(Mutex::new(self.0.lock().clone()))
    }
}

/// An in-memory table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    /// Slot array; index == RowId.0. Tombstoned slots are `None`.
    rows: Vec<Option<Row>>,
    /// Live-row count (excludes tombstones).
    live: usize,
    /// Positions of the primary-key columns (may be empty: no PK).
    pk_columns: Vec<usize>,
    /// PK value → RowId.
    pk_index: HashMap<IndexKey, RowId>,
    /// Secondary indexes by name.
    indexes: Vec<Index>,
    /// Monotonic mutation counter: bumped on every successful insert,
    /// delete, or update. Result caches (e.g. the courserank `RecCache`)
    /// snapshot dependency versions and stay valid until any bump.
    version: u64,
    /// Optional durability hook; notified after each successful mutation.
    observer: ObserverSlot,
    /// Lazily built columnar image for batched scans (see [`ColumnarCache`]).
    columnar: ColumnarCache,
}

impl Table {
    /// Create an empty table. `pk_columns` are positions into `schema`.
    pub fn new(name: impl Into<String>, schema: Schema, pk_columns: Vec<usize>) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            live: 0,
            pk_columns,
            pk_index: HashMap::new(),
            indexes: Vec::new(),
            version: 0,
            observer: ObserverSlot::default(),
            columnar: ColumnarCache::default(),
        }
    }

    /// Rebuild a table from recovered state: the raw slot array (with
    /// `None` tombstones preserved so row ids keep their meaning) and the
    /// mutation counter as of the snapshot. The primary-key index is
    /// rebuilt here; secondary indexes are re-created (and backfilled) by
    /// the caller via [`Table::create_index`]. Rows are trusted — they
    /// were validated when first inserted and are CRC-protected on disk.
    pub fn restore(
        name: impl Into<String>,
        schema: Schema,
        pk_columns: Vec<usize>,
        slots: Vec<Option<Row>>,
        version: u64,
    ) -> Self {
        let mut table = Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            live: 0,
            pk_columns,
            pk_index: HashMap::new(),
            indexes: Vec::new(),
            version,
            observer: ObserverSlot::default(),
            columnar: ColumnarCache::default(),
        };
        for (i, slot) in slots.iter().enumerate() {
            if let Some(row) = slot {
                table.live += 1;
                if let Some(key) = table.pk_key(row) {
                    table.pk_index.insert(key, RowId(i as u64));
                }
            }
        }
        table.rows = slots;
        table
    }

    /// Attach (or detach) the durability observer. Set by the catalog so
    /// every handle to this table shares it.
    pub(crate) fn set_observer(&mut self, observer: Option<Arc<dyn MutationObserver>>) {
        self.observer = ObserverSlot(observer);
    }

    #[inline]
    fn emit(&self, mutation: &Mutation<'_>) {
        if let Some(obs) = self.observer.get() {
            obs.on_mutation(&self.name, &self.schema, mutation);
        }
    }

    /// Monotonic mutation counter (see the field docs).
    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Live row count.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Primary-key column positions.
    pub fn pk_columns(&self) -> &[usize] {
        &self.pk_columns
    }

    fn pk_key(&self, row: &Row) -> Option<IndexKey> {
        if self.pk_columns.is_empty() {
            None
        } else {
            Some(self.pk_columns.iter().map(|&i| row[i].clone()).collect())
        }
    }

    /// Insert a row (validated and coerced against the schema).
    /// Returns the new row's id.
    pub fn insert(&mut self, row: Row) -> RelResult<RowId> {
        let row = self.schema.validate_row(row)?;
        if let Some(key) = self.pk_key(&row) {
            if key.iter().any(Value::is_null) {
                return Err(RelError::NullViolation("primary key".into()));
            }
            if self.pk_index.contains_key(&key) {
                return Err(RelError::DuplicateKey(format!(
                    "{}({})",
                    self.name,
                    key.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                )));
            }
        }
        for idx in &self.indexes {
            if idx.unique {
                let key = idx.key_of(&row);
                if idx.would_conflict(&key) {
                    return Err(RelError::DuplicateKey(format!(
                        "{}:{}",
                        self.name, idx.name
                    )));
                }
            }
        }
        let rid = RowId(self.rows.len() as u64);
        if let Some(key) = self.pk_key(&row) {
            self.pk_index.insert(key, rid);
        }
        for idx in &mut self.indexes {
            let key = idx.key_of(&row);
            idx.insert(key, rid);
        }
        self.rows.push(Some(row));
        self.live += 1;
        self.version += 1;
        if self.observer.get().is_some() {
            let row = self.rows[rid.0 as usize].as_ref().expect("just inserted");
            self.emit(&Mutation::Insert {
                rid,
                row,
                version: self.version,
            });
        }
        Ok(rid)
    }

    /// Fetch a row by id (None if tombstoned or out of range).
    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.rows.get(rid.0 as usize).and_then(Option::as_ref)
    }

    /// Look up by primary key.
    pub fn get_by_pk(&self, key: &IndexKey) -> Option<&Row> {
        self.pk_index.get(key).and_then(|&rid| self.get(rid))
    }

    /// RowId for a primary key.
    pub fn rowid_by_pk(&self, key: &IndexKey) -> Option<RowId> {
        self.pk_index.get(key).copied()
    }

    /// Delete by row id. Returns true if a live row was removed.
    pub fn delete(&mut self, rid: RowId) -> bool {
        let slot = match self.rows.get_mut(rid.0 as usize) {
            Some(s) => s,
            None => return false,
        };
        let Some(row) = slot.take() else {
            return false;
        };
        if let Some(key) = self.pk_key(&row) {
            self.pk_index.remove(&key);
        }
        for idx in &mut self.indexes {
            let key = idx.key_of(&row);
            idx.remove(&key, rid);
        }
        self.live -= 1;
        self.version += 1;
        self.emit(&Mutation::Delete {
            rid,
            row: &row,
            version: self.version,
        });
        true
    }

    /// Replace the row at `rid` with `new_row` (validated). Indexes are
    /// updated. Errors restore nothing — callers treat errors as aborts on
    /// a single-row basis (the engine has no multi-statement transactions).
    pub fn update(&mut self, rid: RowId, new_row: Row) -> RelResult<()> {
        let new_row = self.schema.validate_row(new_row)?;
        let old_row = self
            .get(rid)
            .cloned()
            .ok_or_else(|| RelError::Invalid(format!("no row {rid:?} in {}", self.name)))?;
        // PK change: check uniqueness against *other* rows.
        if let (Some(old_key), Some(new_key)) = (self.pk_key(&old_row), self.pk_key(&new_row)) {
            if old_key != new_key {
                if self.pk_index.contains_key(&new_key) {
                    return Err(RelError::DuplicateKey(self.name.clone()));
                }
                self.pk_index.remove(&old_key);
                self.pk_index.insert(new_key, rid);
            }
        }
        for idx in &mut self.indexes {
            let old_key = idx.key_of(&old_row);
            let new_key = idx.key_of(&new_row);
            if old_key != new_key {
                idx.remove(&old_key, rid);
                idx.insert(new_key, rid);
            }
        }
        self.rows[rid.0 as usize] = Some(new_row);
        self.version += 1;
        if self.observer.get().is_some() {
            let row = self.rows[rid.0 as usize].as_ref().expect("just updated");
            self.emit(&Mutation::Update {
                rid,
                row,
                old_row: &old_row,
                version: self.version,
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // WAL replay
    //
    // The `replay_*` methods re-apply logged mutations during crash
    // recovery. They differ from the public mutators in three ways: the
    // row id is dictated by the log instead of assigned, rows are trusted
    // (validated at original insert time, CRC-checked on read), and no
    // observer events are emitted (recovery must not re-log itself).
    // Replaying a mutation that the starting snapshot already reflects is
    // a no-op, which makes replay safe when a checkpoint raced a writer.
    // ------------------------------------------------------------------

    /// Re-apply a logged insert at its original row id, extending the
    /// slot array with tombstones if the id is past the end (possible
    /// when a checkpoint raced a writer and part of the tail is already
    /// reflected by the snapshot).
    pub fn replay_insert(&mut self, rid: RowId, row: Row) -> RelResult<()> {
        let slot = rid.0 as usize;
        if slot >= self.rows.len() {
            self.rows.resize(slot + 1, None);
        }
        if self.rows[slot].is_some() {
            return Ok(()); // already reflected by the snapshot
        }
        if let Some(key) = self.pk_key(&row) {
            self.pk_index.insert(key, rid);
        }
        for idx in &mut self.indexes {
            let key = idx.key_of(&row);
            idx.insert(key, rid);
        }
        self.rows[slot] = Some(row);
        self.live += 1;
        self.version += 1;
        Ok(())
    }

    /// Re-apply a logged update (replace the row image at `rid`).
    pub fn replay_update(&mut self, rid: RowId, new_row: Row) -> RelResult<()> {
        let Some(old_row) = self.get(rid).cloned() else {
            return Err(RelError::Invalid(format!(
                "replay: no row {rid:?} in {}",
                self.name
            )));
        };
        if let (Some(old_key), Some(new_key)) = (self.pk_key(&old_row), self.pk_key(&new_row)) {
            if old_key != new_key {
                self.pk_index.remove(&old_key);
                self.pk_index.insert(new_key, rid);
            }
        }
        for idx in &mut self.indexes {
            let old_key = idx.key_of(&old_row);
            let new_key = idx.key_of(&new_row);
            if old_key != new_key {
                idx.remove(&old_key, rid);
                idx.insert(new_key, rid);
            }
        }
        self.rows[rid.0 as usize] = Some(new_row);
        self.version += 1;
        Ok(())
    }

    /// Re-apply a logged delete (no-op if the slot is already empty).
    pub fn replay_delete(&mut self, rid: RowId) {
        let Some(slot) = self.rows.get_mut(rid.0 as usize) else {
            return;
        };
        let Some(row) = slot.take() else {
            return;
        };
        if let Some(key) = self.pk_key(&row) {
            self.pk_index.remove(&key);
        }
        for idx in &mut self.indexes {
            let key = idx.key_of(&row);
            idx.remove(&key, rid);
        }
        self.live -= 1;
        self.version += 1;
    }

    /// Iterate live rows with their ids.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|r| (RowId(i as u64), r)))
    }

    /// Number of physical slots (live rows + tombstones). Parallel scans
    /// partition `0..slot_count()` into contiguous ranges.
    pub fn slot_count(&self) -> usize {
        self.rows.len()
    }

    /// Iterate live rows within a contiguous slot range. Concatenating
    /// the outputs of adjacent ranges reproduces [`Table::scan`] exactly.
    pub fn scan_slots(
        &self,
        slots: std::ops::Range<usize>,
    ) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        let start = slots.start;
        self.rows[slots]
            .iter()
            .enumerate()
            .filter_map(move |(i, slot)| slot.as_ref().map(|r| (RowId((start + i) as u64), r)))
    }

    /// Create a secondary index over `columns` and backfill it.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        columns: Vec<usize>,
        kind: IndexKind,
        unique: bool,
    ) -> RelResult<()> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(RelError::IndexExists(name));
        }
        let mut idx = Index::new(name, columns, kind, unique);
        for (rid, row) in self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (RowId(i as u64), r)))
        {
            let key = idx.key_of(row);
            if idx.would_conflict(&key) {
                return Err(RelError::DuplicateKey(format!(
                    "{}:{} (backfill)",
                    self.name, idx.name
                )));
            }
            idx.insert(key, rid);
        }
        self.emit(&Mutation::CreateIndex {
            name: &idx.name,
            columns: &idx.columns,
            kind: idx.kind(),
            unique: idx.unique,
        });
        self.indexes.push(idx);
        Ok(())
    }

    /// Find an index by name.
    pub fn index(&self, name: &str) -> Option<&Index> {
        self.indexes.iter().find(|i| i.name == name)
    }

    /// All secondary indexes.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Find an index whose leading key column is `column` (optimizer hook).
    pub fn index_on_column(&self, column: usize) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|i| i.columns.first() == Some(&column))
    }

    /// Collect all live rows (cloned). Convenience for small tables/tests.
    pub fn all_rows(&self) -> Vec<Row> {
        self.scan().map(|(_, r)| r.clone()).collect()
    }

    /// Columnar image of the live rows in [`Table::scan`] order, one
    /// [`BatchColumn`] per schema column. Built on first call after a
    /// mutation and cached against [`Table::version`], so steady-state
    /// read traffic pays a pointer clone. Concurrent first calls may both
    /// build; the result is identical either way.
    pub fn columnar(&self) -> Arc<Vec<Arc<BatchColumn>>> {
        if let Some((v, cols)) = &*self.columnar.0.lock() {
            if *v == self.version {
                return Arc::clone(cols);
            }
        }
        let mut builders: Vec<ColumnBuilder> = self
            .schema
            .columns()
            .iter()
            .map(|c| ColumnBuilder::for_type(c.data_type, self.live))
            .collect();
        for (_, row) in self.scan() {
            for (b, v) in builders.iter_mut().zip(row.iter()) {
                b.push(v.clone());
            }
        }
        let cols: Arc<Vec<Arc<BatchColumn>>> =
            Arc::new(builders.into_iter().map(|b| Arc::new(b.finish())).collect());
        *self.columnar.0.lock() = Some((self.version, Arc::clone(&cols)));
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::row;
    use crate::schema::{Column, DataType};
    use proptest::prelude::*;

    fn courses() -> Table {
        let schema = Schema::qualified(
            "courses",
            vec![
                Column::not_null("id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("units", DataType::Int),
            ],
        );
        Table::new("courses", schema, vec![0])
    }

    #[test]
    fn insert_and_get() {
        let mut t = courses();
        let rid = t.insert(row![1i64, "Intro", 5i64]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(rid).unwrap()[1], Value::text("Intro"));
        assert_eq!(t.get_by_pk(&vec![Value::Int(1)]).unwrap()[2], Value::Int(5));
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = courses();
        t.insert(row![1i64, "A", 3i64]).unwrap();
        let err = t.insert(row![1i64, "B", 4i64]).unwrap_err();
        assert!(matches!(err, RelError::DuplicateKey(_)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn null_pk_rejected() {
        let mut t = courses();
        // id is NOT NULL so validate_row catches it first.
        assert!(t
            .insert(vec![Value::Null, Value::Null, Value::Null])
            .is_err());
    }

    #[test]
    fn delete_leaves_tombstone_and_updates_indexes() {
        let mut t = courses();
        t.create_index("by_units", vec![2], IndexKind::Hash, false)
            .unwrap();
        let r1 = t.insert(row![1i64, "A", 3i64]).unwrap();
        let r2 = t.insert(row![2i64, "B", 3i64]).unwrap();
        assert!(t.delete(r1));
        assert!(!t.delete(r1)); // second delete is a no-op
        assert_eq!(t.len(), 1);
        assert!(t.get(r1).is_none());
        assert!(t.get(r2).is_some());
        let idx = t.index("by_units").unwrap();
        assert_eq!(idx.get(&vec![Value::Int(3)]).unwrap(), &[r2]);
        // PK is freed for reuse.
        t.insert(row![1i64, "A2", 4i64]).unwrap();
    }

    #[test]
    fn update_moves_index_entries() {
        let mut t = courses();
        t.create_index("by_units", vec![2], IndexKind::BTree, false)
            .unwrap();
        let rid = t.insert(row![1i64, "A", 3i64]).unwrap();
        t.update(rid, row![1i64, "A", 4i64]).unwrap();
        let idx = t.index("by_units").unwrap();
        assert!(idx.get(&vec![Value::Int(3)]).is_none());
        assert_eq!(idx.get(&vec![Value::Int(4)]).unwrap(), &[rid]);
    }

    #[test]
    fn update_pk_conflict_rejected() {
        let mut t = courses();
        let r1 = t.insert(row![1i64, "A", 3i64]).unwrap();
        t.insert(row![2i64, "B", 3i64]).unwrap();
        assert!(matches!(
            t.update(r1, row![2i64, "A", 3i64]),
            Err(RelError::DuplicateKey(_))
        ));
    }

    #[test]
    fn backfilled_index_sees_existing_rows() {
        let mut t = courses();
        t.insert(row![1i64, "A", 3i64]).unwrap();
        t.insert(row![2i64, "B", 4i64]).unwrap();
        t.create_index("by_units", vec![2], IndexKind::Hash, false)
            .unwrap();
        assert_eq!(t.index("by_units").unwrap().entries(), 2);
    }

    #[test]
    fn unique_secondary_index_enforced() {
        let mut t = courses();
        t.create_index("uniq_title", vec![1], IndexKind::Hash, true)
            .unwrap();
        t.insert(row![1i64, "A", 3i64]).unwrap();
        assert!(matches!(
            t.insert(row![2i64, "A", 4i64]),
            Err(RelError::DuplicateKey(_))
        ));
    }

    #[test]
    fn version_bumps_on_mutations_only() {
        let mut t = courses();
        assert_eq!(t.version(), 0);
        let r1 = t.insert(row![1i64, "A", 3i64]).unwrap();
        assert_eq!(t.version(), 1);
        t.insert(row![1i64, "B", 4i64]).unwrap_err(); // duplicate PK: no bump
        assert_eq!(t.version(), 1);
        t.update(r1, row![1i64, "A", 4i64]).unwrap();
        assert_eq!(t.version(), 2);
        assert!(t.delete(r1));
        assert_eq!(t.version(), 3);
        assert!(!t.delete(r1)); // tombstoned already: no bump
        assert_eq!(t.version(), 3);
        t.scan().count(); // reads never bump
        assert_eq!(t.version(), 3);
    }

    #[test]
    fn scan_slots_partitions_reassemble_to_scan() {
        let mut t = courses();
        for id in 0..10i64 {
            t.insert(row![id, "t", id % 3]).unwrap();
        }
        t.delete(RowId(4));
        t.delete(RowId(7));
        let serial: Vec<_> = t.scan().map(|(rid, r)| (rid, r.clone())).collect();
        let n = t.slot_count();
        for parts in 1..=5 {
            let mut stitched = Vec::new();
            for p in 0..parts {
                let (lo, hi) = (p * n / parts, (p + 1) * n / parts);
                stitched.extend(t.scan_slots(lo..hi).map(|(rid, r)| (rid, r.clone())));
            }
            assert_eq!(stitched, serial, "parts={parts}");
        }
    }

    #[test]
    fn columnar_cache_tracks_version_and_survives_clone() {
        let mut t = courses();
        t.insert(row![1i64, "A", 3i64]).unwrap();
        t.insert(row![2i64, "B", 4i64]).unwrap();
        let c1 = t.columnar();
        assert_eq!(c1.len(), 3); // one column per schema column
        assert_eq!(c1[0].value(1), Value::Int(2));
        // Cached: same Arc while the version is unchanged.
        assert!(Arc::ptr_eq(&t.columnar(), &c1));
        // Clones keep the warm snapshot but get their own cell.
        let mut u = t.clone();
        assert!(Arc::ptr_eq(&u.columnar(), &c1));
        u.insert(row![3i64, "C", 5i64]).unwrap();
        assert_eq!(u.columnar()[0].value(2), Value::Int(3));
        assert!(Arc::ptr_eq(&t.columnar(), &c1)); // original unaffected
                                                  // Mutation invalidates: deleted row disappears from the image.
        t.delete(RowId(0));
        let c2 = t.columnar();
        assert_eq!(c2[0].value(0), Value::Int(2));
        assert_eq!(c2[1].value(0), Value::text("B"));
    }

    proptest! {
        /// Index contents always agree with a full scan, under arbitrary
        /// insert/delete interleavings.
        #[test]
        fn index_scan_consistency(ops in proptest::collection::vec((0i64..50, any::<bool>()), 1..100)) {
            let mut t = courses();
            t.create_index("by_units", vec![2], IndexKind::Hash, false).unwrap();
            let mut next_id = 0i64;
            for (units, is_insert) in ops {
                if is_insert {
                    next_id += 1;
                    t.insert(row![next_id, "t", units]).unwrap();
                } else {
                    let rid = t.scan().next().map(|(rid, _)| rid);
                    if let Some(rid) = rid {
                        t.delete(rid);
                    }
                }
            }
            // For every live row, the index on units must contain its rid.
            let idx = t.index("by_units").unwrap();
            let mut via_index = 0usize;
            for (rid, r) in t.scan() {
                let key = vec![r[2].clone()];
                let ids = idx.get(&key).unwrap_or(&[]);
                prop_assert!(ids.contains(&rid));
                via_index += 1;
            }
            prop_assert_eq!(via_index, t.len());
            prop_assert_eq!(idx.entries(), t.len());
        }
    }
}
