//! The catalog and the [`Database`] facade.
//!
//! The [`Catalog`] owns every table behind a per-table
//! [`parking_lot::RwLock`], so CourseRank's read-mostly workload (searches,
//! recommendations, planner reads) proceeds concurrently while comment
//! inserts take short write locks on a single table.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{RelError, RelResult};
use crate::exec::{self, ResultSet};
use crate::expr::Expr;
use crate::index::IndexKind;
use crate::mutation::{MutationObserver, ObserverSlot};
use crate::plan::{self, optimizer, LogicalPlan};
use crate::provider::ScanProvider;
use crate::row::{Row, RowId};
use crate::schema::Schema;
use crate::sql;
use crate::table::Table;

/// The set of tables. Cloning a `Catalog` is cheap (it is an `Arc` inside);
/// clones see the same data.
#[derive(Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<BTreeMap<String, Arc<RwLock<Table>>>>>,
    /// Durability hook, shared by all clones; propagated to every table
    /// (existing and future) by [`Catalog::set_observer`].
    observer: Arc<RwLock<ObserverSlot>>,
    /// Virtual tables ([`ScanProvider`]s) by lowercase name. Read-only,
    /// never persisted, resolved after base tables.
    providers: Arc<RwLock<BTreeMap<String, Arc<dyn ScanProvider>>>>,
    /// Monotone counter handed out as the "version" of every virtual
    /// table scan, so result caches treat telemetry as always-stale.
    virtual_tick: Arc<AtomicU64>,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.table_names())
            .field("virtual", &self.virtual_table_names())
            .finish()
    }
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a [`MutationObserver`] (e.g. `cr-storage`'s WAL writer) to
    /// every current and future table. Table DDL (create/drop/index) and
    /// every successful row mutation are reported to it.
    pub fn set_observer(&self, observer: Arc<dyn MutationObserver>) {
        *self.observer.write() = ObserverSlot(Some(observer.clone()));
        for handle in self.inner.read().values() {
            handle.write().set_observer(Some(observer.clone()));
        }
    }

    /// Create a table. `pk_columns` are positions into `schema`.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        pk_columns: Vec<usize>,
    ) -> RelResult<()> {
        let key = name.to_ascii_lowercase();
        if self.providers.read().contains_key(&key) {
            return Err(RelError::TableExists(name.to_owned()));
        }
        let mut tables = self.inner.write();
        if tables.contains_key(&key) {
            return Err(RelError::TableExists(name.to_owned()));
        }
        let mut table = Table::new(name, schema.clone(), pk_columns.clone());
        let observer = self.observer.read().get().cloned();
        if let Some(obs) = &observer {
            table.set_observer(Some(obs.clone()));
        }
        tables.insert(key, Arc::new(RwLock::new(table)));
        drop(tables);
        if let Some(obs) = observer {
            obs.on_create_table(name, &schema, &pk_columns);
        }
        Ok(())
    }

    /// Install a fully-built table (crash recovery: snapshots restore
    /// tables wholesale). No DDL event is emitted and no observer is
    /// attached — the recovery driver attaches it once replay finishes.
    pub fn install_table(&self, table: Table) -> RelResult<()> {
        let mut tables = self.inner.write();
        let key = table.name().to_ascii_lowercase();
        if tables.contains_key(&key) {
            return Err(RelError::TableExists(table.name().to_owned()));
        }
        tables.insert(key, Arc::new(RwLock::new(table)));
        Ok(())
    }

    /// Register a virtual table: a [`ScanProvider`] whose rows are
    /// computed at scan time. Reads resolve it like a base table (the
    /// standard plan path applies); writes and DROP are rejected, and
    /// it never appears in [`Catalog::table_names`], so persistence
    /// layers never try to snapshot it.
    pub fn register_scan_provider(
        &self,
        name: &str,
        provider: Arc<dyn ScanProvider>,
    ) -> RelResult<()> {
        let key = name.to_ascii_lowercase();
        if self.inner.read().contains_key(&key) {
            return Err(RelError::TableExists(name.to_owned()));
        }
        let mut providers = self.providers.write();
        if providers.contains_key(&key) {
            return Err(RelError::TableExists(name.to_owned()));
        }
        providers.insert(key, provider);
        Ok(())
    }

    fn provider(&self, name: &str) -> Option<Arc<dyn ScanProvider>> {
        let providers = self.providers.read();
        if providers.is_empty() {
            return None; // common case: no virtual tables registered
        }
        providers.get(&name.to_ascii_lowercase()).cloned()
    }

    /// Materialize a provider's current rows as a transient read-only
    /// [`Table`] (no observer, no secondary indexes). The version is a
    /// fresh [`Catalog::virtual_tick`] so dependent caches always see
    /// a change.
    fn materialize(&self, name: &str, provider: &dyn ScanProvider) -> RelResult<Table> {
        let rows = provider.rows()?;
        let slots = rows.into_iter().map(Some).collect();
        let version = self.virtual_tick.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(Table::restore(
            name,
            provider.schema(),
            vec![],
            slots,
            version,
        ))
    }

    /// Drop a table.
    pub fn drop_table(&self, name: &str) -> RelResult<()> {
        if self.provider(name).is_some() {
            return Err(RelError::Invalid(format!(
                "system table {name} cannot be dropped"
            )));
        }
        let mut tables = self.inner.write();
        let removed = tables.remove(&name.to_ascii_lowercase());
        drop(tables);
        match removed {
            Some(_) => {
                if let Some(obs) = self.observer.read().get() {
                    obs.on_drop_table(name);
                }
                Ok(())
            }
            None => Err(RelError::UnknownTable(name.to_owned())),
        }
    }

    fn handle(&self, name: &str) -> RelResult<Arc<RwLock<Table>>> {
        let tables = self.inner.read();
        // Table resolution sits on hot paths (execution, plan validation);
        // lowercase the lookup key on the stack instead of allocating a
        // String per call when the name fits.
        let mut buf = [0u8; 64];
        let found = if name.is_ascii() && name.len() <= buf.len() {
            let key = &mut buf[..name.len()];
            key.copy_from_slice(name.as_bytes());
            key.make_ascii_lowercase();
            std::str::from_utf8(key).ok().and_then(|k| tables.get(k))
        } else {
            tables.get(&name.to_ascii_lowercase())
        };
        found
            .cloned()
            .ok_or_else(|| RelError::UnknownTable(name.to_owned()))
    }

    /// Run a closure with read access to a table. A virtual table is
    /// materialized from its provider for the duration of the call.
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&Table) -> R) -> RelResult<R> {
        match self.handle(name) {
            Ok(h) => {
                let guard = h.read();
                Ok(f(&guard))
            }
            Err(unknown) => match self.provider(name) {
                Some(p) => Ok(f(&self.materialize(name, p.as_ref())?)),
                None => Err(unknown),
            },
        }
    }

    /// Run a closure with write access to a table. Virtual tables are
    /// read-only and reject this.
    pub fn with_table_mut<R>(&self, name: &str, f: impl FnOnce(&mut Table) -> R) -> RelResult<R> {
        match self.handle(name) {
            Ok(h) => {
                let mut guard = h.write();
                Ok(f(&mut guard))
            }
            Err(unknown) => match self.provider(name) {
                Some(_) => Err(RelError::Invalid(format!(
                    "system table {name} is read-only"
                ))),
                None => Err(unknown),
            },
        }
    }

    /// Schema of a table (cloned). Virtual tables answer from their
    /// provider without materializing any rows (binders and validators
    /// call this on every scan).
    pub fn table_schema(&self, name: &str) -> RelResult<Schema> {
        match self.handle(name) {
            Ok(h) => Ok(h.read().schema().clone()),
            Err(unknown) => match self.provider(name) {
                Some(p) => Ok(p.schema()),
                None => Err(unknown),
            },
        }
    }

    /// Live row count.
    pub fn table_len(&self, name: &str) -> RelResult<usize> {
        self.with_table(name, Table::len)
    }

    /// Monotonic mutation counter for a table (see [`Table::version`]).
    /// Result caches snapshot these per dependency and treat any change
    /// as an invalidation. Virtual tables answer with a fresh tick on
    /// every call — telemetry is never cacheable.
    pub fn table_version(&self, name: &str) -> RelResult<u64> {
        match self.handle(name) {
            Ok(h) => Ok(h.read().version()),
            Err(unknown) => match self.provider(name) {
                Some(_) => Ok(self.virtual_tick.fetch_add(1, Ordering::Relaxed) + 1),
                None => Err(unknown),
            },
        }
    }

    /// True if a table (base or virtual) exists.
    pub fn has_table(&self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        self.inner.read().contains_key(&key) || self.providers.read().contains_key(&key)
    }

    /// All **base** table names, sorted. Virtual tables are deliberately
    /// excluded: persistence (snapshots) iterates this list, and
    /// telemetry must never be written to disk as data.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// All virtual (scan-provider) table names, sorted.
    pub fn virtual_table_names(&self) -> Vec<String> {
        self.providers.read().keys().cloned().collect()
    }
}

/// The database facade: a catalog plus the SQL and plan entry points.
///
/// ```
/// use cr_relation::Database;
/// let db = Database::new();
/// db.execute_sql("CREATE TABLE t (x INT)").unwrap();
/// db.execute_sql("INSERT INTO t VALUES (1),(2),(3)").unwrap();
/// let n = db.query_sql("SELECT COUNT(*) AS n FROM t").unwrap();
/// assert_eq!(n.scalar().unwrap().as_int().unwrap(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
    exec_opts: exec::ExecOptions,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing catalog (crash recovery hands back a catalog
    /// rebuilt from snapshot + WAL; this puts the SQL/plan facade on it).
    pub fn from_catalog(catalog: Catalog) -> Self {
        Database {
            catalog,
            exec_opts: exec::ExecOptions::default(),
        }
    }

    /// Builder-style: set the default [`exec::ExecOptions`] used by every
    /// plan/query entry point on this handle. Clones made afterwards keep
    /// the options; the shared catalog data is unaffected.
    pub fn with_exec_options(mut self, opts: exec::ExecOptions) -> Self {
        self.exec_opts = opts;
        self
    }

    /// Set the default worker count for parallel operators (1 = serial).
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.exec_opts.parallelism = parallelism.max(1);
    }

    /// The execution options this handle applies by default.
    pub fn exec_options(&self) -> exec::ExecOptions {
        self.exec_opts
    }

    /// The underlying catalog (cheap clone; shares data).
    pub fn catalog(&self) -> Catalog {
        self.catalog.clone()
    }

    /// Execute any SQL statement. For queries, returns the result set; for
    /// DDL/DML, returns a result set with an `affected` count column.
    pub fn execute_sql(&self, text: &str) -> RelResult<ResultSet> {
        sql::execute(text, &self.catalog)
    }

    /// Execute a SQL query (errors if the statement is not a SELECT).
    pub fn query_sql(&self, text: &str) -> RelResult<ResultSet> {
        self.query_sql_with(text, &self.exec_opts)
    }

    /// [`Database::query_sql`] with explicit execution options.
    pub fn query_sql_with(&self, text: &str, opts: &exec::ExecOptions) -> RelResult<ResultSet> {
        sql::query_with(text, &self.catalog, opts)
    }

    /// Statically check a plan against this database's catalog: structural
    /// and type invariants plus dataflow warnings (contradictory filters,
    /// unused extends, cartesian joins, …). Never executes anything.
    pub fn validate_plan(&self, plan: &LogicalPlan) -> plan::ValidationReport {
        plan::analyze(plan, Some(&self.catalog))
    }

    /// Run a logical plan (optimizing first).
    pub fn run_plan(&self, plan: &LogicalPlan) -> RelResult<ResultSet> {
        self.run_plan_with(plan, &self.exec_opts)
    }

    /// [`Database::run_plan`] with explicit execution options.
    pub fn run_plan_with(
        &self,
        plan: &LogicalPlan,
        opts: &exec::ExecOptions,
    ) -> RelResult<ResultSet> {
        let optimized = optimizer::optimize(plan.clone());
        exec::execute_with(&optimized, &self.catalog, opts)
    }

    /// Run a logical plan (optimizing first) with per-operator profiling.
    pub fn run_plan_instrumented(
        &self,
        plan: &LogicalPlan,
    ) -> RelResult<(ResultSet, crate::profile::OpProfile)> {
        let optimized = optimizer::optimize(plan.clone());
        exec::execute_instrumented_with(&optimized, &self.catalog, &self.exec_opts)
    }

    /// `EXPLAIN ANALYZE` for a SQL query: executes it with per-operator
    /// profiling and returns the result set plus the annotated plan tree
    /// (rows, elapsed time, access paths, join algorithms per node).
    pub fn explain_analyze_sql(
        &self,
        text: &str,
    ) -> RelResult<(ResultSet, crate::profile::OpProfile)> {
        self.explain_analyze_sql_with(text, &self.exec_opts)
    }

    /// [`Database::explain_analyze_sql`] with explicit execution options:
    /// parallel operators annotate `partitions=N` plus per-partition times.
    pub fn explain_analyze_sql_with(
        &self,
        text: &str,
        opts: &exec::ExecOptions,
    ) -> RelResult<(ResultSet, crate::profile::OpProfile)> {
        let plan = sql::plan_query(text, &self.catalog)?;
        exec::execute_instrumented_with(&plan, &self.catalog, opts)
    }

    /// Run a logical plan exactly as given (for optimizer A/B tests).
    pub fn run_plan_unoptimized(&self, plan: &LogicalPlan) -> RelResult<ResultSet> {
        exec::execute_with(plan, &self.catalog, &self.exec_opts)
    }

    /// Insert a row programmatically.
    pub fn insert(&self, table: &str, row: Row) -> RelResult<RowId> {
        self.catalog.with_table_mut(table, |t| t.insert(row))?
    }

    /// Insert many rows programmatically (single write lock).
    pub fn insert_many(&self, table: &str, rows: Vec<Row>) -> RelResult<usize> {
        self.catalog.with_table_mut(table, |t| {
            let mut n = 0usize;
            for r in rows {
                t.insert(r)?;
                n += 1;
            }
            Ok(n)
        })?
    }

    /// Create a hash index.
    pub fn create_index(
        &self,
        table: &str,
        index_name: &str,
        columns: &[&str],
        unique: bool,
    ) -> RelResult<()> {
        self.create_index_kind(table, index_name, columns, IndexKind::Hash, unique)
    }

    /// Create a B-tree index (supports range scans).
    pub fn create_btree_index(
        &self,
        table: &str,
        index_name: &str,
        columns: &[&str],
        unique: bool,
    ) -> RelResult<()> {
        self.create_index_kind(table, index_name, columns, IndexKind::BTree, unique)
    }

    fn create_index_kind(
        &self,
        table: &str,
        index_name: &str,
        columns: &[&str],
        kind: IndexKind,
        unique: bool,
    ) -> RelResult<()> {
        self.catalog.with_table_mut(table, |t| {
            let positions = columns
                .iter()
                .map(|c| t.schema().index_of(c))
                .collect::<RelResult<Vec<_>>>()?;
            t.create_index(index_name, positions, kind, unique)
        })?
    }

    /// Delete rows matching a (named-column) predicate; returns count.
    pub fn delete_where(&self, table: &str, predicate: &Expr) -> RelResult<usize> {
        self.catalog.with_table_mut(table, |t| {
            let bound = predicate.bind(t.schema())?;
            let mut victims = Vec::new();
            for (rid, row) in t.scan() {
                if bound.eval_predicate(row)? {
                    victims.push(rid);
                }
            }
            let n = victims.len();
            for rid in victims {
                t.delete(rid);
            }
            Ok(n)
        })?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::row;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    #[test]
    fn create_and_drop() {
        let c = Catalog::new();
        let s = Schema::new(vec![Column::new("x", DataType::Int)]);
        c.create_table("t", s.clone(), vec![]).unwrap();
        assert!(c.has_table("t"));
        assert!(c.has_table("T")); // case-insensitive
        assert!(matches!(
            c.create_table("T", s, vec![]),
            Err(RelError::TableExists(_))
        ));
        c.drop_table("t").unwrap();
        assert!(!c.has_table("t"));
        assert!(matches!(c.drop_table("t"), Err(RelError::UnknownTable(_))));
    }

    #[test]
    fn clones_share_state() {
        let c = Catalog::new();
        c.create_table(
            "t",
            Schema::new(vec![Column::new("x", DataType::Int)]),
            vec![],
        )
        .unwrap();
        let c2 = c.clone();
        c2.with_table_mut("t", |t| t.insert(row![1i64]).unwrap())
            .unwrap();
        assert_eq!(c.table_len("t").unwrap(), 1);
    }

    #[test]
    fn database_insert_and_delete_where() {
        let db = Database::new();
        db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        db.insert_many(
            "t",
            vec![row![1i64, 10i64], row![2i64, 20i64], row![3i64, 30i64]],
        )
        .unwrap();
        let n = db
            .delete_where("t", &Expr::col("v").gt_eq(Expr::lit(20i64)))
            .unwrap();
        assert_eq!(n, 2);
        let rs = db.query_sql("SELECT COUNT(*) AS n FROM t").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn concurrent_readers() {
        use std::thread;
        let db = Database::new();
        db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY)")
            .unwrap();
        for i in 0..100 {
            db.insert("t", row![i as i64]).unwrap();
        }
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let db = db.clone();
                thread::spawn(move || {
                    let rs = db.query_sql("SELECT COUNT(*) AS n FROM t").unwrap();
                    rs.scalar().unwrap().as_int().unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 100);
        }
    }

    #[test]
    fn concurrent_writers_distinct_tables() {
        use std::thread;
        let db = Database::new();
        db.execute_sql("CREATE TABLE a (id INT PRIMARY KEY)")
            .unwrap();
        db.execute_sql("CREATE TABLE b (id INT PRIMARY KEY)")
            .unwrap();
        let mut handles = Vec::new();
        for (table, base) in [("a", 0i64), ("b", 1000i64)] {
            let db = db.clone();
            handles.push(thread::spawn(move || {
                for i in 0..200 {
                    db.insert(table, row![base + i]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.catalog().table_len("a").unwrap(), 200);
        assert_eq!(db.catalog().table_len("b").unwrap(), 200);
    }
}
