//! The catalog and the [`Database`] facade.
//!
//! The [`Catalog`] is a multi-version store: every table lives in a cell
//! holding an immutable `Arc<Table>` image. Readers *pin* the current
//! image (a pointer clone under a momentary lock) and then execute with
//! **no lock held at all**, so CourseRank's read-mostly workload
//! (searches, recommendations, planner reads) never blocks — and is
//! never blocked by — comment and enrollment writes. Writers mutate
//! copy-on-write via [`Arc::make_mut`]: while no reader pins the image
//! the mutation is applied in place (the common, allocation-free case);
//! while a snapshot is live the first write clones the table and later
//! readers see the new image, earlier pins keep the old one.
//!
//! [`Catalog::snapshot`] extends per-table pinning to the whole catalog:
//! it briefly excludes writers (the `publish` lock), pins every table at
//! once, and hands back a frozen [`CatalogSnapshot`] — a read-only
//! catalog whose tables can never change underneath a request. Mutation
//! ordering vs. snapshot publication: observers (the WAL) are notified
//! under the table's cell lock, inside the writer's shared `publish`
//! hold, so any state a snapshot can observe is already a prefix of the
//! write-ahead log.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{RelError, RelResult};
use crate::exec::{self, ResultSet};
use crate::expr::Expr;
use crate::index::IndexKind;
use crate::mutation::{CompositeObserver, MutationObserver, ObserverSlot};
use crate::plan::flow::{FlowPolicy, Principal, TablePolicy};
use crate::plan::{self, optimizer, LogicalPlan};
use crate::provider::ScanProvider;
use crate::row::{Row, RowId};
use crate::schema::Schema;
use crate::sql;
use crate::table::Table;

/// A table cell: the current immutable image, swapped (or mutated in
/// place when unshared) under the cell's write lock.
type TableCell = Arc<RwLock<Arc<Table>>>;

/// Generation-stamped flow caches (see [`Catalog::flow_gen`]): each entry
/// records the schema generation it was built under.
type FlowTemplateCache = BTreeMap<String, (u64, Arc<plan::flow::ScanTemplate>)>;
type FlowDecisionCache = BTreeMap<String, (u64, Arc<plan::ValidationReport>)>;

/// The set of tables. Cloning a `Catalog` is cheap (it is an `Arc` inside);
/// clones see the same data.
#[derive(Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<BTreeMap<String, TableCell>>>,
    /// Durability hook, shared by all clones; propagated to every table
    /// (existing and future) by [`Catalog::set_observer`].
    observer: Arc<RwLock<ObserverSlot>>,
    /// Virtual tables ([`ScanProvider`]s) by lowercase name. Read-only,
    /// never persisted, resolved after base tables.
    providers: Arc<RwLock<BTreeMap<String, Arc<dyn ScanProvider>>>>,
    /// Monotone counter handed out as the "version" of every virtual
    /// table scan, so result caches treat telemetry as always-stale.
    virtual_tick: Arc<AtomicU64>,
    /// Publication lock. Writers hold it *shared* across each mutation
    /// (distinct tables still commit concurrently); [`Catalog::snapshot`]
    /// holds it *exclusive* for the instant it pins every table, so a
    /// snapshot is an atomic cut between whole mutations, never inside
    /// one.
    publish: Arc<RwLock<()>>,
    /// Information-flow policy: per-table sensitivity labels plus the
    /// k-anonymity threshold (see [`crate::plan::flow`]). Shared by all
    /// clones and by snapshots, so frozen read views enforce the same
    /// labels as the live catalog.
    flow: Arc<RwLock<FlowPolicy>>,
    /// Memoized per-table scan templates for the flow checker (resolved
    /// labels per column), each stamped with the [`Catalog::flow_gen`]
    /// it was built under. Cleared whenever a policy changes; a stamp
    /// mismatch is a miss, so sharing the cache across clones and
    /// snapshots is safe even across DDL.
    flow_cache: Arc<RwLock<FlowTemplateCache>>,
    /// Memoized disclosure decisions for the SQL read path, keyed by
    /// `principal\x1fquery` and stamped like [`Catalog::flow_cache`].
    /// Decisions depend only on schema + policy (never data), so the
    /// stamp plus the policy-change clear is a sound invalidation.
    flow_decisions: Arc<RwLock<FlowDecisionCache>>,
    /// Schema-identity generation: bumped by create/drop/install/
    /// register-provider, i.e. any event that can change which schema a
    /// table name resolves to. Flow caches are stamped with it.
    flow_gen: Arc<AtomicU64>,
    /// Snapshots pin the generation at the cut: their pinned schemas
    /// never change, so entries stamped at the cut stay valid for them
    /// even while the live catalog moves on. (Policy is deliberately
    /// *not* pinned — label changes clear the shared caches, so frozen
    /// views enforce the live policy, matching `flow` being shared.)
    flow_gen_pin: Option<u64>,
    /// Frozen handles ([`Catalog::snapshot`]) reject every mutation.
    frozen: bool,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.table_names())
            .field("virtual", &self.virtual_table_names())
            .finish()
    }
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// True for the frozen handle inside a [`CatalogSnapshot`]: reads
    /// serve the pinned images forever, every mutation is rejected.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    fn reject_frozen(&self) -> RelResult<()> {
        if self.frozen {
            Err(RelError::Invalid(
                "catalog snapshot is read-only".to_owned(),
            ))
        } else {
            Ok(())
        }
    }

    /// Attach a [`MutationObserver`] (e.g. `cr-storage`'s WAL writer) to
    /// every current and future table. Table DDL (create/drop/index) and
    /// every successful row mutation are reported to it.
    pub fn set_observer(&self, observer: Arc<dyn MutationObserver>) {
        *self.observer.write() = ObserverSlot(Some(observer.clone()));
        self.propagate_observer(observer);
    }

    /// Add a [`MutationObserver`] *alongside* any already attached one
    /// (fan-out via [`CompositeObserver`], earlier observers notified
    /// first). Storage attaches its WAL writer with
    /// [`Catalog::set_observer`] before services subscribe caches here,
    /// so durability always sees a mutation before any cache reacts.
    pub fn add_observer(&self, observer: Arc<dyn MutationObserver>) {
        let composed: Arc<dyn MutationObserver> = {
            let mut slot = self.observer.write();
            let composed: Arc<dyn MutationObserver> = match slot.get() {
                Some(existing) => {
                    Arc::new(CompositeObserver::new(vec![Arc::clone(existing), observer]))
                }
                None => observer,
            };
            *slot = ObserverSlot(Some(Arc::clone(&composed)));
            composed
        };
        self.propagate_observer(composed);
    }

    fn propagate_observer(&self, observer: Arc<dyn MutationObserver>) {
        let _commit = self.publish.read();
        for cell in self.inner.read().values() {
            let mut image = cell.write();
            Arc::make_mut(&mut image).set_observer(Some(observer.clone()));
        }
    }

    /// Create a table. `pk_columns` are positions into `schema`.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        pk_columns: Vec<usize>,
    ) -> RelResult<()> {
        self.reject_frozen()?;
        let key = name.to_ascii_lowercase();
        if self.providers.read().contains_key(&key) {
            return Err(RelError::TableExists(name.to_owned()));
        }
        let _commit = self.publish.read();
        let mut tables = self.inner.write();
        if tables.contains_key(&key) {
            return Err(RelError::TableExists(name.to_owned()));
        }
        let mut table = Table::new(name, schema.clone(), pk_columns.clone());
        let observer = self.observer.read().get().cloned();
        if let Some(obs) = &observer {
            table.set_observer(Some(obs.clone()));
        }
        tables.insert(key, Arc::new(RwLock::new(Arc::new(table))));
        drop(tables);
        self.bump_flow_gen();
        if let Some(obs) = observer {
            obs.on_create_table(name, &schema, &pk_columns);
        }
        Ok(())
    }

    /// Install a fully-built table (crash recovery: snapshots restore
    /// tables wholesale). No DDL event is emitted and no observer is
    /// attached — the recovery driver attaches it once replay finishes.
    pub fn install_table(&self, table: Table) -> RelResult<()> {
        self.reject_frozen()?;
        let _commit = self.publish.read();
        let mut tables = self.inner.write();
        let key = table.name().to_ascii_lowercase();
        if tables.contains_key(&key) {
            return Err(RelError::TableExists(table.name().to_owned()));
        }
        tables.insert(key, Arc::new(RwLock::new(Arc::new(table))));
        self.bump_flow_gen();
        Ok(())
    }

    /// Register a virtual table: a [`ScanProvider`] whose rows are
    /// computed at scan time. Reads resolve it like a base table (the
    /// standard plan path applies); writes and DROP are rejected, and
    /// it never appears in [`Catalog::table_names`], so persistence
    /// layers never try to snapshot it.
    pub fn register_scan_provider(
        &self,
        name: &str,
        provider: Arc<dyn ScanProvider>,
    ) -> RelResult<()> {
        let key = name.to_ascii_lowercase();
        if self.inner.read().contains_key(&key) {
            return Err(RelError::TableExists(name.to_owned()));
        }
        let mut providers = self.providers.write();
        if providers.contains_key(&key) {
            return Err(RelError::TableExists(name.to_owned()));
        }
        providers.insert(key, provider);
        drop(providers);
        self.bump_flow_gen();
        Ok(())
    }

    fn provider(&self, name: &str) -> Option<Arc<dyn ScanProvider>> {
        let providers = self.providers.read();
        if providers.is_empty() {
            return None; // common case: no virtual tables registered
        }
        providers.get(&name.to_ascii_lowercase()).cloned()
    }

    /// Materialize a provider's current rows as a transient read-only
    /// [`Table`] (no observer, no secondary indexes). The version is a
    /// fresh [`Catalog::virtual_tick`] so dependent caches always see
    /// a change.
    fn materialize(&self, name: &str, provider: &dyn ScanProvider) -> RelResult<Table> {
        let rows = provider.rows()?;
        let slots = rows.into_iter().map(Some).collect();
        let version = self.virtual_tick.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(Table::restore(
            name,
            provider.schema(),
            vec![],
            slots,
            version,
        ))
    }

    /// Drop a table.
    pub fn drop_table(&self, name: &str) -> RelResult<()> {
        self.reject_frozen()?;
        if self.provider(name).is_some() {
            return Err(RelError::Invalid(format!(
                "system table {name} cannot be dropped"
            )));
        }
        let _commit = self.publish.read();
        let mut tables = self.inner.write();
        let removed = tables.remove(&name.to_ascii_lowercase());
        drop(tables);
        match removed {
            Some(_) => {
                self.bump_flow_gen();
                if let Some(obs) = self.observer.read().get() {
                    obs.on_drop_table(name);
                }
                Ok(())
            }
            None => Err(RelError::UnknownTable(name.to_owned())),
        }
    }

    fn handle(&self, name: &str) -> RelResult<TableCell> {
        let tables = self.inner.read();
        // Table resolution sits on hot paths (execution, plan validation);
        // lowercase the lookup key on the stack instead of allocating a
        // String per call when the name fits.
        let mut buf = [0u8; 64];
        let found = if name.is_ascii() && name.len() <= buf.len() {
            let key = &mut buf[..name.len()];
            key.copy_from_slice(name.as_bytes());
            key.make_ascii_lowercase();
            std::str::from_utf8(key).ok().and_then(|k| tables.get(k))
        } else {
            tables.get(&name.to_ascii_lowercase())
        };
        found
            .cloned()
            .ok_or_else(|| RelError::UnknownTable(name.to_owned()))
    }

    /// Pin the current immutable image of a base table. The cell lock is
    /// held only for the pointer clone; the returned image can never
    /// change (writers copy-on-write), so callers read without blocking
    /// writers and without any torn state *within* the table.
    pub fn pin_table(&self, name: &str) -> RelResult<Arc<Table>> {
        self.handle(name).map(|cell| Arc::clone(&cell.read()))
    }

    /// Run a closure with read access to a table. The closure executes
    /// against a pinned immutable image — no lock is held while it runs.
    /// A virtual table is materialized from its provider for the
    /// duration of the call.
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&Table) -> R) -> RelResult<R> {
        match self.pin_table(name) {
            Ok(image) => Ok(f(&image)),
            Err(unknown) => match self.provider(name) {
                Some(p) => Ok(f(&self.materialize(name, p.as_ref())?)),
                None => Err(unknown),
            },
        }
    }

    /// Run a closure with write access to a table. The mutation is
    /// copy-on-write: in place while the image is unshared (no live
    /// snapshot pins it), against a private clone otherwise — pinned
    /// readers keep the pre-write image either way. Virtual tables are
    /// read-only and reject this; so do frozen snapshot handles.
    pub fn with_table_mut<R>(&self, name: &str, f: impl FnOnce(&mut Table) -> R) -> RelResult<R> {
        self.reject_frozen()?;
        match self.handle(name) {
            Ok(cell) => {
                // Shared hold on `publish`: concurrent writers on other
                // tables proceed, but a snapshot (exclusive hold) can
                // never cut between this mutation's WAL emission (inside
                // `f`, under the cell lock) and its publication here.
                let _commit = self.publish.read();
                let mut image = cell.write();
                Ok(f(Arc::make_mut(&mut image)))
            }
            Err(unknown) => match self.provider(name) {
                Some(_) => Err(RelError::Invalid(format!(
                    "system table {name} is read-only"
                ))),
                None => Err(unknown),
            },
        }
    }

    /// Pin every base table at one instant and return a frozen, fully
    /// read-only view of the catalog. Writers are excluded only while
    /// the pointers are cloned (O(#tables), no data is copied); requests
    /// then execute against the snapshot with no locks and observe a
    /// single consistent cut across all tables, regardless of how many
    /// mutations land meanwhile.
    pub fn snapshot(&self) -> CatalogSnapshot {
        let mut pinned = BTreeMap::new();
        let mut versions = BTreeMap::new();
        {
            // Exclusive vs. writers' shared holds: no mutation is
            // mid-flight while the cut is taken.
            let _cut = self.publish.write();
            for (name, cell) in self.inner.read().iter() {
                let image = Arc::clone(&cell.read());
                versions.insert(name.clone(), image.version());
                pinned.insert(name.clone(), Arc::new(RwLock::new(image)));
            }
        }
        let catalog = Catalog {
            inner: Arc::new(RwLock::new(pinned)),
            // Snapshot tables are never mutated, so no observer: even if
            // one were attached later it could never fire.
            observer: Arc::new(RwLock::new(ObserverSlot::default())),
            // Virtual tables stay live: telemetry is explicitly
            // point-in-time-of-scan, never part of the data cut.
            providers: Arc::clone(&self.providers),
            virtual_tick: Arc::clone(&self.virtual_tick),
            publish: Arc::new(RwLock::new(())),
            // Labels travel with the data: a frozen read view enforces
            // exactly the live catalog's flow policy. The flow caches
            // travel too; the snapshot pins the generation at the cut,
            // so entries stamped now stay valid for its frozen schemas.
            flow: Arc::clone(&self.flow),
            flow_cache: Arc::clone(&self.flow_cache),
            flow_decisions: Arc::clone(&self.flow_decisions),
            flow_gen: Arc::clone(&self.flow_gen),
            flow_gen_pin: Some(self.flow_gen_now()),
            frozen: true,
        };
        CatalogSnapshot {
            catalog,
            versions: Arc::new(versions),
        }
    }

    /// Schema of a table (cloned). Virtual tables answer from their
    /// provider without materializing any rows (binders and validators
    /// call this on every scan).
    pub fn table_schema(&self, name: &str) -> RelResult<Schema> {
        match self.handle(name) {
            Ok(cell) => Ok(cell.read().schema().clone()),
            Err(unknown) => match self.provider(name) {
                Some(p) => Ok(p.schema()),
                None => Err(unknown),
            },
        }
    }

    /// Live row count.
    pub fn table_len(&self, name: &str) -> RelResult<usize> {
        self.with_table(name, Table::len)
    }

    /// Monotonic mutation counter for a table (see [`Table::version`]).
    /// Result caches snapshot these per dependency and treat any change
    /// as an invalidation. Virtual tables answer with a fresh tick on
    /// every call — telemetry is never cacheable.
    pub fn table_version(&self, name: &str) -> RelResult<u64> {
        match self.handle(name) {
            Ok(cell) => Ok(cell.read().version()),
            Err(unknown) => match self.provider(name) {
                Some(_) => Ok(self.virtual_tick.fetch_add(1, Ordering::Relaxed) + 1),
                None => Err(unknown),
            },
        }
    }

    /// True if a table (base or virtual) exists.
    pub fn has_table(&self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        self.inner.read().contains_key(&key) || self.providers.read().contains_key(&key)
    }

    /// All **base** table names, sorted. Virtual tables are deliberately
    /// excluded: persistence (snapshots) iterates this list, and
    /// telemetry must never be written to disk as data.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// All virtual (scan-provider) table names, sorted.
    pub fn virtual_table_names(&self) -> Vec<String> {
        self.providers.read().keys().cloned().collect()
    }

    // ------------------------------------------------------------------
    // Information-flow policy (see `plan::flow`)
    // ------------------------------------------------------------------

    /// Register (or replace) a table's sensitivity-label policy. Tables
    /// without a policy are `Public`. Shared by clones and snapshots.
    pub fn set_table_policy(&self, table: &str, policy: TablePolicy) {
        self.flow.write().set_table(table, policy);
        self.flow_cache.write().clear();
        self.flow_decisions.write().clear();
    }

    /// The flow policy of one table, if registered.
    pub fn table_policy(&self, table: &str) -> Option<TablePolicy> {
        self.flow.read().table(table).cloned()
    }

    /// Set the k-anonymity threshold for aggregate declassification.
    pub fn set_flow_k(&self, k: i64) {
        self.flow.write().k = k;
        // Cached decisions baked the old threshold into their verdicts.
        self.flow_decisions.write().clear();
    }

    /// The k-anonymity threshold (default: [`plan::flow::DEFAULT_K`]).
    pub fn flow_k(&self) -> i64 {
        self.flow.read().k
    }

    /// A point-in-time copy of the whole flow policy.
    pub fn flow_policy(&self) -> FlowPolicy {
        self.flow.read().clone()
    }

    /// The current flow-cache generation: the snapshot pin when frozen,
    /// the live counter otherwise. Builders must capture it *before*
    /// reading the schema they build from, so a concurrent DDL leaves
    /// their entry stamped stale (a miss), never stale-but-fresh.
    pub(crate) fn flow_gen_now(&self) -> u64 {
        self.flow_gen_pin
            .unwrap_or_else(|| self.flow_gen.load(Ordering::Relaxed))
    }

    fn bump_flow_gen(&self) {
        self.flow_gen.fetch_add(1, Ordering::Relaxed);
    }

    /// Cached flow scan template for `table`, if stamped at the current
    /// generation (anything else is a miss and will be rebuilt).
    pub(crate) fn flow_template(&self, table: &str) -> Option<Arc<plan::flow::ScanTemplate>> {
        let gen = self.flow_gen_now();
        let cache = self.flow_cache.read();
        // Same stack-lowercasing trick as `handle`: this sits on the
        // per-query disclosure-check path.
        let mut buf = [0u8; 64];
        let hit = if table.is_ascii() && table.len() <= buf.len() {
            let key = &mut buf[..table.len()];
            key.copy_from_slice(table.as_bytes());
            key.make_ascii_lowercase();
            std::str::from_utf8(key).ok().and_then(|k| cache.get(k))
        } else {
            cache.get(&table.to_ascii_lowercase())
        };
        match hit {
            Some((g, t)) if *g == gen => Some(Arc::clone(t)),
            _ => None,
        }
    }

    /// Memoize a flow scan template (key already lowercased) built under
    /// generation `gen` (captured before the schema read).
    pub(crate) fn store_flow_template(
        &self,
        key: String,
        gen: u64,
        t: Arc<plan::flow::ScanTemplate>,
    ) {
        self.flow_cache.write().insert(key, (gen, t));
    }

    /// Cached disclosure decision for `(principal, sql)`, if stamped at
    /// the current generation.
    pub(crate) fn flow_decision(&self, gen: u64, key: &str) -> Option<Arc<plan::ValidationReport>> {
        match self.flow_decisions.read().get(key) {
            Some((g, r)) if *g == gen => Some(Arc::clone(r)),
            _ => None,
        }
    }

    /// Memoize a disclosure decision. The map is bounded: a pathological
    /// stream of distinct query texts clears it rather than growing it.
    pub(crate) fn store_flow_decision(
        &self,
        key: String,
        gen: u64,
        report: Arc<plan::ValidationReport>,
    ) {
        let mut map = self.flow_decisions.write();
        if map.len() >= 1024 {
            map.clear();
        }
        map.insert(key, (gen, report));
    }

    /// Run a closure against a table's schema without cloning it (base
    /// tables; provider schemas are still built on demand).
    pub fn with_table_schema<R>(&self, name: &str, f: impl FnOnce(&Schema) -> R) -> RelResult<R> {
        match self.handle(name) {
            Ok(cell) => {
                let image = cell.read();
                Ok(f(image.schema()))
            }
            Err(unknown) => match self.provider(name) {
                Some(p) => Ok(f(&p.schema())),
                None => Err(unknown),
            },
        }
    }
}

/// A pinned, immutable, cross-table-consistent view of a [`Catalog`].
///
/// Produced by [`Catalog::snapshot`]. The inner catalog handle answers
/// every read API (`with_table`, plans, SQL) from the pinned images and
/// rejects every mutation; [`CatalogSnapshot::versions`] is the version
/// vector at the cut, which is exactly what version-keyed result caches
/// use as their dependency stamp — a value computed against this
/// snapshot may be cached under these versions.
#[derive(Clone)]
pub struct CatalogSnapshot {
    catalog: Catalog,
    versions: Arc<BTreeMap<String, u64>>,
}

impl std::fmt::Debug for CatalogSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CatalogSnapshot")
            .field("versions", &self.versions)
            .finish()
    }
}

impl CatalogSnapshot {
    /// The frozen catalog handle (cheap clone; read-only).
    pub fn catalog(&self) -> Catalog {
        self.catalog.clone()
    }

    /// Per-table mutation-counter versions at the instant of the cut.
    pub fn versions(&self) -> &BTreeMap<String, u64> {
        &self.versions
    }

    /// Version of one table at the cut (`None` if it did not exist).
    pub fn version_of(&self, table: &str) -> Option<u64> {
        self.versions.get(&table.to_ascii_lowercase()).copied()
    }

    /// A [`Database`] facade over the snapshot: the full read path (SQL,
    /// plans, EXPLAIN) works; DML and DDL return an error.
    pub fn database(&self) -> Database {
        Database::from_catalog(self.catalog())
    }
}

/// The database facade: a catalog plus the SQL and plan entry points.
///
/// ```
/// use cr_relation::Database;
/// let db = Database::new();
/// db.execute_sql("CREATE TABLE t (x INT)").unwrap();
/// db.execute_sql("INSERT INTO t VALUES (1),(2),(3)").unwrap();
/// let n = db.query_sql("SELECT COUNT(*) AS n FROM t").unwrap();
/// assert_eq!(n.scalar().unwrap().as_int().unwrap(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
    exec_opts: exec::ExecOptions,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing catalog (crash recovery hands back a catalog
    /// rebuilt from snapshot + WAL; this puts the SQL/plan facade on it).
    pub fn from_catalog(catalog: Catalog) -> Self {
        Database {
            catalog,
            exec_opts: exec::ExecOptions::default(),
        }
    }

    /// Builder-style: set the default [`exec::ExecOptions`] used by every
    /// plan/query entry point on this handle. Clones made afterwards keep
    /// the options; the shared catalog data is unaffected.
    pub fn with_exec_options(mut self, opts: exec::ExecOptions) -> Self {
        self.exec_opts = opts;
        self
    }

    /// Set the default worker count for parallel operators (1 = serial).
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.exec_opts.parallelism = parallelism.max(1);
    }

    /// The execution options this handle applies by default.
    pub fn exec_options(&self) -> exec::ExecOptions {
        self.exec_opts
    }

    /// The underlying catalog (cheap clone; shares data).
    pub fn catalog(&self) -> Catalog {
        self.catalog.clone()
    }

    /// Pin a cross-table-consistent snapshot and wrap it in a read-only
    /// `Database` that keeps this handle's execution options. See
    /// [`Catalog::snapshot`].
    pub fn snapshot(&self) -> (Database, CatalogSnapshot) {
        let snap = self.catalog.snapshot();
        let db = Database {
            catalog: snap.catalog(),
            exec_opts: self.exec_opts,
        };
        (db, snap)
    }

    /// True if this handle wraps a frozen [`CatalogSnapshot`].
    pub fn is_snapshot(&self) -> bool {
        self.catalog.is_frozen()
    }

    /// Execute any SQL statement. For queries, returns the result set; for
    /// DDL/DML, returns a result set with an `affected` count column.
    pub fn execute_sql(&self, text: &str) -> RelResult<ResultSet> {
        sql::execute(text, &self.catalog)
    }

    /// Execute a SQL query (errors if the statement is not a SELECT).
    pub fn query_sql(&self, text: &str) -> RelResult<ResultSet> {
        self.query_sql_with(text, &self.exec_opts)
    }

    /// [`Database::query_sql`] with explicit execution options.
    pub fn query_sql_with(&self, text: &str, opts: &exec::ExecOptions) -> RelResult<ResultSet> {
        sql::query_with(text, &self.catalog, opts)
    }

    /// Statically check a plan against this database's catalog: structural
    /// and type invariants plus dataflow warnings (contradictory filters,
    /// unused extends, cartesian joins, …). Never executes anything.
    /// Equivalent to [`Database::validate_plan_for`] with a full-clearance
    /// principal (no disclosure findings are possible).
    pub fn validate_plan(&self, plan: &LogicalPlan) -> plan::ValidationReport {
        plan::analyze(plan, Some(&self.catalog))
    }

    /// [`Database::validate_plan`] plus the information-flow disclosure
    /// check for a concrete principal: structural diagnostics (E/W codes)
    /// followed by policy diagnostics (P codes). Never executes anything.
    pub fn validate_plan_for(
        &self,
        plan: &LogicalPlan,
        principal: &Principal,
    ) -> plan::ValidationReport {
        let mut report = plan::analyze(plan, Some(&self.catalog));
        report
            .diagnostics
            .extend(self.check_disclosure(plan, principal).diagnostics);
        report
    }

    /// Statically prove (or refute) that the plan's output may be shown to
    /// `principal` under the catalog's sensitivity labels. An empty report
    /// is the proof; violations carry stable P-codes. Never executes
    /// anything. See [`plan::flow::check_disclosure`].
    pub fn check_disclosure(
        &self,
        plan: &LogicalPlan,
        principal: &Principal,
    ) -> plan::ValidationReport {
        plan::flow::check_disclosure(plan, &self.catalog, principal)
    }

    /// Run a logical plan (optimizing first).
    pub fn run_plan(&self, plan: &LogicalPlan) -> RelResult<ResultSet> {
        self.run_plan_with(plan, &self.exec_opts)
    }

    /// [`Database::run_plan`] with explicit execution options.
    pub fn run_plan_with(
        &self,
        plan: &LogicalPlan,
        opts: &exec::ExecOptions,
    ) -> RelResult<ResultSet> {
        let optimized = optimizer::optimize(plan.clone());
        exec::execute_with(&optimized, &self.catalog, opts)
    }

    /// Run a logical plan (optimizing first) with per-operator profiling.
    pub fn run_plan_instrumented(
        &self,
        plan: &LogicalPlan,
    ) -> RelResult<(ResultSet, crate::profile::OpProfile)> {
        let optimized = optimizer::optimize(plan.clone());
        exec::execute_instrumented_with(&optimized, &self.catalog, &self.exec_opts)
    }

    /// `EXPLAIN ANALYZE` for a SQL query: executes it with per-operator
    /// profiling and returns the result set plus the annotated plan tree
    /// (rows, elapsed time, access paths, join algorithms per node).
    pub fn explain_analyze_sql(
        &self,
        text: &str,
    ) -> RelResult<(ResultSet, crate::profile::OpProfile)> {
        self.explain_analyze_sql_with(text, &self.exec_opts)
    }

    /// [`Database::explain_analyze_sql`] with explicit execution options:
    /// parallel operators annotate `partitions=N` plus per-partition times.
    pub fn explain_analyze_sql_with(
        &self,
        text: &str,
        opts: &exec::ExecOptions,
    ) -> RelResult<(ResultSet, crate::profile::OpProfile)> {
        let plan = sql::plan_query(text, &self.catalog)?;
        exec::execute_instrumented_with(&plan, &self.catalog, opts)
    }

    /// Run a logical plan exactly as given (for optimizer A/B tests).
    pub fn run_plan_unoptimized(&self, plan: &LogicalPlan) -> RelResult<ResultSet> {
        exec::execute_with(plan, &self.catalog, &self.exec_opts)
    }

    /// Insert a row programmatically.
    pub fn insert(&self, table: &str, row: Row) -> RelResult<RowId> {
        self.catalog.with_table_mut(table, |t| t.insert(row))?
    }

    /// Insert many rows programmatically (single write lock).
    pub fn insert_many(&self, table: &str, rows: Vec<Row>) -> RelResult<usize> {
        self.catalog.with_table_mut(table, |t| {
            let mut n = 0usize;
            for r in rows {
                t.insert(r)?;
                n += 1;
            }
            Ok(n)
        })?
    }

    /// Create a hash index.
    pub fn create_index(
        &self,
        table: &str,
        index_name: &str,
        columns: &[&str],
        unique: bool,
    ) -> RelResult<()> {
        self.create_index_kind(table, index_name, columns, IndexKind::Hash, unique)
    }

    /// Create a B-tree index (supports range scans).
    pub fn create_btree_index(
        &self,
        table: &str,
        index_name: &str,
        columns: &[&str],
        unique: bool,
    ) -> RelResult<()> {
        self.create_index_kind(table, index_name, columns, IndexKind::BTree, unique)
    }

    fn create_index_kind(
        &self,
        table: &str,
        index_name: &str,
        columns: &[&str],
        kind: IndexKind,
        unique: bool,
    ) -> RelResult<()> {
        self.catalog.with_table_mut(table, |t| {
            let positions = columns
                .iter()
                .map(|c| t.schema().index_of(c))
                .collect::<RelResult<Vec<_>>>()?;
            t.create_index(index_name, positions, kind, unique)
        })?
    }

    /// Delete rows matching a (named-column) predicate; returns count.
    pub fn delete_where(&self, table: &str, predicate: &Expr) -> RelResult<usize> {
        self.catalog.with_table_mut(table, |t| {
            let bound = predicate.bind(t.schema())?;
            let mut victims = Vec::new();
            for (rid, row) in t.scan() {
                if bound.eval_predicate(row)? {
                    victims.push(rid);
                }
            }
            let n = victims.len();
            for rid in victims {
                t.delete(rid);
            }
            Ok(n)
        })?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::row;
    use crate::schema::{Column, DataType};
    use crate::value::Value;

    #[test]
    fn create_and_drop() {
        let c = Catalog::new();
        let s = Schema::new(vec![Column::new("x", DataType::Int)]);
        c.create_table("t", s.clone(), vec![]).unwrap();
        assert!(c.has_table("t"));
        assert!(c.has_table("T")); // case-insensitive
        assert!(matches!(
            c.create_table("T", s, vec![]),
            Err(RelError::TableExists(_))
        ));
        c.drop_table("t").unwrap();
        assert!(!c.has_table("t"));
        assert!(matches!(c.drop_table("t"), Err(RelError::UnknownTable(_))));
    }

    #[test]
    fn clones_share_state() {
        let c = Catalog::new();
        c.create_table(
            "t",
            Schema::new(vec![Column::new("x", DataType::Int)]),
            vec![],
        )
        .unwrap();
        let c2 = c.clone();
        c2.with_table_mut("t", |t| t.insert(row![1i64]).unwrap())
            .unwrap();
        assert_eq!(c.table_len("t").unwrap(), 1);
    }

    #[test]
    fn database_insert_and_delete_where() {
        let db = Database::new();
        db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        db.insert_many(
            "t",
            vec![row![1i64, 10i64], row![2i64, 20i64], row![3i64, 30i64]],
        )
        .unwrap();
        let n = db
            .delete_where("t", &Expr::col("v").gt_eq(Expr::lit(20i64)))
            .unwrap();
        assert_eq!(n, 2);
        let rs = db.query_sql("SELECT COUNT(*) AS n FROM t").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn concurrent_readers() {
        use std::thread;
        let db = Database::new();
        db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY)")
            .unwrap();
        for i in 0..100 {
            db.insert("t", row![i as i64]).unwrap();
        }
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let db = db.clone();
                thread::spawn(move || {
                    let rs = db.query_sql("SELECT COUNT(*) AS n FROM t").unwrap();
                    rs.scalar().unwrap().as_int().unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 100);
        }
    }

    #[test]
    fn snapshot_pins_state_and_rejects_writes() {
        let db = Database::new();
        db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        db.insert("t", row![1i64, 10i64]).unwrap();
        let snap = db.catalog().snapshot();
        assert_eq!(snap.version_of("t"), Some(1));
        assert!(snap.catalog().is_frozen());

        // Live catalog moves on; the snapshot does not.
        db.insert("t", row![2i64, 20i64]).unwrap();
        db.execute_sql("UPDATE t SET v = 99 WHERE id = 1").unwrap();
        assert_eq!(db.catalog().table_len("t").unwrap(), 2);
        assert_eq!(snap.catalog().table_len("t").unwrap(), 1);
        let rs = snap
            .database()
            .query_sql("SELECT v FROM t WHERE id = 1")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(10)));
        assert_eq!(snap.catalog().table_version("t").unwrap(), 1);

        // Every mutation path is rejected on the frozen handle.
        let sdb = snap.database();
        assert!(sdb.is_snapshot());
        assert!(sdb.insert("t", row![3i64, 30i64]).is_err());
        assert!(sdb.execute_sql("INSERT INTO t VALUES (3, 30)").is_err());
        assert!(sdb.execute_sql("DELETE FROM t").is_err());
        assert!(sdb.execute_sql("CREATE TABLE u (x INT)").is_err());
        assert!(snap.catalog().drop_table("t").is_err());
        // ... and the live data is untouched by the attempts.
        assert_eq!(db.catalog().table_len("t").unwrap(), 2);
    }

    #[test]
    fn snapshot_is_a_consistent_cut_across_tables() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::thread;
        let db = Database::new();
        db.execute_sql("CREATE TABLE a (id INT PRIMARY KEY)")
            .unwrap();
        db.execute_sql("CREATE TABLE b (id INT PRIMARY KEY)")
            .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        // Writer invariant: a row lands in `b` strictly before its twin
        // lands in `a`, so in any atomic cut len(b) >= len(a).
        let writer = {
            let db = db.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    db.insert("b", row![i]).unwrap();
                    db.insert("a", row![i]).unwrap();
                    i += 1;
                }
                i
            })
        };
        for _ in 0..200 {
            let snap = db.catalog().snapshot();
            let a = snap.catalog().table_len("a").unwrap();
            // Deliberately read the tables in the hazardous order.
            let b = snap.catalog().table_len("b").unwrap();
            assert!(b >= a, "torn snapshot: len(a)={a} > len(b)={b}");
        }
        stop.store(true, Ordering::Relaxed);
        let n = writer.join().unwrap();
        assert!(n > 0, "writer made progress under snapshotting");
    }

    #[test]
    fn pinned_readers_keep_their_image_while_writers_proceed() {
        let c = Catalog::new();
        c.create_table(
            "t",
            Schema::new(vec![Column::new("x", DataType::Int)]),
            vec![],
        )
        .unwrap();
        c.with_table_mut("t", |t| t.insert(row![1i64]).unwrap())
            .unwrap();
        let pinned = c.pin_table("t").unwrap();
        assert_eq!(pinned.len(), 1);
        // COW: the write happens against a private clone because the pin
        // shares the image; the pin is unaffected.
        c.with_table_mut("t", |t| t.insert(row![2i64]).unwrap())
            .unwrap();
        assert_eq!(pinned.len(), 1);
        assert_eq!(pinned.version(), 1);
        assert_eq!(c.table_len("t").unwrap(), 2);
        assert_eq!(c.table_version("t").unwrap(), 2);
        // With the pin dropped, writes go back to mutating in place.
        drop(pinned);
        c.with_table_mut("t", |t| t.insert(row![3i64]).unwrap())
            .unwrap();
        assert_eq!(c.table_len("t").unwrap(), 3);
    }

    #[test]
    fn concurrent_writers_distinct_tables() {
        use std::thread;
        let db = Database::new();
        db.execute_sql("CREATE TABLE a (id INT PRIMARY KEY)")
            .unwrap();
        db.execute_sql("CREATE TABLE b (id INT PRIMARY KEY)")
            .unwrap();
        let mut handles = Vec::new();
        for (table, base) in [("a", 0i64), ("b", 1000i64)] {
            let db = db.clone();
            handles.push(thread::spawn(move || {
                for i in 0..200 {
                    db.insert(table, row![base + i]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.catalog().table_len("a").unwrap(), 200);
        assert_eq!(db.catalog().table_len("b").unwrap(), 200);
    }
}
