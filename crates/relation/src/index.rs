//! Secondary indexes.
//!
//! Two physical forms are provided:
//!
//! * [`IndexKind::Hash`] — equality lookups (`WHERE course_id = ?`), the
//!   workhorse for FlexRecs' compiled joins;
//! * [`IndexKind::BTree`] — equality plus range scans (`WHERE year >= 2008`),
//!   used by the planner/requirements services for term-range queries.
//!
//! Both map a (possibly composite) key — a `Vec<Value>` over the indexed
//! columns — to the set of matching [`RowId`]s. Indexes are maintained
//! eagerly by [`crate::table::Table`] on insert/update/delete.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use crate::row::{Row, RowId};
use crate::value::Value;

/// Composite index key.
pub type IndexKey = Vec<Value>;

/// Which physical structure backs an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Hash,
    BTree,
}

/// A secondary index over one or more columns of a table.
#[derive(Debug, Clone)]
pub struct Index {
    pub name: String,
    /// Column positions (in the owning table's schema) forming the key.
    pub columns: Vec<usize>,
    pub unique: bool,
    storage: IndexStorage,
}

#[derive(Debug, Clone)]
enum IndexStorage {
    Hash(HashMap<IndexKey, Vec<RowId>>),
    BTree(BTreeMap<IndexKey, Vec<RowId>>),
}

impl Index {
    pub fn new(
        name: impl Into<String>,
        columns: Vec<usize>,
        kind: IndexKind,
        unique: bool,
    ) -> Self {
        let storage = match kind {
            IndexKind::Hash => IndexStorage::Hash(HashMap::new()),
            IndexKind::BTree => IndexStorage::BTree(BTreeMap::new()),
        };
        Index {
            name: name.into(),
            columns,
            unique,
            storage,
        }
    }

    pub fn kind(&self) -> IndexKind {
        match self.storage {
            IndexStorage::Hash(_) => IndexKind::Hash,
            IndexStorage::BTree(_) => IndexKind::BTree,
        }
    }

    /// Extract this index's key from a full row.
    pub fn key_of(&self, row: &Row) -> IndexKey {
        self.columns.iter().map(|&i| row[i].clone()).collect()
    }

    /// True if inserting `key` would violate a unique constraint.
    pub fn would_conflict(&self, key: &IndexKey) -> bool {
        self.unique && self.get(key).is_some_and(|ids| !ids.is_empty())
    }

    /// Insert an entry.
    pub fn insert(&mut self, key: IndexKey, rid: RowId) {
        match &mut self.storage {
            IndexStorage::Hash(m) => m.entry(key).or_default().push(rid),
            IndexStorage::BTree(m) => m.entry(key).or_default().push(rid),
        }
    }

    /// Remove an entry (no-op if absent).
    pub fn remove(&mut self, key: &IndexKey, rid: RowId) {
        let bucket = match &mut self.storage {
            IndexStorage::Hash(m) => m.get_mut(key),
            IndexStorage::BTree(m) => m.get_mut(key),
        };
        if let Some(ids) = bucket {
            ids.retain(|&r| r != rid);
            if ids.is_empty() {
                match &mut self.storage {
                    IndexStorage::Hash(m) => {
                        m.remove(key);
                    }
                    IndexStorage::BTree(m) => {
                        m.remove(key);
                    }
                }
            }
        }
    }

    /// Equality lookup.
    pub fn get(&self, key: &IndexKey) -> Option<&[RowId]> {
        match &self.storage {
            IndexStorage::Hash(m) => m.get(key).map(|v| v.as_slice()),
            IndexStorage::BTree(m) => m.get(key).map(|v| v.as_slice()),
        }
    }

    /// Range scan (BTree only; yields nothing for hash indexes).
    ///
    /// Returns a lazy [`RangeIds`] iterator over the matching row ids, so
    /// the executor's access path streams ids straight off the tree
    /// instead of allocating a fresh `Vec<RowId>` per lookup.
    pub fn range<'a>(&'a self, lower: Bound<&IndexKey>, upper: Bound<&IndexKey>) -> RangeIds<'a> {
        let buckets = match &self.storage {
            IndexStorage::Hash(_) => None,
            IndexStorage::BTree(m) => Some(m.range::<IndexKey, _>((lower, upper))),
        };
        RangeIds {
            buckets,
            bucket: [].iter(),
        }
    }

    /// Number of distinct keys (used by the optimizer's selectivity guess).
    pub fn distinct_keys(&self) -> usize {
        match &self.storage {
            IndexStorage::Hash(m) => m.len(),
            IndexStorage::BTree(m) => m.len(),
        }
    }

    /// Total entries across all keys.
    pub fn entries(&self) -> usize {
        match &self.storage {
            IndexStorage::Hash(m) => m.values().map(Vec::len).sum(),
            IndexStorage::BTree(m) => m.values().map(Vec::len).sum(),
        }
    }
}

/// Lazy row-id stream produced by [`Index::range`]: walks the BTree's
/// key buckets in key order, yielding each bucket's ids in insertion
/// order. `buckets` is `None` for hash indexes (always empty).
pub struct RangeIds<'a> {
    buckets: Option<std::collections::btree_map::Range<'a, IndexKey, Vec<RowId>>>,
    bucket: std::slice::Iter<'a, RowId>,
}

impl<'a> Iterator for RangeIds<'a> {
    type Item = RowId;

    fn next(&mut self) -> Option<RowId> {
        loop {
            if let Some(&rid) = self.bucket.next() {
                return Some(rid);
            }
            let (_, ids) = self.buckets.as_mut()?.next()?;
            self.bucket = ids.iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: i64) -> IndexKey {
        vec![Value::Int(v)]
    }

    #[test]
    fn hash_index_insert_get_remove() {
        let mut idx = Index::new("i", vec![0], IndexKind::Hash, false);
        idx.insert(key(1), RowId(10));
        idx.insert(key(1), RowId(11));
        idx.insert(key(2), RowId(12));
        assert_eq!(idx.get(&key(1)).unwrap(), &[RowId(10), RowId(11)]);
        assert_eq!(idx.entries(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        idx.remove(&key(1), RowId(10));
        assert_eq!(idx.get(&key(1)).unwrap(), &[RowId(11)]);
        idx.remove(&key(1), RowId(11));
        assert!(idx.get(&key(1)).is_none());
    }

    #[test]
    fn btree_range_scan() {
        let mut idx = Index::new("i", vec![0], IndexKind::BTree, false);
        for v in 0..10 {
            idx.insert(key(v), RowId(v as u64));
        }
        let got: Vec<RowId> = idx
            .range(Bound::Included(&key(3)), Bound::Excluded(&key(7)))
            .collect();
        assert_eq!(got, vec![RowId(3), RowId(4), RowId(5), RowId(6)]);
    }

    #[test]
    fn btree_range_streams_multi_id_buckets() {
        let mut idx = Index::new("i", vec![0], IndexKind::BTree, false);
        idx.insert(key(1), RowId(10));
        idx.insert(key(1), RowId(11));
        idx.insert(key(2), RowId(12));
        let got: Vec<RowId> = idx.range(Bound::Unbounded, Bound::Unbounded).collect();
        assert_eq!(got, vec![RowId(10), RowId(11), RowId(12)]);
    }

    #[test]
    fn hash_range_is_empty() {
        let mut idx = Index::new("i", vec![0], IndexKind::Hash, false);
        idx.insert(key(1), RowId(1));
        assert!(idx
            .range(Bound::Unbounded, Bound::Unbounded)
            .next()
            .is_none());
    }

    #[test]
    fn unique_conflict_detection() {
        let mut idx = Index::new("u", vec![0], IndexKind::Hash, true);
        idx.insert(key(1), RowId(1));
        assert!(idx.would_conflict(&key(1)));
        assert!(!idx.would_conflict(&key(2)));
    }

    #[test]
    fn composite_keys() {
        let mut idx = Index::new("c", vec![0, 2], IndexKind::BTree, false);
        let row: Row = vec![Value::Int(1), Value::text("x"), Value::Int(2008)];
        let k = idx.key_of(&row);
        assert_eq!(k, vec![Value::Int(1), Value::Int(2008)]);
        idx.insert(k.clone(), RowId(5));
        assert_eq!(idx.get(&k).unwrap(), &[RowId(5)]);
    }
}
