//! Plan dependency extraction — what a plan actually *reads*.
//!
//! [`validate::provenance`](super::validate::provenance) answers "where
//! does each output column come from" for humans; this module answers the
//! machine-facing question result caches need: **which base tables, which
//! columns of them, and (when filters are analyzable) which key values
//! does this plan consult?** A cached result tagged with the extracted
//! [`PlanDeps`] can then test an incoming mutation against its dependency
//! set — a comment by a student the plan never filtered for provably
//! cannot change the result, so the cache entry survives the write.
//!
//! Everything here is conservative: any plan shape the analysis does not
//! understand degrades to "all columns, all keys" for the affected table,
//! which can only cause spurious invalidations, never a stale result.
//!
//! Key-constraint soundness: a `column = literal` / `column IN (...)`
//! constraint is attributed to a scan only when it provably gates every
//! row of that scan *before* any order/count-sensitive operator sees it —
//! i.e. it is the scan's own pushed-down filter, or a `Filter` node
//! separated from the scan only by other `Filter`s and `Sort`s (which
//! preserve the row set). A `Limit` (or aggregate, join, …) in between
//! makes the surviving row set depend on rows the filter later discards,
//! so constraints are not propagated through them. When the same table is
//! scanned more than once, a key constraint survives only if *every* scan
//! instance is constrained on the same column (value sets union).

use std::collections::{BTreeMap, BTreeSet};

use crate::catalog::Catalog;
use crate::expr::{BinOp, Expr};
use crate::plan::LogicalPlan;
use crate::schema::Schema;
use crate::value::Value;

/// Which columns of a table a plan reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnSet {
    /// Every column (or the analysis gave up).
    All,
    /// Only these columns (lowercase names).
    Named(BTreeSet<String>),
}

impl ColumnSet {
    fn union(self, other: ColumnSet) -> ColumnSet {
        match (self, other) {
            (ColumnSet::Named(mut a), ColumnSet::Named(b)) => {
                a.extend(b);
                ColumnSet::Named(a)
            }
            _ => ColumnSet::All,
        }
    }
}

/// An equality constraint over one column: the plan only consults rows
/// whose `column` value is in `values`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySet {
    /// Lowercase column name.
    pub column: String,
    pub values: BTreeSet<Value>,
}

/// Dependency footprint on one base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDeps {
    pub columns: ColumnSet,
    /// `Some` when every scan of the table is gated by an analyzable
    /// equality constraint on the same column.
    pub key: Option<KeySet>,
}

/// Dependency footprint of a whole plan: per lowercase table name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanDeps {
    pub tables: BTreeMap<String, TableDeps>,
}

impl PlanDeps {
    /// Table names, sorted (lowercase).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }
}

/// Per-scan footprint, merged into [`PlanDeps`] at the end.
struct ScanDep {
    table: String,
    columns: ColumnSet,
    key: Option<KeySet>,
}

/// Extract the dependency footprint of `plan`. Works on bound plans
/// (optimized or not); running it on the optimized plan sees pushed-down
/// scan filters and projections and therefore extracts tighter sets.
pub fn extract(plan: &LogicalPlan) -> PlanDeps {
    extract_in(plan, None)
}

/// [`extract`] with a catalog for full-schema resolution: a scan's pushed
/// filter is bound against the *full* table schema (the scan's `schema`
/// field is the post-projection output), so naming the columns such a
/// filter consults — and its key constraints under a projection — needs
/// the base schema. Without a catalog those cases degrade conservatively.
pub fn extract_in(plan: &LogicalPlan, catalog: Option<&Catalog>) -> PlanDeps {
    let mut scans = Vec::new();
    walk(plan, catalog, &mut scans);
    let mut deps = PlanDeps::default();
    for scan in scans {
        match deps.tables.remove(&scan.table) {
            None => {
                deps.tables.insert(
                    scan.table,
                    TableDeps {
                        columns: scan.columns,
                        key: scan.key,
                    },
                );
            }
            Some(prev) => {
                // Second scan of the same table: union columns; keys
                // survive only when both scans constrain the same column.
                let key = match (prev.key, scan.key) {
                    (Some(a), Some(mut b)) if a.column == b.column => {
                        let mut values = a.values;
                        values.append(&mut b.values);
                        Some(KeySet {
                            column: a.column,
                            values,
                        })
                    }
                    _ => None,
                };
                deps.tables.insert(
                    scan.table,
                    TableDeps {
                        columns: prev.columns.union(scan.columns),
                        key,
                    },
                );
            }
        }
    }
    deps
}

/// Recursive walk. `scans` accumulates one entry per scan instance.
fn walk(plan: &LogicalPlan, catalog: Option<&Catalog>, scans: &mut Vec<ScanDep>) {
    match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::Filter { .. } | LogicalPlan::Sort { .. } => {
            // Start of a potential filter→scan chain: collect predicates
            // down to the scan if the path stays row-set-preserving.
            walk_scan_chain(plan, catalog, &[], scans);
        }
        LogicalPlan::Project { input, .. } => walk(input, catalog, scans),
        LogicalPlan::Join { left, right, .. } => {
            walk(left, catalog, scans);
            walk(right, catalog, scans);
        }
        LogicalPlan::Aggregate { input, .. } => walk(input, catalog, scans),
        LogicalPlan::Limit { input, .. } => walk(input, catalog, scans),
        LogicalPlan::Values { .. } => {}
        LogicalPlan::Union { left, right } => {
            walk(left, catalog, scans);
            walk(right, catalog, scans);
        }
        LogicalPlan::Extend { input, related, .. } => {
            walk(input, catalog, scans);
            walk(related, catalog, scans);
        }
        LogicalPlan::Recommend {
            target, comparator, ..
        } => {
            walk(target, catalog, scans);
            walk(comparator, catalog, scans);
        }
    }
}

/// Follow a chain of row-set-preserving nodes (`Filter`, `Sort`) down to
/// a `Scan`, accumulating filter predicates that apply to every row the
/// scan emits. Any other node shape ends the chain and falls back to the
/// generic walk (predicates collected so far are discarded — they do not
/// provably gate the scan).
fn walk_scan_chain<'p>(
    plan: &'p LogicalPlan,
    catalog: Option<&Catalog>,
    pending: &[&'p Expr],
    scans: &mut Vec<ScanDep>,
) {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let mut preds = pending.to_vec();
            preds.push(predicate);
            walk_scan_chain(input, catalog, &preds, scans);
        }
        LogicalPlan::Sort { input, .. } => walk_scan_chain(input, catalog, pending, scans),
        LogicalPlan::Scan {
            table,
            projection,
            filter,
            schema,
            ..
        } => {
            scans.push(scan_dep(
                table, projection, filter, schema, catalog, pending,
            ));
        }
        other => {
            // Chain broken (Project/Join/Limit/...): predicates above this
            // node do not gate the scans below it row-for-row.
            walk(other, catalog, scans);
        }
    }
}

fn scan_dep(
    table: &str,
    projection: &Option<Vec<usize>>,
    filter: &Option<Expr>,
    output_schema: &Schema,
    catalog: Option<&Catalog>,
    above: &[&Expr],
) -> ScanDep {
    // `output_schema` is the scan's post-projection output (what gating
    // predicates above the scan are bound against); the scan's own pushed
    // filter is bound against the full base-table schema.
    let full_schema: Option<Schema> = if projection.is_none() {
        Some(output_schema.clone())
    } else {
        catalog.and_then(|c| c.table_schema(table).ok())
    };

    // Columns read: projected output columns plus everything the pushed
    // filter consults. `projection == None` means the full row is emitted.
    let columns = match projection {
        None => ColumnSet::All,
        Some(_) => {
            let mut named: BTreeSet<String> = output_schema
                .columns()
                .iter()
                .map(|c| c.name.to_ascii_lowercase())
                .collect();
            let mut resolved = true;
            if let Some(f) = filter {
                match &full_schema {
                    Some(full) => {
                        let mut used = Vec::new();
                        f.referenced_columns(&mut used);
                        for pos in used {
                            match full.columns().get(pos) {
                                Some(c) => {
                                    named.insert(c.name.to_ascii_lowercase());
                                }
                                None => resolved = false,
                            }
                        }
                    }
                    None => resolved = false,
                }
            }
            if resolved {
                ColumnSet::Named(named)
            } else {
                ColumnSet::All
            }
        }
    };

    let mut key: Option<KeySet> = None;
    let mut merge = |col: String, values: BTreeSet<Value>| match &mut key {
        None => {
            key = Some(KeySet {
                column: col,
                values,
            });
        }
        Some(k) if k.column == col => {
            // Two independent constraints on the same column: the row
            // must satisfy both, so the gating set is the intersection.
            k.values = k.values.intersection(&values).cloned().collect();
        }
        Some(_) => {
            // Constraints on different columns: keep the first (one key
            // column is all the delta test uses; extra constraints only
            // narrow further, so dropping them stays sound).
        }
    };

    // The scan's pushed filter gates every emitted row: full-schema
    // positions.
    if let (Some(f), Some(full)) = (filter, &full_schema) {
        for (pos, values) in equality_constraints(f) {
            if let Some(c) = full.columns().get(pos) {
                merge(c.name.to_ascii_lowercase(), values);
            }
        }
    }
    // Predicates gating the scan from above: output-schema positions.
    for pred in above {
        for (pos, values) in equality_constraints(pred) {
            if let Some(c) = output_schema.columns().get(pos) {
                merge(c.name.to_ascii_lowercase(), values);
            }
        }
    }

    ScanDep {
        table: table.to_ascii_lowercase(),
        columns,
        key,
    }
}

/// Extract `column = literal` / `column IN (literals)` constraints from
/// the AND-conjuncts of a bound predicate. Conjuncts that do not match
/// are ignored (they only narrow the row set further, which keeps the
/// extracted constraint sound). Returns (column position, value set).
pub fn equality_constraints(expr: &Expr) -> Vec<(usize, BTreeSet<Value>)> {
    let mut out = Vec::new();
    collect_conjuncts(expr, &mut out);
    out
}

fn collect_conjuncts(expr: &Expr, out: &mut Vec<(usize, BTreeSet<Value>)>) {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } => {
            let pair = match (left.as_ref(), right.as_ref()) {
                (Expr::Column(i), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(i)) => {
                    Some((*i, v.clone()))
                }
                _ => None,
            };
            if let Some((i, v)) = pair {
                out.push((i, BTreeSet::from([v])));
            }
        }
        Expr::InList {
            expr: inner,
            list,
            negated: false,
        } => {
            if let Expr::Column(i) = inner.as_ref() {
                let mut values = BTreeSet::new();
                for item in list {
                    match item {
                        Expr::Literal(v) => {
                            values.insert(v.clone());
                        }
                        _ => return, // non-literal member: give up on this conjunct
                    }
                }
                out.push((*i, values));
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use crate::schema::{Column, DataType};
    use crate::Database;

    fn campus() -> Database {
        let db = Database::new();
        db.execute_sql("CREATE TABLE Comments (CommentID INT PRIMARY KEY, SuID INT, CourseID INT, Rating FLOAT)")
            .unwrap();
        db.execute_sql("CREATE TABLE Courses (CourseID INT PRIMARY KEY, Title TEXT)")
            .unwrap();
        db
    }

    #[test]
    fn scan_filter_yields_key_constraint() {
        let db = campus();
        let plan = crate::sql::plan_query(
            "SELECT CourseID, Rating FROM Comments WHERE SuID = 7",
            &db.catalog(),
        )
        .unwrap();
        let deps = extract_in(&plan, Some(&db.catalog()));
        let t = deps.tables.get("comments").expect("comments dep");
        let key = t.key.as_ref().expect("key constraint");
        assert_eq!(key.column, "suid");
        assert_eq!(key.values, BTreeSet::from([Value::Int(7)]));
        // Without a catalog the projected scan cannot resolve its pushed
        // filter against the base schema and must degrade conservatively.
        let blind = extract(&plan);
        assert_eq!(blind.tables["comments"].columns, ColumnSet::All);
    }

    #[test]
    fn in_list_yields_value_set() {
        let db = campus();
        let plan = crate::sql::plan_query(
            "SELECT Rating FROM Comments WHERE SuID IN (1, 2, 3)",
            &db.catalog(),
        )
        .unwrap();
        let deps = extract_in(&plan, Some(&db.catalog()));
        let key = deps.tables["comments"].key.as_ref().expect("key");
        assert_eq!(key.column, "suid");
        assert_eq!(key.values.len(), 3);
    }

    #[test]
    fn join_breaks_key_chain_but_keeps_tables() {
        let db = campus();
        let plan = crate::sql::plan_query(
            "SELECT c.Title FROM Comments m JOIN Courses c ON m.CourseID = c.CourseID WHERE m.SuID = 7",
            &db.catalog(),
        )
        .unwrap();
        let deps = extract(&plan);
        assert!(deps.tables.contains_key("comments"));
        assert!(deps.tables.contains_key("courses"));
        // The WHERE sits above the join here (unless pushed into the
        // scan); either way courses must not inherit the suid key.
        assert!(deps.tables["courses"].key.is_none());
    }

    #[test]
    fn same_table_twice_unions_or_drops_keys() {
        let schema = crate::Schema::qualified(
            "t",
            vec![
                Column::new("id", DataType::Int),
                Column::new("v", DataType::Int),
            ],
        );
        let scan = |val: i64| LogicalPlan::Scan {
            table: "t".into(),
            alias: None,
            projection: None,
            filter: Some(Expr::col_idx(0).eq(Expr::lit(val))),
            schema: schema.clone(),
        };
        let both = LogicalPlan::Union {
            left: Box::new(scan(1)),
            right: Box::new(scan(2)),
        };
        let deps = extract(&both);
        let key = deps.tables["t"].key.as_ref().expect("unioned key");
        assert_eq!(key.values, BTreeSet::from([Value::Int(1), Value::Int(2)]));

        // One unconstrained scan poisons the key.
        let half = LogicalPlan::Union {
            left: Box::new(scan(1)),
            right: Box::new(LogicalPlan::Scan {
                table: "t".into(),
                alias: None,
                projection: None,
                filter: None,
                schema: schema.clone(),
            }),
        };
        assert!(extract(&half).tables["t"].key.is_none());
    }

    #[test]
    fn limit_between_filter_and_scan_discards_constraint() {
        let schema = crate::Schema::qualified("t", vec![Column::new("id", DataType::Int)]);
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Limit {
                input: Box::new(LogicalPlan::Scan {
                    table: "t".into(),
                    alias: None,
                    projection: None,
                    filter: None,
                    schema,
                }),
                limit: Some(5),
                offset: 0,
            }),
            predicate: Expr::col_idx(0).eq(Expr::lit(1i64)),
        };
        let deps = extract(&plan);
        assert!(deps.tables["t"].key.is_none());
    }

    #[test]
    fn builder_plans_extract_too() {
        let db = campus();
        let plan = PlanBuilder::scan(&db.catalog(), "Comments")
            .unwrap()
            .filter(Expr::col("SuID").eq(Expr::lit(9i64)))
            .unwrap()
            .build();
        let optimized = crate::plan::optimizer::optimize(plan);
        let deps = extract(&optimized);
        let key = deps.tables["comments"].key.as_ref().expect("key");
        assert_eq!(key.column, "suid");
    }
}
