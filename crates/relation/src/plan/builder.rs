//! Fluent logical-plan builder.
//!
//! This is the programmatic query API used throughout the CourseRank layers
//! (and by FlexRecs' direct executor). Expressions are written with *named*
//! column references and bound against the evolving schema as operators are
//! stacked.
//!
//! ```
//! use cr_relation::{Database, PlanBuilder, Expr};
//! use cr_relation::plan::{AggExpr, AggFn};
//!
//! let db = Database::new();
//! db.execute_sql("CREATE TABLE c (id INT PRIMARY KEY, dep TEXT, units INT)").unwrap();
//! db.execute_sql("INSERT INTO c VALUES (1,'CS',5),(2,'CS',3),(3,'HIST',4)").unwrap();
//!
//! let plan = PlanBuilder::scan(&db.catalog(), "c").unwrap()
//!     .filter(Expr::col("units").gt_eq(Expr::lit(3i64))).unwrap()
//!     .aggregate(vec![Expr::col("dep")], vec![
//!         AggExpr { func: AggFn::CountStar, arg: Expr::lit(1i64), distinct: false, name: "n".into() },
//!     ]).unwrap()
//!     .sort_by("n", true).unwrap()
//!     .build();
//! let rs = db.run_plan(&plan).unwrap();
//! assert_eq!(rs.rows.len(), 2);
//! ```

use crate::catalog::Catalog;
use crate::error::{RelError, RelResult};
use crate::expr::Expr;
use crate::row::Row;
use crate::schema::{Column, DataType, Schema};

#[cfg_attr(not(test), allow(unused_imports))]
use super::logical::AggFn;
use super::logical::{AggExpr, JoinKind, LogicalPlan, SortKey};
use super::rec::{RecAggPlan, RecSpec};

/// Fluent builder over [`LogicalPlan`].
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: LogicalPlan,
}

impl PlanBuilder {
    /// Start from a table scan.
    pub fn scan(catalog: &Catalog, table: &str) -> RelResult<Self> {
        Self::scan_as(catalog, table, None)
    }

    /// Start from an aliased table scan (needed for self-joins, which
    /// FlexRecs' collaborative-filtering workflows compile into).
    pub fn scan_as(catalog: &Catalog, table: &str, alias: Option<&str>) -> RelResult<Self> {
        let schema = catalog.table_schema(table)?;
        let schema = match alias {
            Some(a) => schema.with_qualifier(a),
            None => schema,
        };
        Ok(PlanBuilder {
            plan: LogicalPlan::Scan {
                table: table.to_owned(),
                alias: alias.map(str::to_owned),
                projection: None,
                filter: None,
                schema,
            },
        })
    }

    /// Start from literal rows.
    pub fn values(schema: Schema, rows: Vec<Row>) -> RelResult<Self> {
        for r in &rows {
            if r.len() != schema.len() {
                return Err(RelError::Arity {
                    expected: schema.len(),
                    found: r.len(),
                });
            }
        }
        Ok(PlanBuilder {
            plan: LogicalPlan::Values { schema, rows },
        })
    }

    /// Wrap an existing plan.
    pub fn from_plan(plan: LogicalPlan) -> Self {
        PlanBuilder { plan }
    }

    /// Current output schema.
    pub fn schema(&self) -> &Schema {
        self.plan.schema()
    }

    /// Add a filter; `predicate` may use column names.
    pub fn filter(self, predicate: Expr) -> RelResult<Self> {
        let bound = predicate.bind(self.plan.schema())?;
        Ok(PlanBuilder {
            plan: LogicalPlan::Filter {
                input: Box::new(self.plan),
                predicate: bound,
            },
        })
    }

    /// Project named expressions. Output column types are inferred
    /// best-effort (column refs keep their type; everything else defaults
    /// by shape).
    pub fn project(self, exprs: Vec<(Expr, &str)>) -> RelResult<Self> {
        let input_schema = self.plan.schema().clone();
        let mut bound = Vec::with_capacity(exprs.len());
        let mut schema = Schema::default();
        for (e, name) in exprs {
            let be = e.bind(&input_schema)?;
            let dt = infer_expr_type(&be, &input_schema);
            schema.push(Column::new(name, dt), None);
            bound.push((be, name.to_owned()));
        }
        Ok(PlanBuilder {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                exprs: bound,
                schema,
            },
        })
    }

    /// Keep the named columns (a positional projection that preserves
    /// qualifiers and types exactly).
    pub fn select_columns(self, names: &[&str]) -> RelResult<Self> {
        let input_schema = self.plan.schema().clone();
        let mut exprs = Vec::with_capacity(names.len());
        let mut schema = Schema::default();
        for name in names {
            let (q, n) = match name.split_once('.') {
                Some((q, n)) => (Some(q), n),
                None => (None, *name),
            };
            let idx = input_schema.resolve(q, n)?;
            let col = input_schema.column(idx).clone();
            schema.push(col, input_schema.qualifier(idx).map(str::to_owned));
            exprs.push((Expr::Column(idx), n.to_owned()));
        }
        Ok(PlanBuilder {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                exprs,
                schema,
            },
        })
    }

    /// Join with another plan. `on` may reference columns from both sides
    /// by (qualified) name; it is bound against the concatenated schema.
    pub fn join(self, right: PlanBuilder, kind: JoinKind, on: Expr) -> RelResult<Self> {
        let schema = self.plan.schema().join(right.plan.schema());
        let bound = on.bind(&schema)?;
        Ok(PlanBuilder {
            plan: LogicalPlan::Join {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
                kind,
                on: bound,
                schema,
            },
        })
    }

    /// Convenience equi-join on `left_col = right_col`.
    pub fn join_on(
        self,
        right: PlanBuilder,
        kind: JoinKind,
        left_col: &str,
        right_col: &str,
    ) -> RelResult<Self> {
        let on = Expr::col(left_col).eq(Expr::col(right_col));
        self.join(right, kind, on)
    }

    /// Group-by + aggregates. Group expressions and aggregate arguments may
    /// use names. Output schema: group columns (named after their source
    /// where possible) followed by aggregate outputs.
    pub fn aggregate(self, group_by: Vec<Expr>, aggs: Vec<AggExpr>) -> RelResult<Self> {
        let input_schema = self.plan.schema().clone();
        let mut schema = Schema::default();
        let mut bound_groups = Vec::with_capacity(group_by.len());
        for (i, g) in group_by.into_iter().enumerate() {
            let bg = g.bind(&input_schema)?;
            let (name, dt, qual) = match &bg {
                Expr::Column(idx) => (
                    input_schema.column(*idx).name.clone(),
                    input_schema.column(*idx).data_type,
                    input_schema.qualifier(*idx).map(str::to_owned),
                ),
                other => (
                    format!("group_{i}"),
                    infer_expr_type(other, &input_schema),
                    None,
                ),
            };
            schema.push(Column::new(name, dt), qual);
            bound_groups.push(bg);
        }
        let mut bound_aggs = Vec::with_capacity(aggs.len());
        for a in aggs {
            let arg = a.arg.bind(&input_schema)?;
            let in_dt = infer_expr_type(&arg, &input_schema);
            schema.push(Column::new(&a.name, a.func.output_type(in_dt)), None);
            bound_aggs.push(AggExpr {
                func: a.func,
                arg,
                distinct: a.distinct,
                name: a.name,
            });
        }
        Ok(PlanBuilder {
            plan: LogicalPlan::Aggregate {
                input: Box::new(self.plan),
                group_by: bound_groups,
                aggs: bound_aggs,
                schema,
            },
        })
    }

    /// Sort by expressions.
    pub fn sort(self, keys: Vec<(Expr, bool)>) -> RelResult<Self> {
        let schema = self.plan.schema().clone();
        let keys = keys
            .into_iter()
            .map(|(e, desc)| {
                Ok(SortKey {
                    expr: e.bind(&schema)?,
                    desc,
                })
            })
            .collect::<RelResult<Vec<_>>>()?;
        Ok(PlanBuilder {
            plan: LogicalPlan::Sort {
                input: Box::new(self.plan),
                keys,
            },
        })
    }

    /// Sort by a single named column.
    pub fn sort_by(self, column: &str, desc: bool) -> RelResult<Self> {
        self.sort(vec![(Expr::col(column), desc)])
    }

    /// Limit (and optionally offset).
    pub fn limit(self, limit: usize) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Limit {
                input: Box::new(self.plan),
                limit: Some(limit),
                offset: 0,
            },
        }
    }

    /// Limit with offset.
    pub fn limit_offset(self, limit: Option<usize>, offset: usize) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Limit {
                input: Box::new(self.plan),
                limit,
                offset,
            },
        }
    }

    /// The FlexRecs ε operator: append a set/ratings attribute built from
    /// `related`, whose rows must be `[fk, key]` (`rating = false`) or
    /// `[fk, key, rating]` (`rating = true`). `key_col` names the input
    /// column the related `fk` matches.
    pub fn extend(
        self,
        related: PlanBuilder,
        key_col: &str,
        rating: bool,
        as_name: &str,
    ) -> RelResult<Self> {
        let (q, n) = match key_col.split_once('.') {
            Some((q, n)) => (Some(q), n),
            None => (None, key_col),
        };
        let key_idx = self.plan.schema().resolve(q, n)?;
        let want = if rating { 3 } else { 2 };
        if related.plan.schema().len() != want {
            return Err(RelError::Invalid(format!(
                "extend related side must have {want} columns (fk, key{}), got {}",
                if rating { ", rating" } else { "" },
                related.plan.schema().len()
            )));
        }
        let mut schema = self.plan.schema().clone();
        let dt = if rating {
            DataType::Ratings
        } else {
            DataType::Set
        };
        schema.push(Column::new(as_name, dt), None);
        Ok(PlanBuilder {
            plan: LogicalPlan::Extend {
                input: Box::new(self.plan),
                related: Box::new(related.plan),
                key_col: key_idx,
                rating,
                as_name: as_name.to_owned(),
                schema,
            },
        })
    }

    /// The FlexRecs ▷ operator: score this plan's rows (the targets)
    /// against `comparator`'s rows and append a Float score column. The
    /// spec's column positions must already be resolved against the two
    /// input schemas.
    pub fn recommend(self, comparator: PlanBuilder, spec: RecSpec) -> RelResult<Self> {
        let t_len = self.plan.schema().len();
        let c_len = comparator.plan.schema().len();
        let check = |col: usize, len: usize, what: &str| {
            if col >= len {
                Err(RelError::Invalid(format!(
                    "recommend {what} column #{col} out of range (width {len})"
                )))
            } else {
                Ok(())
            }
        };
        check(spec.target_col, t_len, "target")?;
        check(spec.comparator_col, c_len, "comparator")?;
        if let RecAggPlan::WeightedAvg { weight_col } = spec.agg {
            check(weight_col, c_len, "weight")?;
        }
        if let Some((t, c)) = spec.exclude_seen {
            check(t, t_len, "exclude_seen target")?;
            check(c, c_len, "exclude_seen comparator")?;
        }
        let mut schema = self.plan.schema().clone();
        schema.push(Column::new(&spec.score_name, DataType::Float), None);
        Ok(PlanBuilder {
            plan: LogicalPlan::Recommend {
                target: Box::new(self.plan),
                comparator: Box::new(comparator.plan),
                spec,
                schema,
            },
        })
    }

    /// Bag union with a compatible plan.
    pub fn union(self, other: PlanBuilder) -> RelResult<Self> {
        let l = self.plan.schema();
        let r = other.plan.schema();
        if l.len() != r.len() {
            return Err(RelError::Invalid(format!(
                "UNION arity mismatch: {} vs {}",
                l.len(),
                r.len()
            )));
        }
        Ok(PlanBuilder {
            plan: LogicalPlan::Union {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
            },
        })
    }

    /// Finish, returning the plan.
    pub fn build(self) -> LogicalPlan {
        self.plan
    }
}

/// Best-effort static type inference for projected expressions.
pub fn infer_expr_type(e: &Expr, schema: &Schema) -> DataType {
    use crate::expr::{BinOp, ScalarFn};
    match e {
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Text),
        Expr::Column(i) => schema.column(*i).data_type,
        Expr::ColumnName { .. } => DataType::Text,
        Expr::Binary { op, left, right } => {
            if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                DataType::Bool
            } else {
                let l = infer_expr_type(left, schema);
                let r = infer_expr_type(right, schema);
                if l == DataType::Text || r == DataType::Text {
                    DataType::Text
                } else if l == DataType::Float || r == DataType::Float {
                    DataType::Float
                } else {
                    l
                }
            }
        }
        Expr::Not(_)
        | Expr::IsNull { .. }
        | Expr::Like { .. }
        | Expr::InList { .. }
        | Expr::Between { .. } => DataType::Bool,
        Expr::Neg(inner) => infer_expr_type(inner, schema),
        Expr::Func { func, args } => match func {
            ScalarFn::Lower | ScalarFn::Upper | ScalarFn::Concat | ScalarFn::Substr => {
                DataType::Text
            }
            ScalarFn::Length => DataType::Int,
            ScalarFn::Round | ScalarFn::Sqrt | ScalarFn::Pow | ScalarFn::Ln | ScalarFn::Exp => {
                DataType::Float
            }
            ScalarFn::Abs | ScalarFn::Coalesce => args
                .first()
                .map(|a| infer_expr_type(a, schema))
                .unwrap_or(DataType::Float),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::row::row;
    use crate::schema::{Column, DataType};

    fn setup() -> Catalog {
        let catalog = Catalog::new();
        catalog
            .create_table(
                "courses",
                Schema::qualified(
                    "courses",
                    vec![
                        Column::not_null("id", DataType::Int),
                        Column::new("dep", DataType::Text),
                        Column::new("units", DataType::Int),
                    ],
                ),
                vec![0],
            )
            .unwrap();
        catalog
            .with_table_mut("courses", |t| {
                t.insert(row![1i64, "CS", 5i64])?;
                t.insert(row![2i64, "CS", 3i64])?;
                t.insert(row![3i64, "HIST", 4i64])
            })
            .unwrap()
            .unwrap();
        catalog
    }

    #[test]
    fn scan_filter_project_shapes_schema() {
        let c = setup();
        let b = PlanBuilder::scan(&c, "courses")
            .unwrap()
            .filter(Expr::col("units").gt(Expr::lit(3i64)))
            .unwrap()
            .project(vec![(Expr::col("dep"), "department")])
            .unwrap();
        assert_eq!(b.schema().len(), 1);
        assert_eq!(b.schema().column(0).name, "department");
        assert_eq!(b.schema().column(0).data_type, DataType::Text);
    }

    #[test]
    fn unknown_table_errors() {
        let c = setup();
        assert!(matches!(
            PlanBuilder::scan(&c, "nope"),
            Err(RelError::UnknownTable(_))
        ));
    }

    #[test]
    fn unknown_column_in_filter_errors() {
        let c = setup();
        let r = PlanBuilder::scan(&c, "courses")
            .unwrap()
            .filter(Expr::col("nope").eq(Expr::lit(1i64)));
        assert!(matches!(r, Err(RelError::UnknownColumn(_))));
    }

    #[test]
    fn self_join_via_alias() {
        let c = setup();
        let left = PlanBuilder::scan_as(&c, "courses", Some("a")).unwrap();
        let right = PlanBuilder::scan_as(&c, "courses", Some("b")).unwrap();
        let joined = left
            .join(
                right,
                JoinKind::Inner,
                Expr::col("a.dep").eq(Expr::col("b.dep")),
            )
            .unwrap();
        assert_eq!(joined.schema().len(), 6);
    }

    #[test]
    fn aggregate_schema_names_groups() {
        let c = setup();
        let b = PlanBuilder::scan(&c, "courses")
            .unwrap()
            .aggregate(
                vec![Expr::col("dep")],
                vec![
                    AggExpr {
                        func: AggFn::Sum,
                        arg: Expr::col("units"),
                        distinct: false,
                        name: "total_units".into(),
                    },
                    AggExpr {
                        func: AggFn::Avg,
                        arg: Expr::col("units"),
                        distinct: false,
                        name: "avg_units".into(),
                    },
                ],
            )
            .unwrap();
        let s = b.schema();
        assert_eq!(s.column(0).name, "dep");
        assert_eq!(s.column(1).name, "total_units");
        assert_eq!(s.column(1).data_type, DataType::Int);
        assert_eq!(s.column(2).data_type, DataType::Float);
    }

    #[test]
    fn union_arity_checked() {
        let c = setup();
        let a = PlanBuilder::scan(&c, "courses").unwrap();
        let b = PlanBuilder::scan(&c, "courses")
            .unwrap()
            .select_columns(&["id"])
            .unwrap();
        assert!(a.union(b).is_err());
    }

    #[test]
    fn values_arity_checked() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        assert!(PlanBuilder::values(schema, vec![row![1i64, 2i64]]).is_err());
    }

    #[test]
    fn select_columns_preserves_qualifiers() {
        let c = setup();
        let b = PlanBuilder::scan(&c, "courses")
            .unwrap()
            .select_columns(&["courses.units", "dep"])
            .unwrap();
        assert_eq!(b.schema().column(0).name, "units");
        assert_eq!(b.schema().qualifier(0), Some("courses"));
    }
}
