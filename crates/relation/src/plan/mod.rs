//! Logical query plans.
//!
//! A [`LogicalPlan`] is a tree of relational operators with **bound**
//! expressions (positional column references). Plans are produced either by
//! the [`PlanBuilder`] (programmatic API — what FlexRecs' direct executor
//! uses) or by the SQL binder, then rewritten by the [`optimizer`] and
//! executed by [`crate::exec`].

mod builder;
pub mod deps;
pub mod flow;
mod logical;
pub mod optimizer;
pub mod rec;
pub mod validate;

pub use builder::{infer_expr_type, PlanBuilder};
pub use deps::{ColumnSet, KeySet, PlanDeps, TableDeps};
pub use flow::{
    check_disclosure, flow_code_table, gate_decision, ColumnPolicy, ColumnRole, FlowPolicy,
    GateDecision, Principal, Sensitivity, TablePolicy,
};
pub use logical::{AggExpr, AggFn, JoinKind, LogicalPlan, SortKey};
pub use rec::{RecAggPlan, RecMethod, RecSpec};
pub use validate::{analyze, provenance, Diagnostic, Severity, ValidationReport};
