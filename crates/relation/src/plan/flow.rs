//! Information-flow analysis over [`LogicalPlan`]s: sensitivity labels,
//! declassification proofs, and principal-aware disclosure checking.
//!
//! The paper's §2.2 makes privacy a first-class concern — plan sharing is
//! opt-out per student, and grade distributions are suppressed below a
//! class-size threshold ("we do not show distributions for classes with
//! very few students"). Enforcing those rules only in the service layer
//! leaves every other entry point (ad-hoc SQL, FlexRecs workflows,
//! cr-server sessions) free to scan the underlying tables. This module
//! makes the policies *provable at compile time*: every column carries a
//! sensitivity label, a single tree walk propagates labels through every
//! plan operator (including implicit flows through predicates), a small
//! set of declassification rules model the paper's two policies, and
//! [`check_disclosure`] reports any flow that exceeds a principal's
//! clearance as a stable machine-readable P-code in the same
//! [`Diagnostic`] format as the structural validator (PR 5).
//!
//! # The lattice
//!
//! ```text
//! Public < Community < PerUser < Restricted
//! ```
//!
//! * `Public` — catalog data (courses, departments, offerings);
//! * `Community` — campus-visible contributions (comments, ratings,
//!   enrollment counts *after* k-declassification);
//! * `PerUser` — data owned by one student (grades, GPA, plan rows);
//!   visible to its owner, to staff, and — for gated columns — to the
//!   community when the owner's sharing gate is open;
//! * `Restricted` — operator-only telemetry that embeds query text
//!   (`cr_stat_traces`, `cr_stat_slow_queries`).
//!
//! Labels join by `max`; a derived value is as sensitive as the most
//! sensitive input that influenced it. Implicit flows are tracked as a
//! context label: a predicate over sensitive data taints every row that
//! survives it, even if no sensitive column reaches the output.
//!
//! # Declassification rules (proof obligations in DESIGN.md §15)
//!
//! 1. **Self-access**: a conjunct `owner_col = <principal id>` lowers the
//!    owning table's `PerUser` cells to `Community` — you may always see
//!    your own rows.
//! 2. **Opt-out gate**: a conjunct checking an [`ColumnRole::OptOutGate`]
//!    column (`SharePlans = TRUE`) lowers *gated* cells to `Community`
//!    — the paper's "one can opt out of sharing", inverted into a proof
//!    that the plan only reads sharers' rows. Faculty and anonymous
//!    principals do not benefit (the paper's visibility matrix).
//! 3. **k-aggregation**: an aggregate over `PerUser` data is still
//!    `PerUser` but *guardable*; a downstream conjunct `count >= k` with
//!    `k` at or above the policy threshold lowers the aggregate's cells
//!    to `Community` — the paper's small-class suppression. A guard
//!    counting rows rather than `COUNT(DISTINCT owner)` earns a P101
//!    warning (rows may overcount per owner).
//! 4. **Recommendation scores**: the ▷ operator's appended score is an
//!    aggregate similarity over the whole comparator set; comparator-side
//!    `PerUser` data declassifies to `Community` through it (the system's
//!    core function — recommendations derived from everyone's data —
//!    while `Restricted` never launders).
//!
//! The pass is deliberately *sound-ish*, not complete: gate and owner
//! declassifications apply to all in-scope cells of the relevant origin
//! without proving the join topology links them row-by-row. DESIGN.md
//! §15 lists these obligations explicitly.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::catalog::Catalog;
use crate::expr::{BinOp, Expr};
use crate::schema::Schema;
use crate::value::Value;

use super::logical::{AggFn, LogicalPlan};
use super::validate::{Diagnostic, ValidationReport};

// ---------------------------------------------------------------------------
// Diagnostic codes
// ---------------------------------------------------------------------------

/// Direct disclosure: an output column's label exceeds the principal's
/// clearance.
pub const P_DIRECT: &str = "P001";
/// Implicit flow: a filter/join predicate over data above the principal's
/// clearance selects the output rows.
pub const P_IMPLICIT: &str = "P002";
/// Aggregate over per-user data reaches the output without a k-threshold
/// guard (or with one below the policy threshold).
pub const P_AGG_BELOW_K: &str = "P003";
/// Opt-out bypass: a sharing-gated column is disclosed without checking
/// the owner's gate.
pub const P_OPTOUT_BYPASS: &str = "P004";
/// A `Restricted` source (operator telemetry) is scanned by a principal
/// below `Restricted` clearance.
pub const P_RESTRICTED_SOURCE: &str = "P005";
/// Warning: k-guard counts rows, not distinct owners — the threshold may
/// be satisfied by fewer than k students.
pub const P_WEAK_GUARD: &str = "P101";

/// The flow-analysis code table: `(code, short description)`. Rendered by
/// `crlint --codes` alongside the structural E/W table.
pub fn flow_code_table() -> &'static [(&'static str, &'static str)] {
    &[
        (P_DIRECT, "direct disclosure above principal clearance"),
        (
            P_IMPLICIT,
            "implicit flow via predicate over sensitive data",
        ),
        (
            P_AGG_BELOW_K,
            "aggregate below k-threshold (missing/low guard)",
        ),
        (P_OPTOUT_BYPASS, "opt-out gate bypass on shared-plans data"),
        (P_RESTRICTED_SOURCE, "restricted telemetry source scanned"),
        (P_WEAK_GUARD, "k-guard counts rows, not distinct owners"),
    ]
}

/// Default k-anonymity threshold (the paper suppresses distributions for
/// classes with fewer than 5 students).
pub const DEFAULT_K: i64 = 5;

// ---------------------------------------------------------------------------
// Lattice and principals
// ---------------------------------------------------------------------------

/// The sensitivity lattice, ordered `Public < Community < PerUser <
/// Restricted`; `max` is the lattice join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Sensitivity {
    #[default]
    Public,
    Community,
    PerUser,
    Restricted,
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sensitivity::Public => write!(f, "public"),
            Sensitivity::Community => write!(f, "community"),
            Sensitivity::PerUser => write!(f, "per-user"),
            Sensitivity::Restricted => write!(f, "restricted"),
        }
    }
}

/// Who is asking. Carried by cr-server sessions (the Hello handshake),
/// `crlint --principal`, and the strategies registry (define-time lint
/// uses the template student).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Principal {
    /// No authenticated identity: sees `Public` only.
    Anonymous,
    /// A student; `Some(id)` is a concrete session, `None` is the
    /// *template* student used at workflow define time (any owner-equality
    /// literal counts as self-access, because the registry substitutes the
    /// session's own id for the placeholder at select time).
    Student(Option<i64>),
    /// Faculty see community data but nothing student-specific — they do
    /// not benefit from sharing gates (the paper's visibility matrix).
    Faculty,
    /// Advisors/operators: full clearance.
    Staff,
    Admin,
}

impl Principal {
    /// Highest label this principal may receive.
    pub fn clearance(&self) -> Sensitivity {
        match self {
            Principal::Anonymous => Sensitivity::Public,
            Principal::Student(_) | Principal::Faculty => Sensitivity::Community,
            Principal::Staff | Principal::Admin => Sensitivity::Restricted,
        }
    }

    /// Does an `owner_col = lit` conjunct count as self-access?
    fn owns(&self, id: i64) -> bool {
        match self {
            Principal::Student(Some(me)) => *me == id,
            // Template mode: the concrete id is substituted per session.
            Principal::Student(None) => true,
            _ => false,
        }
    }

    /// May this principal see gated data once the sharing gate is checked?
    /// Faculty and anonymous users may not (role matrix of §2.2).
    fn benefits_from_gates(&self) -> bool {
        matches!(
            self,
            Principal::Student(_) | Principal::Staff | Principal::Admin
        )
    }

    /// Parse `"staff"`, `"student"`, `"student:444"`, `"faculty"`,
    /// `"admin"`, `"anonymous"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Principal> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "anonymous" | "anon" => Some(Principal::Anonymous),
            "student" => Some(Principal::Student(None)),
            "faculty" => Some(Principal::Faculty),
            "staff" => Some(Principal::Staff),
            "admin" => Some(Principal::Admin),
            _ => match s.strip_prefix("student:") {
                Some(id) => id.parse::<i64>().ok().map(|i| Principal::Student(Some(i))),
                None => None,
            },
        }
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Principal::Anonymous => write!(f, "anonymous"),
            Principal::Student(None) => write!(f, "student"),
            Principal::Student(Some(id)) => write!(f, "student:{id}"),
            Principal::Faculty => write!(f, "faculty"),
            Principal::Staff => write!(f, "staff"),
            Principal::Admin => write!(f, "admin"),
        }
    }
}

/// Outcome of the gated-visibility decision (the flow-derived form of the
/// legacy `Privacy::can_view_plans` matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    Allow,
    /// The owner's sharing gate is closed.
    DeniedOptOut,
    /// The principal's role never benefits from sharing gates.
    DeniedRole,
}

/// Row-level twin of the static gate rule: may `principal` see a gated
/// row owned by `owner` whose sharing gate is `gate_open`? Self-access
/// and full clearance always allow; gate-benefiting roles need the gate;
/// everyone else is denied by role.
pub fn gate_decision(principal: &Principal, owner: i64, gate_open: bool) -> GateDecision {
    if principal.owns(owner) || principal.clearance() >= Sensitivity::Restricted {
        return GateDecision::Allow;
    }
    if !principal.benefits_from_gates() {
        return GateDecision::DeniedRole;
    }
    if gate_open {
        GateDecision::Allow
    } else {
        GateDecision::DeniedOptOut
    }
}

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

/// What a column *is* to the policy machinery, beyond its label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnRole {
    #[default]
    None,
    /// Identifies the owning user; equality with the principal's id is the
    /// self-access declassifier.
    Owner,
    /// A boolean opt-out gate (`SharePlans`); checking it declassifies the
    /// table's gated cells.
    OptOutGate,
}

/// Per-column policy: a label, an optional role, and whether visibility is
/// gated by the table's opt-out column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnPolicy {
    pub label: Sensitivity,
    pub role: ColumnRole,
    pub gated: bool,
}

impl Default for ColumnPolicy {
    fn default() -> Self {
        ColumnPolicy {
            label: Sensitivity::Public,
            role: ColumnRole::None,
            gated: false,
        }
    }
}

/// Per-table policy: a default label plus per-column overrides (looked up
/// case-insensitively). Tables without a registered policy are `Public`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TablePolicy {
    pub default_label: Sensitivity,
    columns: BTreeMap<String, ColumnPolicy>,
}

impl TablePolicy {
    pub fn new(default_label: Sensitivity) -> Self {
        TablePolicy {
            default_label,
            columns: BTreeMap::new(),
        }
    }

    /// Set a column's label.
    pub fn column(mut self, name: &str, label: Sensitivity) -> Self {
        self.columns
            .entry(name.to_ascii_lowercase())
            .or_default()
            .label = label;
        self
    }

    /// Mark a column as the owner id (and give it a label).
    pub fn owner(mut self, name: &str, label: Sensitivity) -> Self {
        let c = self.columns.entry(name.to_ascii_lowercase()).or_default();
        c.label = label;
        c.role = ColumnRole::Owner;
        self
    }

    /// Mark a column as the opt-out gate (and give it a label).
    pub fn gate(mut self, name: &str, label: Sensitivity) -> Self {
        let c = self.columns.entry(name.to_ascii_lowercase()).or_default();
        c.label = label;
        c.role = ColumnRole::OptOutGate;
        self
    }

    /// A gated column: `PerUser` unless the sharing gate is proven checked,
    /// in which case it declassifies to `Community`.
    pub fn gated(mut self, name: &str) -> Self {
        let c = self.columns.entry(name.to_ascii_lowercase()).or_default();
        c.label = Sensitivity::PerUser;
        c.gated = true;
        self
    }

    /// The effective policy for one column.
    pub fn column_policy(&self, name: &str) -> ColumnPolicy {
        match self.columns.get(&name.to_ascii_lowercase()) {
            Some(c) => *c,
            None => ColumnPolicy {
                label: self.default_label,
                role: ColumnRole::None,
                gated: false,
            },
        }
    }

    /// Highest label any column of this table can carry.
    pub fn max_label(&self) -> Sensitivity {
        self.columns
            .values()
            .map(|c| c.label)
            .chain(std::iter::once(self.default_label))
            .max()
            .unwrap_or(self.default_label)
    }
}

/// The catalog-wide flow policy: the k-anonymity threshold plus the table
/// registry. Stored `Arc`-shared inside [`Catalog`] so snapshots keep the
/// labels of the live catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowPolicy {
    /// Minimum distinct-owner count before an aggregate over `PerUser`
    /// data declassifies (the paper's small-class threshold).
    pub k: i64,
    tables: BTreeMap<String, TablePolicy>,
}

impl Default for FlowPolicy {
    fn default() -> Self {
        FlowPolicy {
            k: DEFAULT_K,
            tables: BTreeMap::new(),
        }
    }
}

impl FlowPolicy {
    pub fn set_table(&mut self, table: &str, policy: TablePolicy) {
        self.tables.insert(table.to_ascii_lowercase(), policy);
    }

    pub fn table(&self, table: &str) -> Option<&TablePolicy> {
        self.tables.get(&table.to_ascii_lowercase())
    }

    /// Names of all tables with a registered policy (lowercase, sorted).
    pub fn labeled_tables(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

struct FMetrics {
    checks: Arc<cr_obs::Counter>,
    denials: Arc<cr_obs::Counter>,
    warnings: Arc<cr_obs::Counter>,
}

fn fmetrics() -> &'static FMetrics {
    static M: OnceLock<FMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = cr_obs::Registry::global();
        FMetrics {
            checks: r.counter("plan.flow.checks"),
            denials: r.counter("plan.flow.denials"),
            warnings: r.counter("plan.flow.warnings"),
        }
    })
}

// ---------------------------------------------------------------------------
// The dataflow pass
// ---------------------------------------------------------------------------

/// Flow state of one output column. Strings are `Arc`-shared so the
/// cell clones that dominate the dataflow pass (every Project, Join,
/// and Aggregate derives cells) are refcount bumps, not allocations.
#[derive(Debug, Clone)]
struct Cell {
    label: Sensitivity,
    /// Visibility depends on an unchecked opt-out gate.
    gated: bool,
    /// Label is `PerUser` via aggregation; a k-guard can declassify.
    agg_guarded: bool,
    /// A COUNT output usable as a k-guard; the bool is `true` when the
    /// count is DISTINCT over an owner column (a *strong* guard).
    guard: Option<bool>,
    role: ColumnRole,
    /// Lowercased origin table ("" for derived cells).
    table: Arc<str>,
    /// Column name for messages.
    name: Arc<str>,
}

/// The shared "" for derived cells (no per-cell allocation).
fn no_table() -> Arc<str> {
    static EMPTY: OnceLock<Arc<str>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::from("")))
}

impl Cell {
    fn public(name: &str) -> Cell {
        Cell {
            label: Sensitivity::Public,
            gated: false,
            agg_guarded: false,
            guard: None,
            role: ColumnRole::None,
            table: no_table(),
            name: Arc::from(name),
        }
    }
}

/// Pre-resolved flow state of one table's scan — the catalog labels
/// applied to every column, computed once and memoized on the catalog
/// ([`Catalog::flow_template`]). The cache is cleared on any
/// `set_table_policy`; a hit is additionally verified against the live
/// schema (names, positionally) before use, so stale templates can
/// never mislabel a column after DDL.
#[derive(Debug)]
pub(crate) struct ScanTemplate {
    /// Lowercased table name.
    table: Arc<str>,
    cells: Vec<Cell>,
    /// Any column of the table is `Restricted` (reported as P005 at the
    /// scan site for under-cleared principals).
    restricted: bool,
}

/// Flow state of a whole sub-plan: per-column cells plus the implicit
/// (control) context label.
#[derive(Debug, Clone)]
struct FlowInfo {
    cells: Vec<Cell>,
    ctx: Sensitivity,
    /// What tainted the context, as `(kind, table, column)` parts —
    /// formatted only if a P002 diagnostic is actually emitted.
    ctx_origin: Option<(&'static str, Arc<str>, Arc<str>)>,
    /// The current context maximum was contributed by a *gated* cell, so a
    /// later gate check lowers it.
    ctx_gated: bool,
    /// A sharing-gate check was proven somewhere in this sub-plan (by a
    /// gate-benefiting principal); joined-in gated cells declassify.
    gate_checked: bool,
}

impl FlowInfo {
    fn new(cells: Vec<Cell>) -> FlowInfo {
        FlowInfo {
            cells,
            ctx: Sensitivity::Public,
            ctx_origin: None,
            ctx_gated: false,
            gate_checked: false,
        }
    }

    /// Render the context-taint origin for a P002 message.
    fn ctx_origin_string(&self) -> String {
        match &self.ctx_origin {
            Some((what, table, name)) if !table.is_empty() => {
                format!("{what} over {table}.{name}")
            }
            Some((what, _, name)) => format!("{what} over {name}"),
            None => "predicate".to_owned(),
        }
    }

    /// Re-apply an established gate check to the current scope: every
    /// gated cell (and a gated context taint) lowers to `Community`.
    fn settle_gate(&mut self) {
        if !self.gate_checked {
            return;
        }
        for c in self.cells.iter_mut() {
            if c.gated {
                c.gated = false;
                if c.label == Sensitivity::PerUser {
                    c.label = Sensitivity::Community;
                }
            }
        }
        if self.ctx_gated && self.ctx == Sensitivity::PerUser {
            self.ctx = Sensitivity::Community;
            self.ctx_gated = false;
        }
    }
}

struct FlowChecker<'a> {
    catalog: &'a Catalog,
    principal: &'a Principal,
    k: i64,
    diags: Vec<Diagnostic>,
    stack: Vec<&'static str>,
    /// Tables already reported as P005 at their scan site, so the root
    /// check does not double-report their cells.
    restricted_reported: BTreeSet<Arc<str>>,
}

impl<'a> FlowChecker<'a> {
    fn path(&self) -> String {
        self.stack.join(".")
    }

    fn flow(&mut self, plan: &LogicalPlan) -> FlowInfo {
        match plan {
            LogicalPlan::Scan {
                table,
                projection,
                filter,
                schema,
                ..
            } => self.scan_flow(table, projection, filter.as_ref(), schema),
            LogicalPlan::Filter { input, predicate } => {
                self.stack.push("Filter");
                let mut info = self.flow(input);
                self.stack.pop();
                self.apply_predicate(&mut info, predicate);
                info
            }
            LogicalPlan::Project {
                input,
                exprs,
                schema: _,
            } => {
                self.stack.push("Project");
                let info = self.flow(input);
                self.stack.pop();
                let cells = exprs
                    .iter()
                    .map(|(e, name)| derive_cell(&info.cells, e, name))
                    .collect();
                FlowInfo { cells, ..info }
            }
            LogicalPlan::Join {
                left, right, on, ..
            } => {
                self.stack.push("Join.left");
                let l = self.flow(left);
                self.stack.pop();
                self.stack.push("Join.right");
                let r = self.flow(right);
                self.stack.pop();
                let mut info = merge_infos(l, r, |mut lc, rc| {
                    lc.extend(rc);
                    lc
                });
                info.settle_gate();
                self.apply_predicate(&mut info, on);
                info
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                self.stack.push("Aggregate");
                let info = self.flow(input);
                self.stack.pop();
                self.aggregate_flow(&info, group_by, aggs)
            }
            LogicalPlan::Sort { input, keys } => {
                self.stack.push("Sort");
                let mut info = self.flow(input);
                self.stack.pop();
                // Sorting by sensitive data is an implicit flow: the output
                // *order* encodes it even if the column is projected away
                // above.
                for key in keys {
                    taint_with_expr(&mut info, &key.expr, "sort key");
                }
                info
            }
            LogicalPlan::Limit { input, .. } => {
                self.stack.push("Limit");
                let info = self.flow(input);
                self.stack.pop();
                info
            }
            LogicalPlan::Values { schema, .. } => FlowInfo::new(
                schema
                    .columns()
                    .iter()
                    .map(|c| Cell::public(&c.name))
                    .collect(),
            ),
            LogicalPlan::Union { left, right } => {
                self.stack.push("Union.left");
                let l = self.flow(left);
                self.stack.pop();
                self.stack.push("Union.right");
                let r = self.flow(right);
                self.stack.pop();
                let mut info = merge_infos(l, r, |lc, rc| {
                    lc.into_iter()
                        .zip(rc)
                        .map(|(a, b)| join_cells(a, &b))
                        .collect()
                });
                info.settle_gate();
                info
            }
            LogicalPlan::Extend {
                input,
                related,
                as_name,
                ..
            } => {
                self.stack.push("Extend.input");
                let info = self.flow(input);
                self.stack.pop();
                self.stack.push("Extend.related");
                let rel = self.flow(related);
                self.stack.pop();
                // The appended nested attribute carries everything the
                // related sub-plan produced, *selected* under the related
                // side's context (its filters), so that context folds into
                // the cell's label rather than the node context.
                let mut appended = Cell::public(as_name);
                for c in &rel.cells {
                    appended.label = appended.label.max(c.label);
                    appended.gated |= c.gated;
                    appended.agg_guarded |= c.agg_guarded;
                    if appended.table.is_empty() {
                        appended.table = c.table.clone();
                    }
                }
                appended.label = appended.label.max(rel.ctx);
                let mut out = info;
                out.cells.push(appended);
                out.gate_checked |= rel.gate_checked;
                out.settle_gate();
                out
            }
            LogicalPlan::Recommend {
                target,
                comparator,
                spec,
                ..
            } => {
                self.stack.push("Recommend.target");
                let t = self.flow(target);
                self.stack.pop();
                self.stack.push("Recommend.comparator");
                let c = self.flow(comparator);
                self.stack.pop();
                // Declassification rule 4: the score is an aggregate
                // similarity over the whole comparator set, so comparator-
                // side PerUser data lowers to Community through it.
                // Restricted never launders.
                let comp_max = c
                    .cells
                    .iter()
                    .map(|cell| cell.label)
                    .chain(std::iter::once(c.ctx))
                    .max()
                    .unwrap_or(Sensitivity::Public);
                let score_label = match comp_max {
                    Sensitivity::PerUser => Sensitivity::Community,
                    other => other,
                };
                let mut out = t;
                out.cells.push(Cell {
                    label: score_label,
                    gated: false,
                    agg_guarded: false,
                    guard: None,
                    role: ColumnRole::None,
                    table: no_table(),
                    name: Arc::from(spec.score_name.as_str()),
                });
                out
            }
        }
    }

    fn scan_flow(
        &mut self,
        table: &str,
        projection: &Option<Vec<usize>>,
        filter: Option<&Expr>,
        node_schema: &Schema,
    ) -> FlowInfo {
        let Some(template) = self.lookup_template(table) else {
            // Unknown or unlabeled table: everything Public. The structural
            // validator reports unknown tables as E016; the flow pass never
            // invents sensitivity it was not told about.
            let cells = self
                .catalog
                .with_table_schema(table, |s| {
                    s.columns()
                        .iter()
                        .map(|c| Cell::public(&c.name))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_else(|_| {
                    node_schema
                        .columns()
                        .iter()
                        .map(|c| Cell::public(&c.name))
                        .collect()
                });
            let mut info = FlowInfo::new(cells);
            if let Some(pred) = filter {
                self.apply_predicate(&mut info, pred);
            }
            if let Some(idx) = projection {
                info.cells = project_cells(info.cells, idx);
            }
            return info;
        };
        if template.restricted && self.principal.clearance() < Sensitivity::Restricted {
            self.diags.push(Diagnostic::error(
                P_RESTRICTED_SOURCE,
                format!("{}.Scan", self.path()),
                format!(
                    "table {table} is restricted telemetry; principal {} has {} clearance",
                    self.principal,
                    self.principal.clearance()
                ),
            ));
            self.restricted_reported.insert(template.table.clone());
        }
        // The scan filter executes against full-schema rows before the
        // projection is applied (see exec::scan_table), so declassifiers
        // must see the full cell vector too.
        let mut info = FlowInfo::new(template.cells.clone());
        if let Some(pred) = filter {
            self.apply_predicate(&mut info, pred);
        }
        if let Some(idx) = projection {
            info.cells = project_cells(info.cells, idx);
        }
        info
    }

    /// Resolve the memoized [`ScanTemplate`] for `table`, building and
    /// storing it on a miss. `None` means unknown table or no registered
    /// policy (the all-Public fallback). The cache is shared across
    /// catalog clones *and* snapshots; generation stamps (see
    /// `Catalog::flow_gen_now`) make a template built against a
    /// different schema lineage a miss, so stale entries can never
    /// mislabel a column after DDL. The generation is captured *before*
    /// the schema read: a concurrent DDL leaves the new entry stamped
    /// stale, which fails safe (rebuild), never stale-but-trusted.
    fn lookup_template(&self, table: &str) -> Option<Arc<ScanTemplate>> {
        if let Some(t) = self.catalog.flow_template(table) {
            return Some(t);
        }
        let gen = self.catalog.flow_gen_now();
        let policy = self.catalog.table_policy(table)?;
        let key = table.to_ascii_lowercase();
        let tarc: Arc<str> = Arc::from(key.as_str());
        let cells = self
            .catalog
            .with_table_schema(table, |s| {
                s.columns()
                    .iter()
                    .map(|c| {
                        let cp = policy.column_policy(&c.name);
                        Cell {
                            label: cp.label,
                            gated: cp.gated,
                            agg_guarded: false,
                            guard: None,
                            role: cp.role,
                            table: tarc.clone(),
                            name: Arc::from(c.name.as_str()),
                        }
                    })
                    .collect::<Vec<_>>()
            })
            .ok()?;
        let template = Arc::new(ScanTemplate {
            table: tarc,
            cells,
            restricted: policy.max_label() == Sensitivity::Restricted,
        });
        self.catalog.store_flow_template(key, gen, template.clone());
        Some(template)
    }

    /// Process a predicate: apply declassifying conjuncts first (rules 1–3),
    /// then taint the context with whatever remains.
    fn apply_predicate(&mut self, info: &mut FlowInfo, pred: &Expr) {
        // Borrowing split: the declassify-then-taint two-pass never needs
        // owned conjuncts, and this runs on every Filter/Join/scan-filter.
        fn conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
            match e {
                Expr::Binary {
                    op: BinOp::And,
                    left,
                    right,
                } => {
                    conjuncts(left, out);
                    conjuncts(right, out);
                }
                other => out.push(other),
            }
        }
        let mut parts: Vec<&Expr> = Vec::new();
        conjuncts(pred, &mut parts);
        // Declassifiers apply first (a gate check later in the conjunction
        // still covers sensitive conjuncts before it), then the remainder
        // taints the context.
        parts.retain(|c| !self.try_declassify(info, c));
        for t in parts {
            taint_with_expr(info, t, "predicate");
        }
    }

    /// Returns true when the conjunct is a declassifier and was applied.
    fn try_declassify(&mut self, info: &mut FlowInfo, conjunct: &Expr) -> bool {
        // Bare boolean gate column: `WHERE SharePlans`.
        if let Expr::Column(i) = conjunct {
            if let Some(cell) = info.cells.get(*i) {
                if cell.role == ColumnRole::OptOutGate {
                    return self.apply_gate(info);
                }
            }
        }
        let Some((col, value, op)) = as_col_lit(conjunct) else {
            return false;
        };
        let Some(cell) = info.cells.get(col) else {
            return false;
        };
        match (op, value) {
            // Rule 1: self-access (`owner = me`). Someone else's id falls
            // through to the catch-all: not a declassifier; the equality
            // still taints (it selects rows by that owner).
            (BinOp::Eq, Value::Int(id))
                if cell.role == ColumnRole::Owner && self.principal.owns(*id) =>
            {
                let table = cell.table.clone();
                for c in info.cells.iter_mut().filter(|c| c.table == table) {
                    if c.label == Sensitivity::PerUser {
                        c.label = Sensitivity::Community;
                    }
                    c.gated = false;
                }
                true
            }
            // Rule 2: gate check (`SharePlans = TRUE`).
            (BinOp::Eq, Value::Bool(true)) if cell.role == ColumnRole::OptOutGate => {
                self.apply_gate(info)
            }
            // Rule 3: k-guard (`count >= k` / `count > k-1`).
            (BinOp::GtEq | BinOp::Gt, Value::Int(n)) if cell.guard.is_some() => {
                let threshold = if op == BinOp::Gt { *n + 1 } else { *n };
                if threshold >= self.k {
                    let strong = cell.guard == Some(true);
                    let declassifies = info.cells.iter().any(|c| c.agg_guarded);
                    if !strong && declassifies {
                        self.diags.push(Diagnostic::warning(
                            P_WEAK_GUARD,
                            self.path(),
                            format!(
                                "k-guard on {} counts rows, not distinct owners; \
                                 {threshold} rows may cover fewer than {} students",
                                cell.name, self.k
                            ),
                        ));
                    }
                    for c in info.cells.iter_mut() {
                        if c.agg_guarded {
                            c.agg_guarded = false;
                            c.gated = false;
                            if c.label == Sensitivity::PerUser {
                                c.label = Sensitivity::Community;
                            }
                        }
                    }
                    true
                } else {
                    // Guard below the policy threshold: no declassification;
                    // the root check reports P003 with the cells still
                    // guarded. Not a taint either (the count itself is the
                    // aggregate output, already a cell).
                    true
                }
            }
            _ => false,
        }
    }

    fn apply_gate(&mut self, info: &mut FlowInfo) -> bool {
        if !self.principal.benefits_from_gates() {
            // Faculty/anonymous: the gate is checked but their role never
            // sees gated data; leave cells gated so the root reports P004.
            return true;
        }
        info.gate_checked = true;
        info.settle_gate();
        true
    }

    fn aggregate_flow(
        &mut self,
        info: &FlowInfo,
        group_by: &[Expr],
        aggs: &[super::logical::AggExpr],
    ) -> FlowInfo {
        let mut cells = Vec::with_capacity(group_by.len() + aggs.len());
        for (i, g) in group_by.iter().enumerate() {
            // Pure column passthroughs keep their own name (and skip the
            // format! alloc); only computed keys get a synthetic one.
            let mut cell = if let Expr::Column(idx) = g {
                info.cells
                    .get(*idx)
                    .cloned()
                    .unwrap_or_else(|| Cell::public("?"))
            } else {
                derive_cell(&info.cells, g, &format!("group{i}"))
            };
            // The input context selected which rows each group aggregates
            // over; it folds into every output cell.
            cell.label = cell.label.max(info.ctx);
            if cell.label == Sensitivity::PerUser {
                cell.agg_guarded = true;
            }
            cell.guard = None;
            cells.push(cell);
        }
        for a in aggs {
            let mut refs = Vec::new();
            if a.func == AggFn::CountStar {
                // COUNT(*) depends on every input column's row multiset.
                refs.extend(0..info.cells.len());
            } else {
                a.arg.referenced_columns(&mut refs);
            }
            let mut label = info.ctx;
            let mut gated = false;
            for &r in &refs {
                if let Some(c) = info.cells.get(r) {
                    label = label.max(c.label);
                    gated |= c.gated;
                }
            }
            let agg_guarded = label == Sensitivity::PerUser;
            // Any count is a k-guard candidate — even when the counted column
            // itself is low-sensitivity (COUNT(DISTINCT owner) proves group
            // size without touching per-user data). It is *strong* when it
            // counts distinct owners.
            let guard = if matches!(a.func, AggFn::Count | AggFn::CountStar) {
                let strong = a.distinct
                    && matches!(
                        &a.arg,
                        Expr::Column(i) if info.cells.get(*i).is_some_and(|c| c.role == ColumnRole::Owner)
                    );
                Some(strong)
            } else {
                None
            };
            cells.push(Cell {
                label,
                gated,
                agg_guarded,
                guard,
                role: ColumnRole::None,
                table: no_table(),
                name: Arc::from(a.name.as_str()),
            });
        }
        // The aggregate blurs its input's row-selection context into the
        // cells above; the node itself starts a fresh context.
        let mut out = FlowInfo::new(cells);
        out.gate_checked = info.gate_checked;
        out
    }
}

/// `Column op Literal` (either order; the operator is flipped when the
/// literal is on the left).
fn as_col_lit(e: &Expr) -> Option<(usize, &Value, BinOp)> {
    let Expr::Binary { op, left, right } = e else {
        return None;
    };
    match (left.as_ref(), right.as_ref()) {
        (Expr::Column(i), Expr::Literal(v)) => Some((*i, v, *op)),
        (Expr::Literal(v), Expr::Column(i)) => {
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::LtEq => BinOp::GtEq,
                BinOp::Gt => BinOp::Lt,
                BinOp::GtEq => BinOp::LtEq,
                other => *other,
            };
            Some((*i, v, flipped))
        }
        _ => None,
    }
}

fn derive_cell(cells: &[Cell], expr: &Expr, name: &str) -> Cell {
    // A pure column passthrough keeps the cell's full flow state (roles,
    // guards) so declassifiers still recognize it above the projection.
    if let Expr::Column(i) = expr {
        if let Some(c) = cells.get(*i) {
            let mut c = c.clone();
            if &*c.name != name {
                c.name = Arc::from(name);
            }
            return c;
        }
    }
    let mut refs = Vec::new();
    expr.referenced_columns(&mut refs);
    let mut out = Cell::public(name);
    for &r in &refs {
        if let Some(c) = cells.get(r) {
            out.label = out.label.max(c.label);
            out.gated |= c.gated;
            out.agg_guarded |= c.agg_guarded;
            if out.table.is_empty() {
                out.table = c.table.clone();
            } else if out.table != c.table {
                out.table = no_table();
            }
        }
    }
    out
}

fn project_cells(cells: Vec<Cell>, idx: &[usize]) -> Vec<Cell> {
    idx.iter()
        .map(|&i| cells.get(i).cloned().unwrap_or_else(|| Cell::public("?")))
        .collect()
}

fn join_cells(mut a: Cell, b: &Cell) -> Cell {
    a.label = a.label.max(b.label);
    a.gated |= b.gated;
    a.agg_guarded |= b.agg_guarded;
    if a.table != b.table {
        a.table = no_table();
    }
    a
}

/// Combine two child infos: `combine` merges the cell vectors; context is
/// the lattice join; gate checks survive from either side.
fn merge_infos(
    l: FlowInfo,
    r: FlowInfo,
    combine: impl FnOnce(Vec<Cell>, Vec<Cell>) -> Vec<Cell>,
) -> FlowInfo {
    let (ctx, ctx_origin, ctx_gated) = if r.ctx > l.ctx {
        (r.ctx, r.ctx_origin, r.ctx_gated)
    } else if l.ctx == r.ctx && l.ctx_gated && !r.ctx_gated && r.ctx > Sensitivity::Public {
        // An equally-high non-gated taint dominates a gated one (a gate
        // check must not launder it).
        (r.ctx, r.ctx_origin, false)
    } else {
        (l.ctx, l.ctx_origin, l.ctx_gated)
    };
    FlowInfo {
        cells: combine(l.cells, r.cells),
        ctx,
        ctx_origin,
        ctx_gated,
        gate_checked: l.gate_checked || r.gate_checked,
    }
}

fn taint_with_expr(info: &mut FlowInfo, expr: &Expr, what: &'static str) {
    let mut refs = Vec::new();
    expr.referenced_columns(&mut refs);
    for r in refs {
        if let Some(c) = info.cells.get(r) {
            if c.label > info.ctx {
                info.ctx = c.label;
                info.ctx_origin = Some((what, c.table.clone(), c.name.clone()));
                info.ctx_gated = c.gated;
            } else if c.label == info.ctx
                && info.ctx_gated
                && !c.gated
                && c.label > Sensitivity::Public
            {
                // A non-gated taint at the same level pins the context: a
                // later gate check must not lower it.
                info.ctx_origin = Some((what, c.table.clone(), c.name.clone()));
                info.ctx_gated = false;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Statically prove (or refute) that `plan`'s output may be disclosed to
/// `principal`. Labels come from the catalog's [`FlowPolicy`]; unlabeled
/// tables are `Public`. Violations are reported as P-code [`Diagnostic`]s;
/// an empty report is the disclosure proof.
pub fn check_disclosure(
    plan: &LogicalPlan,
    catalog: &Catalog,
    principal: &Principal,
) -> ValidationReport {
    // Full clearance sits at the lattice top: no label or context can
    // exceed it, so no error path can fire. Skip the walk — the server's
    // staff sessions pay nothing for the gate. (P101 weak-guard warnings
    // are skipped too; they only matter to principals the guard protects
    // against, and `crlint --principal student` surfaces them.)
    if principal.clearance() >= Sensitivity::Restricted {
        if cr_obs::enabled() {
            fmetrics().checks.inc();
        }
        return ValidationReport {
            diagnostics: Vec::new(),
        };
    }
    let mut checker = FlowChecker {
        catalog,
        principal,
        k: catalog.flow_k(),
        diags: Vec::new(),
        stack: vec![op_name(plan)],
        restricted_reported: BTreeSet::new(),
    };
    let info = checker.flow(plan);
    let clearance = principal.clearance();
    for (i, cell) in info.cells.iter().enumerate() {
        if cell.label <= clearance {
            continue;
        }
        if cell.label == Sensitivity::Restricted
            && checker.restricted_reported.contains(&cell.table)
        {
            continue; // already reported as P005 at the scan site
        }
        let origin = if cell.table.is_empty() {
            cell.name.to_string()
        } else {
            format!("{}.{}", cell.table, cell.name)
        };
        let (code, hint) = if cell.gated {
            (
                P_OPTOUT_BYPASS,
                "add a sharing-gate check (e.g. SharePlans = TRUE) or restrict to the owner",
            )
        } else if cell.agg_guarded {
            (
                P_AGG_BELOW_K,
                "guard the aggregate with a k-threshold (e.g. HAVING COUNT(...) >= k)",
            )
        } else if cell.label == Sensitivity::Restricted {
            (P_RESTRICTED_SOURCE, "restricted telemetry never discloses")
        } else {
            (P_DIRECT, "project it away or restrict to the owner")
        };
        checker.diags.push(Diagnostic::error(
            code,
            "output".to_owned(),
            format!(
                "column #{i} ({origin}) is {} but principal {} has {} clearance; {hint}",
                cell.label, principal, clearance
            ),
        ));
    }
    if info.ctx > clearance {
        checker.diags.push(Diagnostic::error(
            P_IMPLICIT,
            "output".to_owned(),
            format!(
                "row selection depends on {} data ({}) above {} clearance of principal {}",
                info.ctx,
                info.ctx_origin_string(),
                clearance,
                principal
            ),
        ));
    }
    let report = ValidationReport {
        diagnostics: checker.diags,
    };
    if cr_obs::enabled() {
        let m = fmetrics();
        m.checks.inc();
        if report.has_errors() {
            m.denials.inc();
        }
        let w = report.warnings().count() as u64;
        if w > 0 {
            m.warnings.add(w);
        }
    }
    report
}

/// Disclosure decision for a SQL text, memoized on the catalog — the
/// steady-state form of [`check_disclosure`] for the server's read path,
/// where the same query texts recur across requests. A hit skips both
/// planning and the flow walk; the per-request analysis overhead is one
/// map lookup. Soundness: decisions depend only on schema and policy
/// (never data), the cache key includes the principal, and entries are
/// generation-stamped (DDL) and cleared on policy/k changes — the same
/// invalidation discipline the scan-template cache uses.
///
/// Returns `None` when the text does not plan as a query (DML/DDL);
/// the caller's read-only guard owns that error path.
pub fn check_disclosure_sql(
    sql: &str,
    catalog: &Catalog,
    principal: &Principal,
) -> Option<Arc<ValidationReport>> {
    let gen = catalog.flow_gen_now();
    let key = format!("{principal}\u{1f}{sql}");
    if let Some(report) = catalog.flow_decision(gen, &key) {
        if cr_obs::enabled() {
            let m = fmetrics();
            m.checks.inc();
            if report.has_errors() {
                m.denials.inc();
            }
        }
        return Some(report);
    }
    let plan = crate::sql::plan_query(sql, catalog).ok()?;
    let report = Arc::new(check_disclosure(&plan, catalog, principal));
    catalog.store_flow_decision(key, gen, Arc::clone(&report));
    Some(report)
}

fn op_name(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Scan { .. } => "Scan",
        LogicalPlan::Filter { .. } => "Filter",
        LogicalPlan::Project { .. } => "Project",
        LogicalPlan::Join { .. } => "Join",
        LogicalPlan::Aggregate { .. } => "Aggregate",
        LogicalPlan::Sort { .. } => "Sort",
        LogicalPlan::Limit { .. } => "Limit",
        LogicalPlan::Values { .. } => "Values",
        LogicalPlan::Union { .. } => "Union",
        LogicalPlan::Extend { .. } => "Extend",
        LogicalPlan::Recommend { .. } => "Recommend",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;

    fn campus() -> Database {
        let db = Database::new();
        db.execute_sql(
            "CREATE TABLE Students (SuID INT PRIMARY KEY, Name TEXT, GPA FLOAT, SharePlans BOOL)",
        )
        .unwrap();
        db.execute_sql(
            "CREATE TABLE Enrollments (SuID INT, CourseID INT, Grade TEXT, Status TEXT)",
        )
        .unwrap();
        let catalog = db.catalog();
        catalog.set_table_policy(
            "Students",
            TablePolicy::new(Sensitivity::Community)
                .owner("SuID", Sensitivity::Community)
                .column("GPA", Sensitivity::PerUser)
                .gate("SharePlans", Sensitivity::Community),
        );
        catalog.set_table_policy(
            "Enrollments",
            TablePolicy::new(Sensitivity::Community)
                .owner("SuID", Sensitivity::Community)
                .column("Grade", Sensitivity::PerUser)
                .gated("CourseID")
                .gated("Status"),
        );
        db
    }

    fn check(db: &Database, sql: &str, p: &Principal) -> ValidationReport {
        let plan = crate::sql::plan_query(sql, &db.catalog()).unwrap();
        check_disclosure(&plan, &db.catalog(), p)
    }

    #[test]
    fn lattice_orders() {
        assert!(Sensitivity::Public < Sensitivity::Community);
        assert!(Sensitivity::Community < Sensitivity::PerUser);
        assert!(Sensitivity::PerUser < Sensitivity::Restricted);
    }

    #[test]
    fn principal_parsing() {
        assert_eq!(Principal::parse("staff"), Some(Principal::Staff));
        assert_eq!(
            Principal::parse("Student:444"),
            Some(Principal::Student(Some(444)))
        );
        assert_eq!(Principal::parse("student"), Some(Principal::Student(None)));
        assert_eq!(Principal::parse("nope"), None);
    }

    #[test]
    fn direct_disclosure_denied_for_student_allowed_for_staff() {
        let db = campus();
        let r = check(
            &db,
            "SELECT SuID, Grade FROM Enrollments",
            &Principal::Student(Some(2)),
        );
        assert!(r.has_code(P_DIRECT), "{r}");
        let r = check(
            &db,
            "SELECT SuID, Grade FROM Enrollments",
            &Principal::Staff,
        );
        assert!(r.is_empty(), "{r}");
    }

    #[test]
    fn self_access_declassifies() {
        let db = campus();
        let r = check(
            &db,
            "SELECT Grade FROM Enrollments WHERE SuID = 2",
            &Principal::Student(Some(2)),
        );
        assert!(r.is_empty(), "{r}");
        // Someone else's id: still denied.
        let r = check(
            &db,
            "SELECT Grade FROM Enrollments WHERE SuID = 3",
            &Principal::Student(Some(2)),
        );
        assert!(r.has_errors(), "{r}");
    }

    #[test]
    fn implicit_flow_via_predicate() {
        let db = campus();
        // Only community columns in the output, but selection depends on
        // a per-user grade.
        let r = check(
            &db,
            "SELECT SuID FROM Enrollments WHERE Grade = 'A'",
            &Principal::Student(Some(2)),
        );
        assert!(r.has_code(P_IMPLICIT), "{r}");
    }

    #[test]
    fn k_guard_declassifies_aggregate() {
        let db = campus();
        let denied = check(
            &db,
            "SELECT Grade, COUNT(*) AS n FROM Enrollments GROUP BY Grade",
            &Principal::Student(Some(2)),
        );
        assert!(denied.has_code(P_AGG_BELOW_K), "{denied}");
        let ok = check(
            &db,
            "SELECT Grade, COUNT(*) AS n FROM Enrollments GROUP BY Grade HAVING COUNT(*) >= 5",
            &Principal::Student(Some(2)),
        );
        assert!(!ok.has_errors(), "{ok}");
        // Weak guard (rows, not distinct owners) warns.
        assert!(ok.has_code(P_WEAK_GUARD), "{ok}");
        let strong = check(
            &db,
            "SELECT Grade, COUNT(DISTINCT SuID) AS n FROM Enrollments GROUP BY Grade \
             HAVING COUNT(DISTINCT SuID) >= 5",
            &Principal::Student(Some(2)),
        );
        assert!(strong.is_empty(), "{strong}");
    }

    #[test]
    fn optout_gate() {
        let db = campus();
        let bypass = check(
            &db,
            "SELECT e.SuID, e.CourseID FROM Enrollments e WHERE e.Status = 'planned'",
            &Principal::Student(Some(2)),
        );
        assert!(bypass.has_code(P_OPTOUT_BYPASS), "{bypass}");
        let gated = check(
            &db,
            "SELECT e.SuID, e.CourseID FROM Enrollments e \
             JOIN Students s ON e.SuID = s.SuID \
             WHERE s.SharePlans = TRUE AND e.Status = 'planned'",
            &Principal::Student(Some(2)),
        );
        assert!(!gated.has_errors(), "{gated}");
        // Faculty never benefit from the gate.
        let faculty = check(
            &db,
            "SELECT e.SuID, e.CourseID FROM Enrollments e \
             JOIN Students s ON e.SuID = s.SuID \
             WHERE s.SharePlans = TRUE AND e.Status = 'planned'",
            &Principal::Faculty,
        );
        assert!(faculty.has_code(P_OPTOUT_BYPASS), "{faculty}");
    }

    #[test]
    fn gate_decision_matches_legacy_matrix() {
        // Owner always sees own plans.
        assert_eq!(
            gate_decision(&Principal::Student(Some(3)), 3, false),
            GateDecision::Allow
        );
        // Sharer visible to other students.
        assert_eq!(
            gate_decision(&Principal::Student(Some(2)), 444, true),
            GateDecision::Allow
        );
        // Opt-out hidden from other students.
        assert_eq!(
            gate_decision(&Principal::Student(Some(2)), 3, false),
            GateDecision::DeniedOptOut
        );
        // Staff see everything; faculty nothing student-specific.
        assert_eq!(
            gate_decision(&Principal::Staff, 3, false),
            GateDecision::Allow
        );
        assert_eq!(
            gate_decision(&Principal::Faculty, 444, true),
            GateDecision::DeniedRole
        );
    }

    #[test]
    fn unlabeled_tables_are_public() {
        let db = Database::new();
        db.execute_sql("CREATE TABLE t (x INT)").unwrap();
        let r = check(&db, "SELECT x FROM t", &Principal::Anonymous);
        assert!(r.is_empty(), "{r}");
    }
}
