//! Logical-plan rewrites.
//!
//! Three classic passes, applied bottom-up until fixpoint:
//!
//! 1. **Constant folding** — every expression is folded.
//! 2. **Predicate pushdown** — filters sink through filters and joins and
//!    merge into scans, where the executor can serve them from an index.
//! 3. **Projection pruning** — a projection directly above a scan (with an
//!    optional filter in between) narrows the scan to the columns actually
//!    used, so wide CourseRank rows (descriptions, comment text) are not
//!    cloned when only ids and ratings are needed.

use crate::expr::Expr;

use super::logical::{JoinKind, LogicalPlan};

/// A named rewrite rule: a whole-plan transformation.
type Rule = (&'static str, fn(LogicalPlan) -> LogicalPlan);

/// The rewrite rules, in application order. Naming each rule lets the
/// debug-build soundness harness attribute a violation to the rule that
/// introduced it.
const RULES: &[Rule] = &[
    ("fold_constants", fold_constants),
    ("push_down_predicates", push_down_predicates),
    ("prune_projections", prune_projections),
];

/// Optimize a plan. Idempotent.
///
/// In debug builds, the plan validator and a root-schema equality check run
/// after *every* rule; a rule that produces an ill-formed plan or changes
/// the output schema panics with the rule's name, the diagnostics, and the
/// offending plan — so optimizer bugs surface at the rewrite that caused
/// them instead of as wrong results downstream.
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    #[cfg(debug_assertions)]
    let schema_before = plan.schema().clone();
    // A plan that is invalid on entry is not an optimizer bug — skip the
    // harness and let downstream validation or execution report it.
    #[cfg(debug_assertions)]
    let input_valid = !super::validate::validate(&plan).has_errors();
    let mut plan = plan;
    for (_name, rule) in RULES {
        plan = rule(plan);
        #[cfg(debug_assertions)]
        if input_valid {
            assert_rule_sound(_name, &plan, &schema_before);
        }
    }
    plan
}

/// Debug-build soundness check: every rewrite must keep the plan valid and
/// preserve the root output schema.
#[cfg(debug_assertions)]
fn assert_rule_sound(rule: &str, plan: &LogicalPlan, schema_before: &crate::schema::Schema) {
    let report = super::validate::validate(plan);
    if report.has_errors() {
        panic!(
            "optimizer rule `{rule}` produced an invalid plan:\n{report}\nplan:\n{}",
            plan.explain()
        );
    }
    if plan.schema() != schema_before {
        panic!(
            "optimizer rule `{rule}` changed the root output schema:\nbefore: {schema_before:?}\nafter:  {:?}\nplan:\n{}",
            plan.schema(),
            plan.explain()
        );
    }
}

/// Fold constant subexpressions everywhere.
///
/// Folding runs through the vectorized kernel path ([`Expr::fold_kernel`]):
/// a literal-only subtree is evaluated as a one-row batch, so the optimizer
/// exercises exactly the kernels the executor will run — any row-vs-batch
/// divergence in folding shows up under the debug-build soundness harness
/// instead of at execution time.
fn fold_constants(plan: LogicalPlan) -> LogicalPlan {
    map_children(plan, &|p| match p {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input,
            predicate: predicate.fold_kernel(),
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input,
            exprs: exprs
                .into_iter()
                .map(|(e, n)| (e.fold_kernel(), n))
                .collect(),
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => LogicalPlan::Join {
            left,
            right,
            kind,
            on: on.fold_kernel(),
            schema,
        },
        LogicalPlan::Scan {
            table,
            alias,
            projection,
            filter,
            schema,
        } => LogicalPlan::Scan {
            table,
            alias,
            projection,
            filter: filter.map(|f| f.fold_kernel()),
            schema,
        },
        other => other,
    })
}

/// Push filters down as far as they can go.
fn push_down_predicates(plan: LogicalPlan) -> LogicalPlan {
    map_children(plan, &|p| {
        if let LogicalPlan::Filter { input, predicate } = p {
            push_filter(*input, predicate)
        } else {
            p
        }
    })
}

fn push_filter(input: LogicalPlan, predicate: Expr) -> LogicalPlan {
    match input {
        // Filter ∘ Filter → merge conjunctions and retry.
        LogicalPlan::Filter {
            input: inner,
            predicate: inner_pred,
        } => push_filter(*inner, inner_pred.and(predicate)),

        // Filter ∘ Scan → merge into scan filter. The scan's own filter is
        // bound against the *full* table schema; a filter above the scan is
        // bound against the scan's (possibly projected) output. Only merge
        // when no projection intervenes; otherwise keep the filter node.
        LogicalPlan::Scan {
            table,
            alias,
            projection: None,
            filter,
            schema,
        } => LogicalPlan::Scan {
            table,
            alias,
            projection: None,
            filter: Some(match filter {
                Some(f) => f.and(predicate),
                None => predicate,
            }),
            schema,
        },

        // Filter ∘ Join → route conjuncts that reference only one side.
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => {
            let left_width = left.schema().len();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut keep = Vec::new();
            for part in predicate.split_conjunction() {
                let mut cols = Vec::new();
                part.referenced_columns(&mut cols);
                let all_left = cols.iter().all(|&c| c < left_width);
                let all_right = cols.iter().all(|&c| c >= left_width);
                // For LEFT OUTER joins, pushing a predicate to the right
                // side changes semantics (it would filter before the
                // null-extension); pushing left is always safe.
                match (all_left, all_right, kind) {
                    (true, _, _) => to_left.push(part),
                    (_, true, JoinKind::Inner) => {
                        to_right.push(part.map_columns(&|c| c - left_width))
                    }
                    _ => keep.push(part),
                }
            }
            let new_left = if to_left.is_empty() {
                *left
            } else {
                push_filter(*left, Expr::conjoin(to_left))
            };
            let new_right = if to_right.is_empty() {
                *right
            } else {
                push_filter(*right, Expr::conjoin(to_right))
            };
            let joined = LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                kind,
                on,
                schema,
            };
            if keep.is_empty() {
                joined
            } else {
                LogicalPlan::Filter {
                    input: Box::new(joined),
                    predicate: Expr::conjoin(keep),
                }
            }
        }

        // Filter ∘ Extend → conjuncts that don't touch the appended nested
        // column (always the last) filter the same rows whether they run
        // before or after nesting, so they sink into the input side.
        LogicalPlan::Extend {
            input,
            related,
            key_col,
            rating,
            as_name,
            schema,
        } => {
            let input_width = schema.len() - 1;
            let mut below = Vec::new();
            let mut keep = Vec::new();
            for part in predicate.split_conjunction() {
                let mut cols = Vec::new();
                part.referenced_columns(&mut cols);
                if cols.iter().all(|&c| c < input_width) {
                    below.push(part);
                } else {
                    keep.push(part);
                }
            }
            let new_input = if below.is_empty() {
                *input
            } else {
                push_filter(*input, Expr::conjoin(below))
            };
            let extended = LogicalPlan::Extend {
                input: Box::new(new_input),
                related,
                key_col,
                rating,
                as_name,
                schema,
            };
            if keep.is_empty() {
                extended
            } else {
                LogicalPlan::Filter {
                    input: Box::new(extended),
                    predicate: Expr::conjoin(keep),
                }
            }
        }

        // Filter ∘ Recommend → target-only conjuncts (not touching the
        // appended score column) sink into the target side, but only when
        // there is no top-k: with top-k, filtering before scoring changes
        // *which* rows make the cut, not just which survive the filter.
        LogicalPlan::Recommend {
            target,
            comparator,
            spec,
            schema,
        } if spec.k.is_none() => {
            let target_width = schema.len() - 1;
            let mut below = Vec::new();
            let mut keep = Vec::new();
            for part in predicate.split_conjunction() {
                let mut cols = Vec::new();
                part.referenced_columns(&mut cols);
                if cols.iter().all(|&c| c < target_width) {
                    below.push(part);
                } else {
                    keep.push(part);
                }
            }
            let new_target = if below.is_empty() {
                *target
            } else {
                push_filter(*target, Expr::conjoin(below))
            };
            let rec = LogicalPlan::Recommend {
                target: Box::new(new_target),
                comparator,
                spec,
                schema,
            };
            if keep.is_empty() {
                rec
            } else {
                LogicalPlan::Filter {
                    input: Box::new(rec),
                    predicate: Expr::conjoin(keep),
                }
            }
        }

        // Anything else: leave the filter in place.
        other => LogicalPlan::Filter {
            input: Box::new(other),
            predicate,
        },
    }
}

/// Narrow scans under projections to the columns actually used.
fn prune_projections(plan: LogicalPlan) -> LogicalPlan {
    map_children(plan, &|p| {
        let LogicalPlan::Project {
            input,
            exprs,
            schema,
        } = p
        else {
            return p;
        };
        match *input {
            // Project ∘ Extend where no expression reads the nested column
            // (always the last): the whole Extend — nest-map build included —
            // is dead work. Dropping it leaves column indices unchanged.
            LogicalPlan::Extend {
                input: ext_input,
                schema: ext_schema,
                ..
            } if {
                let nested_col = ext_schema.len() - 1;
                let mut used = Vec::new();
                for (e, _) in &exprs {
                    e.referenced_columns(&mut used);
                }
                !used.contains(&nested_col)
            } =>
            {
                LogicalPlan::Project {
                    input: ext_input,
                    exprs,
                    schema,
                }
            }
            LogicalPlan::Scan {
                table,
                alias,
                projection: None,
                filter,
                schema: scan_schema,
            } => {
                // Columns the projection reads (scan filter runs before the
                // projection inside the scan, so its columns need not be
                // emitted).
                let mut used = Vec::new();
                for (e, _) in &exprs {
                    e.referenced_columns(&mut used);
                }
                used.sort_unstable();
                used.dedup();
                if used.len() == scan_schema.len() {
                    // Nothing to prune.
                    return LogicalPlan::Project {
                        input: Box::new(LogicalPlan::Scan {
                            table,
                            alias,
                            projection: None,
                            filter,
                            schema: scan_schema,
                        }),
                        exprs,
                        schema,
                    };
                }
                // Remap projection expressions onto the narrowed row.
                let position = |old: usize| used.binary_search(&old).unwrap_or(0);
                let new_exprs: Vec<(Expr, String)> = exprs
                    .into_iter()
                    .map(|(e, n)| (e.map_columns(&position), n))
                    .collect();
                let narrowed = LogicalPlan::scan_output_schema(&scan_schema, &Some(used.clone()));
                LogicalPlan::Project {
                    input: Box::new(LogicalPlan::Scan {
                        table,
                        alias,
                        projection: Some(used),
                        filter,
                        schema: narrowed,
                    }),
                    exprs: new_exprs,
                    schema,
                }
            }
            other => LogicalPlan::Project {
                input: Box::new(other),
                exprs,
                schema,
            },
        }
    })
}

/// Apply `f` to every node, bottom-up.
fn map_children(plan: LogicalPlan, f: &dyn Fn(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    let rebuilt = match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(map_children(*input, f)),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(map_children(*input, f)),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(map_children(*left, f)),
            right: Box::new(map_children(*right, f)),
            kind,
            on,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(map_children(*input, f)),
            group_by,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(map_children(*input, f)),
            keys,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(map_children(*input, f)),
            limit,
            offset,
        },
        LogicalPlan::Union { left, right } => LogicalPlan::Union {
            left: Box::new(map_children(*left, f)),
            right: Box::new(map_children(*right, f)),
        },
        LogicalPlan::Extend {
            input,
            related,
            key_col,
            rating,
            as_name,
            schema,
        } => LogicalPlan::Extend {
            input: Box::new(map_children(*input, f)),
            related: Box::new(map_children(*related, f)),
            key_col,
            rating,
            as_name,
            schema,
        },
        LogicalPlan::Recommend {
            target,
            comparator,
            spec,
            schema,
        } => LogicalPlan::Recommend {
            target: Box::new(map_children(*target, f)),
            comparator: Box::new(map_children(*comparator, f)),
            spec,
            schema,
        },
        leaf => leaf,
    };
    f(rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::plan::PlanBuilder;
    use crate::row::row;
    use crate::schema::{Column, DataType, Schema};

    fn setup() -> Catalog {
        let c = Catalog::new();
        c.create_table(
            "t",
            Schema::qualified(
                "t",
                vec![
                    Column::not_null("id", DataType::Int),
                    Column::new("dep", DataType::Text),
                    Column::new("units", DataType::Int),
                ],
            ),
            vec![0],
        )
        .unwrap();
        c.create_table(
            "u",
            Schema::qualified(
                "u",
                vec![
                    Column::not_null("id", DataType::Int),
                    Column::new("t_id", DataType::Int),
                ],
            ),
            vec![0],
        )
        .unwrap();
        c.with_table_mut("t", |t| {
            t.insert(row![1i64, "CS", 5i64])?;
            t.insert(row![2i64, "HIST", 3i64])
        })
        .unwrap()
        .unwrap();
        c
    }

    #[test]
    fn constant_folding_runs_through_kernels() {
        // The rule folds via Expr::fold_kernel (one-row batch evaluation);
        // optimize() runs it under the debug-build soundness harness, so
        // a kernel-vs-row folding divergence would panic here.
        let c = setup();
        let plan = PlanBuilder::scan(&c, "t")
            .unwrap()
            .filter(
                Expr::col("units").gt(Expr::lit(1i64).add(Expr::lit(2i64).mul(Expr::lit(2i64)))),
            )
            .unwrap()
            .project(vec![(Expr::lit(10i64).add(Expr::lit(32i64)), "x")])
            .unwrap()
            .build();
        let opt = optimize(plan);
        let rendered = opt.explain();
        assert!(
            rendered.contains('5') && !rendered.contains('*'),
            "filter literals must fold to 5:\n{rendered}"
        );
        assert!(
            rendered.contains("42"),
            "projection must fold to 42:\n{rendered}"
        );
    }

    #[test]
    fn filter_merges_into_scan() {
        let c = setup();
        let plan = PlanBuilder::scan(&c, "t")
            .unwrap()
            .filter(Expr::col("units").gt(Expr::lit(3i64)))
            .unwrap()
            .build();
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Scan { filter, .. } => assert!(filter.is_some()),
            other => panic!("expected Scan, got {}", other.explain()),
        }
    }

    #[test]
    fn stacked_filters_merge() {
        let c = setup();
        let plan = PlanBuilder::scan(&c, "t")
            .unwrap()
            .filter(Expr::col("units").gt(Expr::lit(3i64)))
            .unwrap()
            .filter(Expr::col("dep").eq(Expr::lit("CS")))
            .unwrap()
            .build();
        let opt = optimize(plan);
        match &opt {
            LogicalPlan::Scan {
                filter: Some(f), ..
            } => {
                assert_eq!(f.split_conjunction().len(), 2);
            }
            other => panic!("expected Scan with merged filter, got {}", other.explain()),
        }
    }

    #[test]
    fn filter_splits_across_join() {
        let c = setup();
        let left = PlanBuilder::scan(&c, "t").unwrap();
        let right = PlanBuilder::scan(&c, "u").unwrap();
        let plan = left
            .join(
                right,
                JoinKind::Inner,
                Expr::col("t.id").eq(Expr::col("u.t_id")),
            )
            .unwrap()
            .filter(
                Expr::col("t.units")
                    .gt(Expr::lit(3i64))
                    .and(Expr::col("u.id").lt(Expr::lit(100i64))),
            )
            .unwrap()
            .build();
        let opt = optimize(plan);
        // Both conjuncts should have sunk into the scans.
        match &opt {
            LogicalPlan::Join { left, right, .. } => {
                assert!(matches!(
                    **left,
                    LogicalPlan::Scan {
                        filter: Some(_),
                        ..
                    }
                ));
                assert!(matches!(
                    **right,
                    LogicalPlan::Scan {
                        filter: Some(_),
                        ..
                    }
                ));
            }
            other => panic!("expected Join at root, got {}", other.explain()),
        }
    }

    #[test]
    fn left_outer_does_not_push_right() {
        let c = setup();
        let left = PlanBuilder::scan(&c, "t").unwrap();
        let right = PlanBuilder::scan(&c, "u").unwrap();
        let plan = left
            .join(
                right,
                JoinKind::LeftOuter,
                Expr::col("t.id").eq(Expr::col("u.t_id")),
            )
            .unwrap()
            .filter(Expr::col("u.id").lt(Expr::lit(100i64)))
            .unwrap()
            .build();
        let opt = optimize(plan);
        // Right-side predicate must stay above the join.
        assert!(matches!(opt, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn projection_prunes_scan() {
        let c = setup();
        let plan = PlanBuilder::scan(&c, "t")
            .unwrap()
            .project(vec![(Expr::col("dep"), "dep")])
            .unwrap()
            .build();
        let opt = optimize(plan);
        match &opt {
            LogicalPlan::Project { input, .. } => match &**input {
                LogicalPlan::Scan {
                    projection: Some(p),
                    ..
                } => assert_eq!(p, &vec![1]),
                other => panic!("expected pruned Scan, got {}", other.explain()),
            },
            other => panic!("expected Project, got {}", other.explain()),
        }
    }

    fn extend_setup() -> Catalog {
        let c = setup();
        c.create_table(
            "taken",
            Schema::qualified(
                "taken",
                vec![
                    Column::not_null("sid", DataType::Int),
                    Column::new("course", DataType::Int),
                ],
            ),
            vec![0],
        )
        .unwrap();
        c
    }

    fn extended(c: &Catalog) -> PlanBuilder {
        let related = PlanBuilder::scan(c, "taken").unwrap();
        PlanBuilder::scan(c, "t")
            .unwrap()
            .extend(related, "id", false, "nested")
            .unwrap()
    }

    #[test]
    fn filter_pushes_through_extend() {
        let c = extend_setup();
        let plan = extended(&c)
            .filter(Expr::col("units").gt(Expr::lit(3i64)))
            .unwrap()
            .build();
        let opt = optimize(plan);
        // The predicate only touches input columns → sinks into the input
        // scan; the Extend floats to the root.
        match &opt {
            LogicalPlan::Extend { input, .. } => assert!(matches!(
                **input,
                LogicalPlan::Scan {
                    filter: Some(_),
                    ..
                }
            )),
            other => panic!("expected Extend at root, got {}", other.explain()),
        }
    }

    #[test]
    fn filter_on_nested_column_stays_above_extend() {
        let c = extend_setup();
        // Column #3 is the appended nested attribute.
        let plan = extended(&c)
            .filter(Expr::col_idx(3).eq(Expr::col_idx(3)))
            .unwrap()
            .build();
        let opt = optimize(plan);
        assert!(
            matches!(opt, LogicalPlan::Filter { .. }),
            "got {}",
            opt.explain()
        );
    }

    #[test]
    fn filter_pushes_through_recommend_without_topk() {
        use crate::plan::{RecAggPlan, RecMethod, RecSpec};
        use crate::similarity::SetSim;
        let c = extend_setup();
        let mk_spec = |k| RecSpec {
            target_col: 3,
            comparator_col: 3,
            method: RecMethod::Set(SetSim::Jaccard),
            agg: RecAggPlan::Max,
            k,
            unbounded_ok: false,
            score_name: "score".into(),
            exclude_seen: None,
        };
        let plan = extended(&c)
            .recommend(extended(&c), mk_spec(None))
            .unwrap()
            .filter(Expr::col("units").gt(Expr::lit(3i64)))
            .unwrap()
            .build();
        match optimize(plan) {
            LogicalPlan::Recommend { target, .. } => assert!(
                matches!(*target, LogicalPlan::Extend { .. }),
                "target-only filter should have sunk below Recommend"
            ),
            other => panic!("expected Recommend at root, got {}", other.explain()),
        }
        // With top-k, pre-filtering would change which rows make the cut:
        // the filter must stay above.
        let plan = extended(&c)
            .recommend(extended(&c), mk_spec(Some(5)))
            .unwrap()
            .filter(Expr::col("units").gt(Expr::lit(3i64)))
            .unwrap()
            .build();
        let opt = optimize(plan);
        assert!(
            matches!(opt, LogicalPlan::Filter { .. }),
            "got {}",
            opt.explain()
        );
    }

    #[test]
    fn dead_extend_eliminated_under_projection() {
        let c = extend_setup();
        let plan = extended(&c)
            .project(vec![(Expr::col("id"), "id"), (Expr::col("dep"), "dep")])
            .unwrap()
            .build();
        let opt = optimize(plan);
        // No projection expression reads the nested column → the Extend
        // (and its nest-map build) disappears entirely.
        fn has_extend(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Extend { .. } => true,
                LogicalPlan::Project { input, .. }
                | LogicalPlan::Filter { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. } => has_extend(input),
                _ => false,
            }
        }
        assert!(!has_extend(&opt), "got {}", opt.explain());
        // But a projection that does read it keeps the Extend.
        let plan = extended(&c)
            .project(vec![(Expr::col("nested"), "nested")])
            .unwrap()
            .build();
        let opt = optimize(plan);
        assert!(has_extend(&opt), "got {}", opt.explain());
    }

    #[test]
    fn optimizer_recurses_into_extend_subtrees() {
        let c = extend_setup();
        // A filter stacked inside the related side must still merge into
        // its scan (regression guard: map_children must recurse into
        // Extend/Recommend children, not treat them as leaves).
        let related = PlanBuilder::scan(&c, "taken")
            .unwrap()
            .filter(Expr::col("course").gt(Expr::lit(0i64)))
            .unwrap();
        let plan = PlanBuilder::scan(&c, "t")
            .unwrap()
            .extend(related, "id", false, "nested")
            .unwrap()
            .build();
        match optimize(plan) {
            LogicalPlan::Extend { related, .. } => assert!(
                matches!(
                    *related,
                    LogicalPlan::Scan {
                        filter: Some(_),
                        ..
                    }
                ),
                "related-side filter should merge into its scan"
            ),
            other => panic!("expected Extend, got {}", other.explain()),
        }
    }

    #[test]
    fn optimize_preserves_results() {
        use crate::catalog::Database;
        let db = Database::new();
        db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, dep TEXT, units INT)")
            .unwrap();
        for i in 0..50 {
            db.execute_sql(&format!(
                "INSERT INTO t VALUES ({i}, '{}', {})",
                if i % 2 == 0 { "CS" } else { "HIST" },
                i % 6
            ))
            .unwrap();
        }
        let plan = PlanBuilder::scan(&db.catalog(), "t")
            .unwrap()
            .filter(Expr::col("units").gt(Expr::lit(2i64)))
            .unwrap()
            .project(vec![(Expr::col("id"), "id"), (Expr::col("units"), "units")])
            .unwrap()
            .build();
        let raw = db.run_plan_unoptimized(&plan).unwrap();
        let opt = db.run_plan(&plan).unwrap();
        let mut a = raw.rows.clone();
        let mut b = opt.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "produced an invalid plan")]
    fn soundness_harness_catches_invalid_plans() {
        // Simulate a rule that emitted an ill-formed plan (predicate
        // references a column that does not exist); the post-rule check
        // must trip and name the rule.
        let c = setup();
        let scan = PlanBuilder::scan(&c, "t").unwrap().build();
        let schema = scan.schema().clone();
        let bad = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: Expr::col_idx(99).eq(Expr::lit(1i64)),
        };
        assert_rule_sound("buggy_rule", &bad, &schema);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "changed the root output schema")]
    fn soundness_harness_catches_schema_drift() {
        let c = setup();
        let narrowed = PlanBuilder::scan(&c, "t")
            .unwrap()
            .select_columns(&["id"])
            .unwrap()
            .build();
        let wide = PlanBuilder::scan(&c, "t").unwrap().build();
        assert_rule_sound("buggy_rule", &narrowed, wide.schema());
    }

    #[test]
    fn invalid_input_plans_pass_through_without_panicking() {
        // optimize() must not panic on a plan that was already invalid —
        // that is the caller's bug, reported downstream, not a rule's.
        let c = setup();
        let scan = PlanBuilder::scan(&c, "t").unwrap().build();
        let bad = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: Expr::col_idx(99).eq(Expr::lit(1i64)),
        };
        let _ = optimize(bad);
    }
}
