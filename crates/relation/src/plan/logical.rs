//! Logical plan nodes.

use std::fmt;

use crate::expr::Expr;
use crate::row::Row;
use crate::schema::{Column, DataType, Schema};

use super::rec::RecSpec;

/// Join kinds supported by the engine. `Inner` covers the FlexRecs compile
/// target; `LeftOuter` is needed by CourseRank's requirement audit ("show
/// each requirement, matched courses or NULL").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    Count,
    /// COUNT(*) — counts rows regardless of NULLs.
    CountStar,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFn {
    pub fn sql(&self) -> &'static str {
        match self {
            AggFn::Count | AggFn::CountStar => "COUNT",
            AggFn::Sum => "SUM",
            AggFn::Avg => "AVG",
            AggFn::Min => "MIN",
            AggFn::Max => "MAX",
        }
    }

    /// Output type given the input type.
    pub fn output_type(&self, input: DataType) -> DataType {
        match self {
            AggFn::Count | AggFn::CountStar => DataType::Int,
            AggFn::Avg => DataType::Float,
            AggFn::Sum => match input {
                DataType::Int => DataType::Int,
                _ => DataType::Float,
            },
            AggFn::Min | AggFn::Max => input,
        }
    }
}

/// One aggregate in an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFn,
    /// Argument expression; ignored for `CountStar`.
    pub arg: Expr,
    pub distinct: bool,
    /// Output column name.
    pub name: String,
}

/// A sort key: expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: Expr,
    pub desc: bool,
}

/// The logical plan tree. All contained expressions are bound (positional)
/// against the node's **input** schema; `schema` is the node's output.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a named table. `filter` holds pushed-down predicates (bound
    /// against the full table schema); `projection` selects column
    /// positions to emit (None = all).
    Scan {
        table: String,
        alias: Option<String>,
        projection: Option<Vec<usize>>,
        filter: Option<Expr>,
        schema: Schema,
    },
    /// Filter rows by a predicate.
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    /// Compute output expressions.
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<(Expr, String)>,
        schema: Schema,
    },
    /// Join two inputs on a predicate over the concatenated schema.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        kind: JoinKind,
        on: Expr,
        schema: Schema,
    },
    /// Group-by + aggregates. Output columns: group keys then aggregates.
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<Expr>,
        aggs: Vec<AggExpr>,
        schema: Schema,
    },
    /// Sort by keys.
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<SortKey>,
    },
    /// Limit/offset.
    Limit {
        input: Box<LogicalPlan>,
        limit: Option<usize>,
        offset: usize,
    },
    /// Literal rows.
    Values { schema: Schema, rows: Vec<Row> },
    /// Bag union (schemas must be arity/type compatible).
    Union {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    /// The FlexRecs ε operator: nest related tuples as a set/ratings
    /// attribute appended to each input row. `related` produces rows of
    /// shape `[fk, key]` (→ Set of keys) or `[fk, key, rating]` (→ Ratings
    /// key → avg rating); for each input row, related rows whose `fk`
    /// equals the input's `key_col` value are collected. Keeping the
    /// related side a sub-plan lets the optimizer prune and push filters
    /// into its scan like any other input.
    Extend {
        input: Box<LogicalPlan>,
        related: Box<LogicalPlan>,
        /// Column of `input` the related `fk` matches.
        key_col: usize,
        /// True → Ratings attribute, false → Set attribute.
        rating: bool,
        /// Name of the appended column.
        as_name: String,
        schema: Schema,
    },
    /// The FlexRecs ▷ operator: score each target row against all
    /// comparator rows via a similarity method, blend the per-comparator
    /// scores, drop non-positive scores, sort descending, and optionally
    /// keep the top k. Appends the score as a Float column.
    Recommend {
        target: Box<LogicalPlan>,
        comparator: Box<LogicalPlan>,
        spec: RecSpec,
        schema: Schema,
    },
}

impl LogicalPlan {
    /// Output schema of this node.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. } => schema,
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { schema, .. } => schema,
            LogicalPlan::Join { schema, .. } => schema,
            LogicalPlan::Aggregate { schema, .. } => schema,
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::Values { schema, .. } => schema,
            LogicalPlan::Union { left, .. } => left.schema(),
            LogicalPlan::Extend { schema, .. } => schema,
            LogicalPlan::Recommend { schema, .. } => schema,
        }
    }

    /// Effective scan schema after projection (helper used by exec).
    pub fn scan_output_schema(full: &Schema, projection: &Option<Vec<usize>>) -> Schema {
        match projection {
            None => full.clone(),
            Some(cols) => {
                let mut s = Schema::default();
                for &i in cols {
                    s.push(
                        Column {
                            name: full.column(i).name.clone(),
                            data_type: full.column(i).data_type,
                            nullable: full.column(i).nullable,
                        },
                        full.qualifier(i).map(str::to_owned),
                    );
                }
                s
            }
        }
    }

    /// Stable-within-a-process fingerprint of the plan's structure, used as
    /// a cache key (combined with table versions) by result caches. Two
    /// structurally identical plans fingerprint identically.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{self:?}").hash(&mut h);
        h.finish()
    }

    /// Pretty indented EXPLAIN-style rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        use fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan {
                table,
                alias,
                projection,
                filter,
                ..
            } => {
                let _ = write!(out, "{pad}Scan {table}");
                if let Some(a) = alias {
                    let _ = write!(out, " AS {a}");
                }
                if let Some(p) = projection {
                    let _ = write!(out, " cols={p:?}");
                }
                if let Some(f) = filter {
                    let _ = write!(out, " filter={f}");
                }
                out.push('\n');
            }
            LogicalPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter {predicate}");
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                let _ = writeln!(out, "{pad}Project {}", cols.join(", "));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
                ..
            } => {
                let _ = writeln!(out, "{pad}{kind:?}Join on {on}");
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                let g: Vec<String> = group_by.iter().map(ToString::to_string).collect();
                let a: Vec<String> = aggs
                    .iter()
                    .map(|a| format!("{}({}) AS {}", a.func.sql(), a.arg, a.name))
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}Aggregate group=[{}] aggs=[{}]",
                    g.join(", "),
                    a.join(", ")
                );
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Sort { input, keys } => {
                let k: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{}{}", k.expr, if k.desc { " DESC" } else { "" }))
                    .collect();
                let _ = writeln!(out, "{pad}Sort {}", k.join(", "));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Limit {
                input,
                limit,
                offset,
            } => {
                let _ = writeln!(out, "{pad}Limit limit={limit:?} offset={offset}");
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Values { rows, .. } => {
                let _ = writeln!(out, "{pad}Values ({} rows)", rows.len());
            }
            LogicalPlan::Union { left, right } => {
                let _ = writeln!(out, "{pad}Union");
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            LogicalPlan::Extend {
                input,
                related,
                key_col,
                rating,
                as_name,
                ..
            } => {
                let kind = if *rating { "ratings" } else { "set" };
                let _ = writeln!(out, "{pad}Extend {kind} AS {as_name} key=#{key_col}");
                input.explain_into(depth + 1, out);
                related.explain_into(depth + 1, out);
            }
            LogicalPlan::Recommend {
                target,
                comparator,
                spec,
                ..
            } => {
                let _ = writeln!(out, "{pad}Recommend {}", spec.describe());
                target.explain_into(depth + 1, out);
                comparator.explain_into(depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    #[test]
    fn agg_output_types() {
        assert_eq!(AggFn::Count.output_type(DataType::Text), DataType::Int);
        assert_eq!(AggFn::Avg.output_type(DataType::Int), DataType::Float);
        assert_eq!(AggFn::Sum.output_type(DataType::Int), DataType::Int);
        assert_eq!(AggFn::Sum.output_type(DataType::Float), DataType::Float);
        assert_eq!(AggFn::Min.output_type(DataType::Text), DataType::Text);
    }

    #[test]
    fn scan_output_schema_projects() {
        let full = Schema::qualified(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Text),
                Column::new("c", DataType::Float),
            ],
        );
        let s = LogicalPlan::scan_output_schema(&full, &Some(vec![2, 0]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.column(0).name, "c");
        assert_eq!(s.column(1).name, "a");
        assert_eq!(s.qualifier(0), Some("t"));
    }

    #[test]
    fn explain_renders_tree() {
        let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(LogicalPlan::Scan {
                    table: "t".into(),
                    alias: None,
                    projection: None,
                    filter: None,
                    schema: schema.clone(),
                }),
                predicate: Expr::col_idx(0).gt(Expr::lit(1i64)),
            }),
            limit: Some(10),
            offset: 0,
        };
        let text = plan.explain();
        assert!(text.contains("Limit"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Scan t"));
        // Indentation increases with depth.
        assert!(text.lines().nth(2).unwrap().starts_with("    "));
    }
}
