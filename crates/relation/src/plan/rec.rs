//! Parameterization of the plan-level `Recommend` operator.
//!
//! The paper's recommend operator (▷ in Figure 5) "takes as input a set of
//! tuples and ranks them by comparing them to another set of tuples",
//! calling "functions in a library that implement common tasks for
//! recommendations". [`RecMethod`] selects the library function;
//! [`RecAggPlan`] says how per-comparator scores blend into one score per
//! target. Unlike the FlexRecs workflow algebra (which names attributes),
//! everything here is **positional** — plan expressions are bound.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::similarity::{RatingsSim, SetSim, TextSim};

/// How the recommend operator scores a target tuple against one comparator
/// tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecMethod {
    /// Similarity between two scalar text attributes (Figure 5a).
    Text(TextSim),
    /// Similarity between two set-valued attributes (e.g. courses taken).
    Set(SetSim),
    /// Similarity between two ratings attributes (Figure 5b, lower
    /// operator). `min_common` gates spurious matches.
    Ratings { sim: RatingsSim, min_common: usize },
    /// The comparator tuple's ratings attribute is *looked up* at the
    /// target's key attribute: score = comparator.ratings[target.key]
    /// (Figure 5b, upper operator — "a course's score is the average of
    /// the ratings given by the similar students").
    RatingLookup,
}

impl RecMethod {
    pub fn name(&self) -> String {
        match self {
            RecMethod::Text(t) => format!("text:{}", t.name()),
            RecMethod::Set(s) => format!("set:{}", s.name()),
            RecMethod::Ratings { sim, .. } => format!("ratings:{}", sim.name()),
            RecMethod::RatingLookup => "rating_lookup".into(),
        }
    }
}

/// How per-comparator scores combine into the target's final score.
/// Positional twin of the workflow layer's named `RecAgg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecAggPlan {
    /// Average of non-missing per-comparator scores.
    Avg,
    Sum,
    Max,
    /// Weighted average, weights drawn from a comparator column (typically
    /// the score column a lower recommend operator appended).
    WeightedAvg {
        weight_col: usize,
    },
}

impl fmt::Display for RecAggPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecAggPlan::Avg => write!(f, "avg"),
            RecAggPlan::Sum => write!(f, "sum"),
            RecAggPlan::Max => write!(f, "max"),
            RecAggPlan::WeightedAvg { weight_col } => write!(f, "wavg[#{weight_col}]"),
        }
    }
}

/// Full parameterization of a plan-level recommend operator. All column
/// references are positions: `target_col`/`exclude_seen.0` into the target
/// schema, `comparator_col`/`exclude_seen.1`/weights into the comparator
/// schema.
#[derive(Debug, Clone, PartialEq)]
pub struct RecSpec {
    /// Target column to compare (or the key column for
    /// [`RecMethod::RatingLookup`]).
    pub target_col: usize,
    /// Comparator column.
    pub comparator_col: usize,
    pub method: RecMethod,
    pub agg: RecAggPlan,
    /// Keep only the top-k scored targets (None = all with score > 0).
    pub k: Option<usize>,
    /// The author vouches for an unbounded output (`k: None`): the
    /// consumer aggregates or truncates downstream, so the linter's
    /// W106 unbounded-recommend warning is acknowledged and suppressed.
    pub unbounded_ok: bool,
    /// Name of the appended score column.
    pub score_name: String,
    /// Drop targets whose `(target column)` value appears among the keys of
    /// a comparator set/ratings column: `(target_col, comparator_col)`.
    pub exclude_seen: Option<(usize, usize)>,
}

impl RecSpec {
    /// Render for EXPLAIN output.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "#{} ~ #{} method={} agg={}",
            self.target_col,
            self.comparator_col,
            self.method.name(),
            self.agg
        );
        if let Some(k) = self.k {
            s.push_str(&format!(" top={k}"));
        }
        if let Some((t, c)) = self.exclude_seen {
            s.push_str(&format!(" exclude_seen=(#{t}, #{c})"));
        }
        s.push_str(&format!(" AS {}", self.score_name));
        s
    }
}
