//! Static analysis over [`LogicalPlan`]s: a validator/typechecker plus
//! dataflow analyses.
//!
//! Nothing in the IR's construction enforces that a plan is well-formed —
//! a buggy optimizer rule or a miscompiled workflow would otherwise only
//! surface as a wrong result or a runtime panic. This module checks the
//! structural and type invariants every executable plan must satisfy and
//! reports violations as machine-readable [`Diagnostic`]s (code, severity,
//! operator path), so they can be surfaced by the workflow linter, by
//! `crlint`, and by the optimizer's debug-build soundness harness.
//!
//! Three entry points:
//!
//! * [`validate`] — invariant errors only, no catalog access (what the
//!   optimizer harness runs after every rewrite rule, and what workflow
//!   compilation runs after lowering — lowering resolves tables itself,
//!   so the catalog cross-checks cannot add information there);
//! * [`validate_against`] — also cross-checks scans against the live
//!   catalog (projection indices, scan filters bound to the full table
//!   schema, unknown tables);
//! * [`analyze`] — validation plus dataflow warnings: contradictory and
//!   always-true filters, dead operators, unused extends, cartesian
//!   joins, unbounded recommends.
//!
//! The checks are *local*: each operator's stored schema is compared
//! against its children's stored schemas by reference, so a full pass is a
//! single tree walk with no schema construction — cheap enough to run
//! unconditionally after lowering (< 5% of compile time).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::catalog::Catalog;
use crate::expr::{BinOp, Expr};
use crate::schema::{DataType, Schema};
use crate::value::Value;

use super::builder::infer_expr_type;
use super::logical::LogicalPlan;
use super::rec::{RecAggPlan, RecMethod};

// ---------------------------------------------------------------------------
// Diagnostic codes
// ---------------------------------------------------------------------------

/// Column reference out of range for the operator's input width.
pub const E_COL_RANGE: &str = "E001";
/// Expression contains an unbound (named) column reference.
pub const E_UNBOUND_NAME: &str = "E002";
/// Predicate or join condition is not boolean-typed.
pub const E_PRED_TYPE: &str = "E003";
/// Operator's stored output schema has the wrong arity.
pub const E_SCHEMA_ARITY: &str = "E004";
/// Operator's stored output schema disagrees with its inputs on a type.
pub const E_SCHEMA_TYPE: &str = "E005";
/// Join condition references a nested (Set/Ratings) column.
pub const E_JOIN_KEY_NESTED: &str = "E006";
/// Extend's related input does not have the required arity (2, or 3 with
/// ratings).
pub const E_EXTEND_ARITY: &str = "E007";
/// Extend key/fk/rating column is not scalar-typed.
pub const E_EXTEND_KEY_TYPE: &str = "E008";
/// Extend's appended output column is malformed (wrong name or type).
pub const E_EXTEND_OUTPUT: &str = "E009";
/// Recommend spec column out of range.
pub const E_REC_RANGE: &str = "E010";
/// Recommend method/aggregate type discipline violated.
pub const E_REC_TYPES: &str = "E011";
/// Recommend's appended score column is malformed (wrong name or type).
pub const E_REC_OUTPUT: &str = "E012";
/// Union branches have incompatible schemas.
pub const E_UNION_MISMATCH: &str = "E013";
/// Scan projection index out of range for the table schema.
pub const E_SCAN_PROJECTION: &str = "E014";
/// Values row arity disagrees with the stored schema.
pub const E_VALUES_ARITY: &str = "E015";
/// Scan references a table the catalog does not know.
pub const E_UNKNOWN_TABLE: &str = "E016";

/// Filter predicate can never be true (contradiction).
pub const W_CONTRADICTION: &str = "W101";
/// Filter predicate is always true (redundant operator).
pub const W_ALWAYS_TRUE: &str = "W102";
/// Operator can never produce rows (e.g. LIMIT 0).
pub const W_DEAD_OPERATOR: &str = "W103";
/// Extend's nested column is never consumed above it (dead work).
pub const W_UNUSED_EXTEND: &str = "W104";
/// Join condition does not relate the two sides (cartesian product).
pub const W_CARTESIAN_JOIN: &str = "W105";
/// Recommend has no top-k bound (unbounded output).
pub const W_UNBOUNDED_REC: &str = "W106";

/// The full diagnostic code table: `(code, short description)`. Rendered by
/// `crlint --codes` and mirrored in DESIGN.md §10.
pub fn code_table() -> &'static [(&'static str, &'static str)] {
    &[
        (E_COL_RANGE, "column reference out of range"),
        (E_UNBOUND_NAME, "unbound named column in bound plan"),
        (E_PRED_TYPE, "predicate/join condition not boolean"),
        (E_SCHEMA_ARITY, "stored output schema has wrong arity"),
        (E_SCHEMA_TYPE, "stored output schema type mismatch"),
        (E_JOIN_KEY_NESTED, "join condition uses nested column"),
        (E_EXTEND_ARITY, "extend related input wrong arity"),
        (E_EXTEND_KEY_TYPE, "extend key/fk column not scalar"),
        (E_EXTEND_OUTPUT, "extend appended column malformed"),
        (E_REC_RANGE, "recommend spec column out of range"),
        (E_REC_TYPES, "recommend method type discipline violated"),
        (E_REC_OUTPUT, "recommend score column malformed"),
        (E_UNION_MISMATCH, "union branch schemas incompatible"),
        (E_SCAN_PROJECTION, "scan projection index out of range"),
        (E_VALUES_ARITY, "values row arity mismatch"),
        (E_UNKNOWN_TABLE, "scan references unknown table"),
        (W_CONTRADICTION, "filter predicate can never be true"),
        (W_ALWAYS_TRUE, "filter predicate is always true"),
        (W_DEAD_OPERATOR, "operator can never produce rows"),
        (W_UNUSED_EXTEND, "extend's nested column never consumed"),
        (W_CARTESIAN_JOIN, "join condition relates only one side"),
        (W_UNBOUNDED_REC, "recommend has no top-k bound"),
    ]
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One validator finding: a stable code, a severity, the root-to-operator
/// path (`Recommend.target.Filter`), and a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub code: &'static str,
    pub severity: Severity,
    pub path: String,
    pub message: String,
}

impl Diagnostic {
    pub fn error(code: &'static str, path: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            path: path.into(),
            message: message.into(),
        }
    }

    pub fn warning(
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            path: path.into(),
            message: message.into(),
        }
    }

    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at {}: {}",
            self.code, self.severity, self.path, self.message
        )
    }
}

/// All diagnostics from one validation/analysis pass.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    pub diagnostics: Vec<Diagnostic>,
}

impl ValidationReport {
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }

    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }

    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.is_error())
    }

    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.errors().next()
    }

    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if a given code was reported.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "plan is valid");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

struct VMetrics {
    runs: Arc<cr_obs::Counter>,
    errors: Arc<cr_obs::Counter>,
    warnings: Arc<cr_obs::Counter>,
}

fn vmetrics() -> &'static VMetrics {
    static M: OnceLock<VMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = cr_obs::Registry::global();
        VMetrics {
            runs: r.counter("plan.validate.runs"),
            errors: r.counter("plan.validate.errors"),
            warnings: r.counter("plan.validate.warnings"),
        }
    })
}

fn record(report: &ValidationReport) {
    if !cr_obs::enabled() {
        return;
    }
    let m = vmetrics();
    m.runs.inc();
    if !report.diagnostics.is_empty() {
        m.errors.add(report.errors().count() as u64);
        m.warnings.add(report.warnings().count() as u64);
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Check every structural and type invariant the executor relies on,
/// without catalog access (scan internals that need the full table schema
/// are skipped). Errors only.
pub fn validate(plan: &LogicalPlan) -> ValidationReport {
    let mut c = Checker {
        catalog: None,
        warn: false,
        diags: Vec::new(),
        stack: vec![op_name(plan)],
        scratch: Vec::new(),
    };
    c.visit(plan);
    let report = ValidationReport {
        diagnostics: c.diags,
    };
    record(&report);
    report
}

/// [`validate`] plus catalog-backed scan checks: unknown tables, projection
/// indices against the full table schema, and scan filters (which bind
/// against the *full* schema, not the projected output).
pub fn validate_against(plan: &LogicalPlan, catalog: &Catalog) -> ValidationReport {
    let mut c = Checker {
        catalog: Some(catalog),
        warn: false,
        diags: Vec::new(),
        stack: vec![op_name(plan)],
        scratch: Vec::new(),
    };
    c.visit(plan);
    let report = ValidationReport {
        diagnostics: c.diags,
    };
    record(&report);
    report
}

/// Full analysis: validation errors plus dataflow warnings (contradictory
/// and always-true filters, dead operators, unused extends, cartesian
/// joins, unbounded recommends).
pub fn analyze(plan: &LogicalPlan, catalog: Option<&Catalog>) -> ValidationReport {
    let mut c = Checker {
        catalog,
        warn: true,
        diags: Vec::new(),
        stack: vec![op_name(plan)],
        scratch: Vec::new(),
    };
    c.visit(plan);
    // The unused-extend analysis needs top-down required-column sets, so it
    // runs as its own pass (only sensible on structurally valid plans).
    if !c.diags.iter().any(Diagnostic::is_error) {
        observe(plan, None, &mut vec![op_name(plan)], &mut c.diags);
    }
    let report = ValidationReport {
        diagnostics: c.diags,
    };
    record(&report);
    report
}

fn op_name(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Scan { .. } => "Scan",
        LogicalPlan::Filter { .. } => "Filter",
        LogicalPlan::Project { .. } => "Project",
        LogicalPlan::Join { .. } => "Join",
        LogicalPlan::Aggregate { .. } => "Aggregate",
        LogicalPlan::Sort { .. } => "Sort",
        LogicalPlan::Limit { .. } => "Limit",
        LogicalPlan::Values { .. } => "Values",
        LogicalPlan::Union { .. } => "Union",
        LogicalPlan::Extend { .. } => "Extend",
        LogicalPlan::Recommend { .. } => "Recommend",
    }
}

fn is_nested(dt: DataType) -> bool {
    matches!(dt, DataType::Set | DataType::Ratings)
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

struct Checker<'a> {
    catalog: Option<&'a Catalog>,
    warn: bool,
    diags: Vec<Diagnostic>,
    /// Root-to-current-operator path segments (op names and edge labels,
    /// all `'static`). Rendered into a `String` only when a diagnostic
    /// actually fires, so the clean-plan hot path never allocates paths.
    stack: Vec<&'static str>,
    /// Reused column-index buffer for the checks that need a full list.
    scratch: Vec<usize>,
}

impl Checker<'_> {
    fn error(&mut self, code: &'static str, message: String) {
        let path = self.stack.join(".");
        self.diags.push(Diagnostic::error(code, path, message));
    }

    fn warning(&mut self, code: &'static str, message: String) {
        if self.warn {
            let path = self.stack.join(".");
            self.diags.push(Diagnostic::warning(code, path, message));
        }
    }

    fn visit_child(&mut self, child: &LogicalPlan, edge: Option<&'static str>) {
        if let Some(e) = edge {
            self.stack.push(e);
        }
        self.stack.push(op_name(child));
        self.visit(child);
        self.stack.pop();
        if edge.is_some() {
            self.stack.pop();
        }
    }

    /// Bounds + boundness check. Returns true when the expression is safe
    /// to run type inference on.
    fn check_expr(&mut self, e: &Expr, schema: &Schema, what: &str) -> bool {
        let (max_col, unbound) = e.binding_profile();
        if unbound {
            self.error(
                E_UNBOUND_NAME,
                format!("{what} contains an unbound column name: {e}"),
            );
            return false;
        }
        if let Some(bad) = max_col.filter(|&c| c >= schema.len()) {
            self.error(
                E_COL_RANGE,
                format!(
                    "{what} references column #{bad} but the input has only {} columns",
                    schema.len()
                ),
            );
            return false;
        }
        true
    }

    /// [`Checker::check_expr`] plus the boolean-type requirement for
    /// predicates and join conditions. A bare NULL literal is accepted
    /// (evaluates to no-match).
    fn check_predicate(&mut self, e: &Expr, schema: &Schema, what: &str) {
        if !self.check_expr(e, schema, what) {
            return;
        }
        if matches!(e, Expr::Literal(Value::Null)) {
            return;
        }
        let dt = infer_expr_type(e, schema);
        if dt != DataType::Bool {
            self.error(
                E_PRED_TYPE,
                format!("{what} has type {} (expected Bool): {e}", dt.sql_name()),
            );
        }
    }

    /// Contradiction / tautology warnings for a (bound, in-range) filter
    /// predicate.
    fn warn_predicate(&mut self, e: &Expr) {
        if !self.warn {
            return;
        }
        match e.fold() {
            Expr::Literal(Value::Bool(false)) | Expr::Literal(Value::Null) => {
                self.warning(
                    W_CONTRADICTION,
                    format!("predicate folds to FALSE — the operator produces no rows: {e}"),
                );
                return;
            }
            Expr::Literal(Value::Bool(true)) => {
                self.warning(
                    W_ALWAYS_TRUE,
                    format!("predicate folds to TRUE — the filter is redundant: {e}"),
                );
                return;
            }
            _ => {}
        }
        self.warn_eq_contradiction(&e.split_conjunction());
    }

    /// `x = a AND x = b` with distinct literals can never hold. The
    /// conjuncts may come from one predicate or a stack of filters.
    fn warn_eq_contradiction(&mut self, conjuncts: &[Expr]) {
        let mut eqs: Vec<(usize, Value)> = Vec::new();
        for part in conjuncts {
            if let Expr::Binary {
                op: BinOp::Eq,
                left,
                right,
            } = part
            {
                match (&**left, &**right) {
                    (Expr::Column(i), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(i))
                        if !v.is_null() =>
                    {
                        eqs.push((*i, v.clone()))
                    }
                    _ => {}
                }
            }
        }
        for (i, (col, v)) in eqs.iter().enumerate() {
            if eqs[..i].iter().any(|(c2, v2)| c2 == col && v2 != v) {
                self.warning(
                    W_CONTRADICTION,
                    format!("conjunction requires column #{col} to equal two distinct values"),
                );
                return;
            }
        }
    }

    fn visit(&mut self, plan: &LogicalPlan) {
        match plan {
            LogicalPlan::Scan {
                table,
                projection,
                filter,
                schema,
                ..
            } => {
                if let Some(p) = projection {
                    if p.len() != schema.len() {
                        self.error(
                            E_SCHEMA_ARITY,
                            format!(
                                "scan projects {} columns but its schema has {}",
                                p.len(),
                                schema.len()
                            ),
                        );
                    }
                }
                match self.catalog {
                    // Borrow the full table schema in place — cloning it per
                    // scan would dominate validation time.
                    Some(cat) => {
                        let known = cat.with_table(table, |t| {
                            let full = t.schema();
                            if let Some(p) = projection {
                                for &i in p {
                                    if i >= full.len() {
                                        self.error(
                                            E_SCAN_PROJECTION,
                                            format!(
                                            "projection index {i} out of range for table {table} \
                                             ({} columns)",
                                            full.len()
                                        ),
                                        );
                                    }
                                }
                                if p.len() == schema.len() {
                                    for (out_i, &src_i) in p.iter().enumerate() {
                                        if src_i < full.len()
                                            && full.column(src_i).data_type
                                                != schema.column(out_i).data_type
                                        {
                                            self.error(
                                                E_SCHEMA_TYPE,
                                                format!(
                                                    "scan output column {out_i} is {} but table \
                                                 column {src_i} is {}",
                                                    schema.column(out_i).data_type.sql_name(),
                                                    full.column(src_i).data_type.sql_name()
                                                ),
                                            );
                                        }
                                    }
                                }
                            } else if full.len() != schema.len() {
                                self.error(
                                    E_SCHEMA_ARITY,
                                    format!(
                                        "unprojected scan schema has {} columns but table {table} \
                                     has {}",
                                        schema.len(),
                                        full.len()
                                    ),
                                );
                            }
                            // Scan filters bind against the FULL table schema.
                            if let Some(f) = filter {
                                self.check_predicate(f, full, "scan filter");
                                self.warn_predicate(f);
                            }
                        });
                        if known.is_err() {
                            self.error(E_UNKNOWN_TABLE, format!("unknown table {table}"));
                        }
                    }
                    None => {
                        // Without a catalog the full schema is only known
                        // when there is no projection (output == full).
                        if projection.is_none() {
                            if let Some(f) = filter {
                                self.check_predicate(f, schema, "scan filter");
                                self.warn_predicate(f);
                            }
                        }
                    }
                }
            }

            LogicalPlan::Filter { input, predicate } => {
                self.visit_child(input, None);
                self.check_predicate(predicate, input.schema(), "filter predicate");
                self.warn_predicate(predicate);
                // A contradiction may span a *stack* of filters (workflow
                // lowering emits one Filter per Select step); check the
                // combined conjunction from the outermost filter only.
                if self.warn && matches!(**input, LogicalPlan::Filter { .. }) {
                    let mut conjuncts = predicate.split_conjunction();
                    let mut cur: &LogicalPlan = input;
                    while let LogicalPlan::Filter { input, predicate } = cur {
                        conjuncts.extend(predicate.split_conjunction());
                        cur = input;
                    }
                    self.warn_eq_contradiction(&conjuncts);
                }
            }

            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                self.visit_child(input, None);
                if schema.len() != exprs.len() {
                    self.error(
                        E_SCHEMA_ARITY,
                        format!(
                            "projection has {} expressions but its schema has {} columns",
                            exprs.len(),
                            schema.len()
                        ),
                    );
                    return;
                }
                for (i, (e, name)) in exprs.iter().enumerate() {
                    if !self.check_expr(e, input.schema(), "projection expression") {
                        continue;
                    }
                    let dt = infer_expr_type(e, input.schema());
                    if schema.column(i).data_type != dt {
                        self.error(
                            E_SCHEMA_TYPE,
                            format!(
                                "projection column {i} ({name}) declared {} but expression {e} \
                                 has type {}",
                                schema.column(i).data_type.sql_name(),
                                dt.sql_name()
                            ),
                        );
                    }
                }
            }

            LogicalPlan::Join {
                left,
                right,
                on,
                schema,
                ..
            } => {
                self.visit_child(left, Some("left"));
                self.visit_child(right, Some("right"));
                let lw = left.schema().len();
                let rw = right.schema().len();
                if schema.len() != lw + rw {
                    self.error(
                        E_SCHEMA_ARITY,
                        format!(
                            "join schema has {} columns but its sides have {lw} + {rw}",
                            schema.len()
                        ),
                    );
                    return;
                }
                for i in 0..lw + rw {
                    let side = if i < lw {
                        left.schema().column(i)
                    } else {
                        right.schema().column(i - lw)
                    };
                    if schema.column(i).data_type != side.data_type {
                        self.error(
                            E_SCHEMA_TYPE,
                            format!(
                                "join output column {i} is {} but the input column is {}",
                                schema.column(i).data_type.sql_name(),
                                side.data_type.sql_name()
                            ),
                        );
                    }
                }
                self.check_predicate(on, schema, "join condition");
                // Joins are rare enough per plan that the column list is
                // collected into a reused scratch buffer, not a fresh Vec.
                let mut cols = std::mem::take(&mut self.scratch);
                cols.clear();
                on.referenced_columns(&mut cols);
                for &c in &cols {
                    if c < schema.len() && is_nested(schema.column(c).data_type) {
                        self.error(
                            E_JOIN_KEY_NESTED,
                            format!(
                                "join condition references nested column #{c} ({}); join keys \
                                 must be scalar",
                                schema.column(c).name
                            ),
                        );
                    }
                }
                if lw > 0 && rw > 0 {
                    let touches_left = cols.iter().any(|&c| c < lw);
                    let touches_right = cols.iter().any(|&c| c >= lw);
                    if !(touches_left && touches_right) {
                        self.warning(
                            W_CARTESIAN_JOIN,
                            "join condition does not relate the two sides (cartesian product)"
                                .to_owned(),
                        );
                    }
                }
                self.scratch = cols;
            }

            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                schema,
            } => {
                self.visit_child(input, None);
                let is = input.schema();
                let mut ok = Vec::with_capacity(group_by.len() + aggs.len());
                for e in group_by {
                    ok.push(self.check_expr(e, is, "group-by expression"));
                }
                for a in aggs {
                    ok.push(self.check_expr(&a.arg, is, "aggregate argument"));
                }
                if schema.len() != group_by.len() + aggs.len() {
                    self.error(
                        E_SCHEMA_ARITY,
                        format!(
                            "aggregate schema has {} columns but produces {} groups + {} \
                             aggregates",
                            schema.len(),
                            group_by.len(),
                            aggs.len()
                        ),
                    );
                    return;
                }
                for (i, e) in group_by.iter().enumerate() {
                    if !ok[i] {
                        continue;
                    }
                    let dt = infer_expr_type(e, is);
                    if schema.column(i).data_type != dt {
                        self.error(
                            E_SCHEMA_TYPE,
                            format!(
                                "group key {i} declared {} but expression has type {}",
                                schema.column(i).data_type.sql_name(),
                                dt.sql_name()
                            ),
                        );
                    }
                }
                for (j, a) in aggs.iter().enumerate() {
                    if !ok[group_by.len() + j] {
                        continue;
                    }
                    let dt = a.func.output_type(infer_expr_type(&a.arg, is));
                    let col = schema.column(group_by.len() + j);
                    if col.data_type != dt {
                        self.error(
                            E_SCHEMA_TYPE,
                            format!(
                                "aggregate {} declared {} but computes {}",
                                a.name,
                                col.data_type.sql_name(),
                                dt.sql_name()
                            ),
                        );
                    }
                }
            }

            LogicalPlan::Sort { input, keys } => {
                self.visit_child(input, None);
                for k in keys {
                    self.check_expr(&k.expr, input.schema(), "sort key");
                }
            }

            LogicalPlan::Limit { input, limit, .. } => {
                self.visit_child(input, None);
                if *limit == Some(0) {
                    self.warning(W_DEAD_OPERATOR, "LIMIT 0 can never produce rows".to_owned());
                }
            }

            LogicalPlan::Values { schema, rows } => {
                for (ri, row) in rows.iter().enumerate() {
                    if row.len() != schema.len() {
                        self.error(
                            E_VALUES_ARITY,
                            format!(
                                "row {ri} has {} values but the schema has {} columns",
                                row.len(),
                                schema.len()
                            ),
                        );
                        break;
                    }
                }
            }

            LogicalPlan::Union { left, right } => {
                self.visit_child(left, Some("left"));
                self.visit_child(right, Some("right"));
                let ls = left.schema();
                let rs = right.schema();
                if ls.len() != rs.len() {
                    self.error(
                        E_UNION_MISMATCH,
                        format!("union sides have {} vs {} columns", ls.len(), rs.len()),
                    );
                    return;
                }
                for i in 0..ls.len() {
                    let (lt, rt) = (ls.column(i).data_type, rs.column(i).data_type);
                    let numeric = |t| matches!(t, DataType::Int | DataType::Float);
                    if lt != rt && !(numeric(lt) && numeric(rt)) {
                        self.error(
                            E_UNION_MISMATCH,
                            format!(
                                "union column {i} is {} on the left but {} on the right",
                                lt.sql_name(),
                                rt.sql_name()
                            ),
                        );
                    }
                }
            }

            LogicalPlan::Extend {
                input,
                related,
                key_col,
                rating,
                as_name,
                schema,
            } => {
                self.visit_child(input, None);
                self.visit_child(related, Some("related"));
                let is = input.schema();
                let rel = related.schema();
                let expected = if *rating { 3 } else { 2 };
                if rel.len() != expected {
                    self.error(
                        E_EXTEND_ARITY,
                        format!(
                            "related input must have {expected} columns ([fk, key{}]), got {}",
                            if *rating { ", rating" } else { "" },
                            rel.len()
                        ),
                    );
                } else {
                    let labels: &[&str] = if *rating {
                        &["foreign-key", "key", "rating"]
                    } else {
                        &["foreign-key", "key"]
                    };
                    for (i, label) in labels.iter().enumerate() {
                        if is_nested(rel.column(i).data_type) {
                            self.error(
                                E_EXTEND_KEY_TYPE,
                                format!(
                                    "related {label} column ({}) is nested ({}); must be scalar",
                                    rel.column(i).name,
                                    rel.column(i).data_type.sql_name()
                                ),
                            );
                        }
                    }
                }
                if *key_col >= is.len() {
                    self.error(
                        E_COL_RANGE,
                        format!(
                            "extend key column #{key_col} out of range (input has {} columns)",
                            is.len()
                        ),
                    );
                } else if is_nested(is.column(*key_col).data_type) {
                    self.error(
                        E_EXTEND_KEY_TYPE,
                        format!(
                            "extend key column #{key_col} ({}) is nested; must be scalar",
                            is.column(*key_col).name
                        ),
                    );
                }
                if schema.len() != is.len() + 1 {
                    self.error(
                        E_SCHEMA_ARITY,
                        format!(
                            "extend schema has {} columns, expected input ({}) + 1",
                            schema.len(),
                            is.len()
                        ),
                    );
                    return;
                }
                for i in 0..is.len() {
                    if schema.column(i).data_type != is.column(i).data_type {
                        self.error(
                            E_SCHEMA_TYPE,
                            format!(
                                "extend passthrough column {i} is {} but the input column is {}",
                                schema.column(i).data_type.sql_name(),
                                is.column(i).data_type.sql_name()
                            ),
                        );
                    }
                }
                let want = if *rating {
                    DataType::Ratings
                } else {
                    DataType::Set
                };
                let appended = schema.column(is.len());
                if appended.data_type != want || appended.name != *as_name {
                    self.error(
                        E_EXTEND_OUTPUT,
                        format!(
                            "appended column must be {} {}, got {} {}",
                            as_name,
                            want.sql_name(),
                            appended.name,
                            appended.data_type.sql_name()
                        ),
                    );
                }
            }

            LogicalPlan::Recommend {
                target,
                comparator,
                spec,
                schema,
            } => {
                self.visit_child(target, Some("target"));
                self.visit_child(comparator, Some("comparator"));
                let ts = target.schema();
                let cs = comparator.schema();
                let mut in_range = true;
                let check_range = |this: &mut Self, col: usize, side: &Schema, what: &str| {
                    if col >= side.len() {
                        this.error(
                            E_REC_RANGE,
                            format!("{what} column #{col} out of range ({} columns)", side.len()),
                        );
                        false
                    } else {
                        true
                    }
                };
                in_range &= check_range(self, spec.target_col, ts, "target");
                in_range &= check_range(self, spec.comparator_col, cs, "comparator");
                if let RecAggPlan::WeightedAvg { weight_col } = spec.agg {
                    in_range &= check_range(self, weight_col, cs, "weight");
                }
                if let Some((t, c)) = spec.exclude_seen {
                    in_range &= check_range(self, t, ts, "exclude-seen target");
                    in_range &= check_range(self, c, cs, "exclude-seen comparator");
                }
                if in_range {
                    self.check_rec_types(spec, ts, cs);
                }
                if schema.len() != ts.len() + 1 {
                    self.error(
                        E_SCHEMA_ARITY,
                        format!(
                            "recommend schema has {} columns, expected target ({}) + 1",
                            schema.len(),
                            ts.len()
                        ),
                    );
                    return;
                }
                for i in 0..ts.len() {
                    if schema.column(i).data_type != ts.column(i).data_type {
                        self.error(
                            E_SCHEMA_TYPE,
                            format!(
                                "recommend passthrough column {i} is {} but the target column \
                                 is {}",
                                schema.column(i).data_type.sql_name(),
                                ts.column(i).data_type.sql_name()
                            ),
                        );
                    }
                }
                let score = schema.column(ts.len());
                if score.data_type != DataType::Float || score.name != spec.score_name {
                    self.error(
                        E_REC_OUTPUT,
                        format!(
                            "appended score column must be {} FLOAT, got {} {}",
                            spec.score_name,
                            score.name,
                            score.data_type.sql_name()
                        ),
                    );
                }
                if spec.k.is_none() && !spec.unbounded_ok {
                    self.warning(
                        W_UNBOUNDED_REC,
                        "recommend has no top-k bound; it scores and returns every target row"
                            .to_owned(),
                    );
                }
            }
        }
    }

    /// The recommend operator's type discipline, mirrored from the
    /// workflow layer's `infer_schema` rules onto plan [`DataType`]s. The
    /// workflow layer cannot distinguish scalar types, so "scalar" here
    /// means "not Set/Ratings".
    fn check_rec_types(&mut self, spec: &super::rec::RecSpec, ts: &Schema, cs: &Schema) {
        let t = ts.column(spec.target_col).data_type;
        let c = cs.column(spec.comparator_col).data_type;
        let bad = |this: &mut Self, msg: String| this.error(E_REC_TYPES, msg);
        match &spec.method {
            RecMethod::Text(_) => {
                if is_nested(t) || is_nested(c) {
                    bad(
                        self,
                        format!(
                            "text similarity needs scalar columns, got {} ~ {}",
                            t.sql_name(),
                            c.sql_name()
                        ),
                    );
                }
            }
            RecMethod::Set(_) => {
                if t != DataType::Set || c != DataType::Set {
                    bad(
                        self,
                        format!(
                            "set similarity needs SET columns, got {} ~ {}",
                            t.sql_name(),
                            c.sql_name()
                        ),
                    );
                }
            }
            RecMethod::Ratings { .. } => {
                if t != DataType::Ratings || c != DataType::Ratings {
                    bad(
                        self,
                        format!(
                            "ratings similarity needs RATINGS columns, got {} ~ {}",
                            t.sql_name(),
                            c.sql_name()
                        ),
                    );
                }
            }
            RecMethod::RatingLookup => {
                if is_nested(t) {
                    bad(
                        self,
                        format!(
                            "rating lookup needs a scalar target key, got {}",
                            t.sql_name()
                        ),
                    );
                }
                if c != DataType::Ratings {
                    bad(
                        self,
                        format!(
                            "rating lookup needs a RATINGS comparator column, got {}",
                            c.sql_name()
                        ),
                    );
                }
            }
        }
        if let RecAggPlan::WeightedAvg { weight_col } = spec.agg {
            let w = cs.column(weight_col).data_type;
            if is_nested(w) {
                bad(
                    self,
                    format!(
                        "weighted-average weight column must be scalar, got {}",
                        w.sql_name()
                    ),
                );
            }
        }
        if let Some((te, ce)) = spec.exclude_seen {
            let tt = ts.column(te).data_type;
            let ct = cs.column(ce).data_type;
            if is_nested(tt) {
                bad(
                    self,
                    format!(
                        "exclude-seen target column must be scalar, got {}",
                        tt.sql_name()
                    ),
                );
            }
            if !is_nested(ct) {
                bad(
                    self,
                    format!(
                        "exclude-seen comparator column must be SET or RATINGS, got {}",
                        ct.sql_name()
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dataflow: required-column analysis (unused-extend detection)
// ---------------------------------------------------------------------------

/// Descend into `child`, maintaining the path segment stack.
fn observe_child(
    child: &LogicalPlan,
    required: Option<&BTreeSet<usize>>,
    edge: Option<&'static str>,
    stack: &mut Vec<&'static str>,
    diags: &mut Vec<Diagnostic>,
) {
    if let Some(e) = edge {
        stack.push(e);
    }
    stack.push(op_name(child));
    observe(child, required, stack, diags);
    stack.pop();
    if edge.is_some() {
        stack.pop();
    }
}

/// Top-down required-column walk. `required = None` means "every output
/// column is observed" (the root's columns are all returned to the user).
/// Fires [`W_UNUSED_EXTEND`] when an extend's appended nested column is
/// never consumed above it.
fn observe(
    plan: &LogicalPlan,
    required: Option<&BTreeSet<usize>>,
    stack: &mut Vec<&'static str>,
    diags: &mut Vec<Diagnostic>,
) {
    let expr_cols = |exprs: &[&Expr]| {
        let mut cols = Vec::new();
        for e in exprs {
            e.referenced_columns(&mut cols);
        }
        cols.into_iter().collect::<BTreeSet<usize>>()
    };
    match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => {}

        LogicalPlan::Filter { input, predicate } => {
            let child = required.map(|req| {
                let mut set = req.clone();
                set.extend(expr_cols(&[predicate]));
                set
            });
            observe_child(input, child.as_ref(), None, stack, diags);
        }

        LogicalPlan::Project { input, exprs, .. } => {
            let set = match required {
                Some(req) => {
                    let picked: Vec<&Expr> = exprs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| req.contains(i))
                        .map(|(_, (e, _))| e)
                        .collect();
                    expr_cols(&picked)
                }
                None => expr_cols(&exprs.iter().map(|(e, _)| e).collect::<Vec<_>>()),
            };
            observe_child(input, Some(&set), None, stack, diags);
        }

        LogicalPlan::Join {
            left, right, on, ..
        } => {
            let lw = left.schema().len();
            let on_cols = expr_cols(&[on]);
            let (lreq, rreq) = match required {
                Some(req) => {
                    let mut l: BTreeSet<usize> = req.iter().filter(|&&c| c < lw).copied().collect();
                    let mut r: BTreeSet<usize> =
                        req.iter().filter(|&&c| c >= lw).map(|&c| c - lw).collect();
                    l.extend(on_cols.iter().filter(|&&c| c < lw).copied());
                    r.extend(on_cols.iter().filter(|&&c| c >= lw).map(|&c| c - lw));
                    (Some(l), Some(r))
                }
                None => (None, None),
            };
            observe_child(left, lreq.as_ref(), Some("left"), stack, diags);
            observe_child(right, rreq.as_ref(), Some("right"), stack, diags);
        }

        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            // Group keys shape the output even when unused upstream, and
            // every aggregate argument is read.
            let mut exprs: Vec<&Expr> = group_by.iter().collect();
            exprs.extend(aggs.iter().map(|a| &a.arg));
            let set = expr_cols(&exprs);
            observe_child(input, Some(&set), None, stack, diags);
        }

        LogicalPlan::Sort { input, keys } => {
            let child = required.map(|req| {
                let mut set = req.clone();
                set.extend(expr_cols(&keys.iter().map(|k| &k.expr).collect::<Vec<_>>()));
                set
            });
            observe_child(input, child.as_ref(), None, stack, diags);
        }

        LogicalPlan::Limit { input, .. } => {
            observe_child(input, required, None, stack, diags);
        }

        LogicalPlan::Union { left, right } => {
            observe_child(left, required, Some("left"), stack, diags);
            observe_child(right, required, Some("right"), stack, diags);
        }

        LogicalPlan::Extend {
            input,
            related,
            key_col,
            as_name,
            ..
        } => {
            let iw = input.schema().len();
            if let Some(req) = required {
                if !req.contains(&iw) {
                    diags.push(Diagnostic::warning(
                        W_UNUSED_EXTEND,
                        stack.join("."),
                        format!(
                            "nested column {as_name} is never consumed above this extend \
                             (dead nest-map work)"
                        ),
                    ));
                }
            }
            let child = {
                let mut set: BTreeSet<usize> = match required {
                    Some(req) => req.iter().filter(|&&c| c < iw).copied().collect(),
                    None => (0..iw).collect(),
                };
                set.insert(*key_col);
                set
            };
            observe_child(input, Some(&child), None, stack, diags);
            // The related side's [fk, key(, rating)] columns are all read.
            observe_child(related, None, Some("related"), stack, diags);
        }

        LogicalPlan::Recommend {
            target,
            comparator,
            spec,
            ..
        } => {
            let tw = target.schema().len();
            let treq = {
                let mut set: BTreeSet<usize> = match required {
                    Some(req) => req.iter().filter(|&&c| c < tw).copied().collect(),
                    None => (0..tw).collect(),
                };
                set.insert(spec.target_col);
                if let Some((t, _)) = spec.exclude_seen {
                    set.insert(t);
                }
                set
            };
            let creq = {
                let mut set = BTreeSet::from([spec.comparator_col]);
                if let RecAggPlan::WeightedAvg { weight_col } = spec.agg {
                    set.insert(weight_col);
                }
                if let Some((_, c)) = spec.exclude_seen {
                    set.insert(c);
                }
                set
            };
            observe_child(target, Some(&treq), Some("target"), stack, diags);
            observe_child(comparator, Some(&creq), Some("comparator"), stack, diags);
        }
    }
}

// ---------------------------------------------------------------------------
// Dataflow: column provenance
// ---------------------------------------------------------------------------

/// Where each root output column comes from, as `table.column` chains or
/// `<computed>` markers — the lineage half of the dataflow analyses,
/// surfaced by `crlint` and usable next to EXPLAIN output.
pub fn provenance(plan: &LogicalPlan) -> Vec<String> {
    match plan {
        LogicalPlan::Scan {
            table,
            alias,
            schema,
            ..
        } => {
            let qual = alias.as_deref().unwrap_or(table);
            schema
                .columns()
                .iter()
                .map(|c| format!("{qual}.{}", c.name))
                .collect()
        }
        LogicalPlan::Filter { input, .. } | LogicalPlan::Sort { input, .. } => provenance(input),
        LogicalPlan::Limit { input, .. } => provenance(input),
        LogicalPlan::Project { input, exprs, .. } => {
            let pin = provenance(input);
            exprs
                .iter()
                .map(|(e, name)| match e {
                    Expr::Column(i) if *i < pin.len() => pin[*i].clone(),
                    _ => format!("<computed {name}>"),
                })
                .collect()
        }
        LogicalPlan::Join { left, right, .. } => {
            let mut out = provenance(left);
            out.extend(provenance(right));
            out
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let pin = provenance(input);
            let mut out: Vec<String> = group_by
                .iter()
                .map(|e| match e {
                    Expr::Column(i) if *i < pin.len() => pin[*i].clone(),
                    _ => "<group key>".to_owned(),
                })
                .collect();
            out.extend(aggs.iter().map(|a| format!("<agg {}>", a.name)));
            out
        }
        LogicalPlan::Values { schema, .. } => schema
            .columns()
            .iter()
            .map(|c| format!("<literal {}>", c.name))
            .collect(),
        LogicalPlan::Union { left, .. } => provenance(left),
        LogicalPlan::Extend {
            input,
            related,
            as_name,
            ..
        } => {
            let mut out = provenance(input);
            let rel = provenance(related);
            let src = rel.first().cloned().unwrap_or_else(|| "?".to_owned());
            // "ε(Comments.SuID) AS ratings" — which relation was nested.
            out.push(format!("<{as_name}: nested from {src}>"));
            out
        }
        LogicalPlan::Recommend { target, spec, .. } => {
            let mut out = provenance(target);
            out.push(format!("<score {}>", spec.score_name));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::{JoinKind, PlanBuilder};
    use crate::row::row;
    use crate::schema::Column;

    fn setup() -> Catalog {
        let c = Catalog::new();
        c.create_table(
            "students",
            Schema::qualified(
                "students",
                vec![
                    Column::not_null("id", DataType::Int),
                    Column::new("name", DataType::Text),
                ],
            ),
            vec![0],
        )
        .unwrap();
        c.create_table(
            "ratings",
            Schema::qualified(
                "ratings",
                vec![
                    Column::not_null("sid", DataType::Int),
                    Column::new("course", DataType::Int),
                    Column::new("score", DataType::Float),
                ],
            ),
            vec![0],
        )
        .unwrap();
        c
    }

    fn extended(c: &Catalog) -> PlanBuilder {
        let related = PlanBuilder::scan(c, "ratings")
            .unwrap()
            .select_columns(&["sid", "course"])
            .unwrap();
        PlanBuilder::scan(c, "students")
            .unwrap()
            .extend(related, "id", false, "courses")
            .unwrap()
    }

    #[test]
    fn valid_plans_validate_clean() {
        let c = setup();
        let plan = PlanBuilder::scan(&c, "students")
            .unwrap()
            .filter(Expr::col("id").gt(Expr::lit(3i64)))
            .unwrap()
            .project(vec![(Expr::col("name"), "name")])
            .unwrap()
            .build();
        let report = validate_against(&plan, &c);
        assert!(report.is_empty(), "{report}");
        let ext = extended(&c).build();
        assert!(validate(&ext).is_empty());
    }

    #[test]
    fn out_of_range_column_flagged() {
        let c = setup();
        let scan = PlanBuilder::scan(&c, "students").unwrap().build();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: Expr::col_idx(9).eq(Expr::lit(1i64)),
        };
        let report = validate(&plan);
        assert!(report.has_code(E_COL_RANGE), "{report}");
        assert_eq!(report.first_error().unwrap().path, "Filter");
    }

    #[test]
    fn unbound_name_flagged() {
        let c = setup();
        let scan = PlanBuilder::scan(&c, "students").unwrap().build();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: Expr::col("nope").eq(Expr::lit(1i64)),
        };
        assert!(validate(&plan).has_code(E_UNBOUND_NAME));
    }

    #[test]
    fn non_boolean_predicate_flagged() {
        let c = setup();
        let scan = PlanBuilder::scan(&c, "students").unwrap().build();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: Expr::col_idx(0),
        };
        assert!(validate(&plan).has_code(E_PRED_TYPE));
    }

    #[test]
    fn nested_join_key_flagged() {
        let c = setup();
        let left = extended(&c).build();
        let right = PlanBuilder::scan(&c, "students").unwrap().build();
        let schema = left.schema().join(right.schema());
        // Column #2 is the nested `courses` set.
        let plan = LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            kind: JoinKind::Inner,
            on: Expr::col_idx(2).eq(Expr::col_idx(3)),
            schema,
        };
        assert!(validate(&plan).has_code(E_JOIN_KEY_NESTED));
    }

    #[test]
    fn contradictory_and_always_true_filters_warned() {
        let c = setup();
        let contradiction = PlanBuilder::scan(&c, "students")
            .unwrap()
            .filter(
                Expr::col("id")
                    .eq(Expr::lit(1i64))
                    .and(Expr::col("id").eq(Expr::lit(2i64))),
            )
            .unwrap()
            .build();
        let report = analyze(&contradiction, Some(&c));
        assert!(report.has_code(W_CONTRADICTION), "{report}");
        assert!(!report.has_errors());

        let tautology = PlanBuilder::scan(&c, "students")
            .unwrap()
            .filter(Expr::lit(1i64).eq(Expr::lit(1i64)))
            .unwrap()
            .build();
        assert!(analyze(&tautology, Some(&c)).has_code(W_ALWAYS_TRUE));
    }

    #[test]
    fn cartesian_join_and_limit_zero_warned() {
        let c = setup();
        let left = PlanBuilder::scan(&c, "students").unwrap();
        let right = PlanBuilder::scan(&c, "ratings").unwrap();
        let plan = left
            .join(right, JoinKind::Inner, Expr::lit(true))
            .unwrap()
            .limit(0)
            .build();
        let report = analyze(&plan, Some(&c));
        assert!(report.has_code(W_CARTESIAN_JOIN), "{report}");
        assert!(report.has_code(W_DEAD_OPERATOR), "{report}");
    }

    #[test]
    fn unused_extend_warned_only_when_projected_away() {
        let c = setup();
        // Root returns the nested column → no warning.
        let used = extended(&c).build();
        assert!(!analyze(&used, Some(&c)).has_code(W_UNUSED_EXTEND));
        // A projection above drops it → dead nest-map work.
        let dropped = extended(&c)
            .project(vec![(Expr::col("name"), "name")])
            .unwrap()
            .build();
        let report = analyze(&dropped, Some(&c));
        assert!(report.has_code(W_UNUSED_EXTEND), "{report}");
    }

    #[test]
    fn unknown_table_flagged_with_catalog() {
        let c = setup();
        let plan = LogicalPlan::Scan {
            table: "nope".into(),
            alias: None,
            projection: None,
            filter: None,
            schema: Schema::default(),
        };
        assert!(validate_against(&plan, &c).has_code(E_UNKNOWN_TABLE));
        // Without a catalog the table cannot be checked.
        assert!(validate(&plan).is_empty());
    }

    #[test]
    fn values_arity_flagged() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let plan = LogicalPlan::Values {
            schema,
            rows: vec![row![1i64, 2i64]],
        };
        assert!(validate(&plan).has_code(E_VALUES_ARITY));
    }

    #[test]
    fn provenance_tracks_columns_to_sources() {
        let c = setup();
        let plan = extended(&c)
            .project(vec![
                (Expr::col("name"), "who"),
                (Expr::col("courses"), "courses"),
            ])
            .unwrap()
            .build();
        let prov = provenance(&plan);
        assert_eq!(prov.len(), 2);
        assert_eq!(prov[0], "students.name");
        assert!(prov[1].contains("nested from ratings.sid"), "{prov:?}");
    }

    #[test]
    fn report_renders_one_line_per_diagnostic() {
        let c = setup();
        let scan = PlanBuilder::scan(&c, "students").unwrap().build();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: Expr::col_idx(9),
        };
        let report = validate(&plan);
        let text = report.to_string();
        assert!(text.contains("E001"), "{text}");
        assert!(text.contains("at Filter"), "{text}");
    }
}
