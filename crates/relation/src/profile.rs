//! Per-operator execution profiles — the `EXPLAIN ANALYZE` substrate.
//!
//! [`crate::exec::execute_instrumented`] returns an [`OpProfile`] tree
//! mirroring the plan: one node per physical operator, annotated with
//! the rows it produced, its wall-clock time (inclusive of children),
//! and operator-specific detail such as the access path a scan chose or
//! the algorithm a join used. [`OpProfile::render`] prints the familiar
//! annotated tree.

use std::fmt::Write as _;
use std::time::Duration;

/// One operator's measured execution, with its children beneath it.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Operator name, e.g. `"Scan courses"`, `"HashJoin"`.
    pub op: String,
    /// Operator-specific annotations, e.g. `"access=SeqScan"`.
    pub detail: Vec<String>,
    /// Rows this operator emitted.
    pub rows_out: usize,
    /// Wall-clock time, inclusive of children.
    pub elapsed: Duration,
    pub children: Vec<OpProfile>,
}

impl OpProfile {
    /// Rows flowing into this operator (sum of children's output).
    pub fn rows_in(&self) -> usize {
        self.children.iter().map(|c| c.rows_out).sum()
    }

    /// Time spent in this operator excluding its children.
    pub fn self_time(&self) -> Duration {
        let child: Duration = self.children.iter().map(|c| c.elapsed).sum();
        self.elapsed.saturating_sub(child)
    }

    /// Total number of operators in the tree.
    pub fn operator_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(OpProfile::operator_count)
            .sum::<usize>()
    }

    /// Depth-first search for an operator whose name starts with `prefix`.
    pub fn find(&self, prefix: &str) -> Option<&OpProfile> {
        if self.op.starts_with(prefix) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(prefix))
    }

    /// Render the annotated plan tree:
    ///
    /// ```text
    /// Sort (rows=6 time=18.2µs self=3.1µs) [keys=1]
    ///   -> HashJoin (rows=6 time=12.0µs self=7.9µs) [kind=Inner keys=1]
    ///        -> Scan courses (rows=5 time=2.1µs) [access=SeqScan]
    ///        -> Scan comments (rows=3 time=2.0µs) [access=SeqScan]
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        if depth == 0 {
            let _ = write!(out, "{}", self.line(true));
        } else {
            let _ = write!(
                out,
                "{}-> {}",
                "     ".repeat(depth - 1).as_str(),
                self.line(false)
            );
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }

    fn line(&self, root: bool) -> String {
        let mut s = format!(
            "{} (rows={} time={}",
            self.op,
            self.rows_out,
            fmt_duration(self.elapsed)
        );
        if !self.children.is_empty() {
            let _ = write!(s, " self={}", fmt_duration(self.self_time()));
        }
        s.push(')');
        if !self.detail.is_empty() {
            let _ = write!(s, " [{}]", self.detail.join(" "));
        }
        let _ = root; // same format at every depth; kept for future totals line
        s
    }
}

/// Human-scale duration: ns below 1µs, µs below 1ms, then ms.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(op: &str, rows: usize, us: u64) -> OpProfile {
        OpProfile {
            op: op.into(),
            detail: vec!["access=SeqScan".into()],
            rows_out: rows,
            elapsed: Duration::from_micros(us),
            children: Vec::new(),
        }
    }

    #[test]
    fn tree_arithmetic() {
        let join = OpProfile {
            op: "HashJoin".into(),
            detail: vec!["kind=Inner".into()],
            rows_out: 6,
            elapsed: Duration::from_micros(12),
            children: vec![leaf("Scan a", 5, 2), leaf("Scan b", 3, 2)],
        };
        assert_eq!(join.rows_in(), 8);
        assert_eq!(join.self_time(), Duration::from_micros(8));
        assert_eq!(join.operator_count(), 3);
        assert_eq!(join.find("Scan b").unwrap().rows_out, 3);
        assert!(join.find("Sort").is_none());
    }

    #[test]
    fn render_shape() {
        let root = OpProfile {
            op: "Sort".into(),
            detail: vec!["keys=1".into()],
            rows_out: 6,
            elapsed: Duration::from_micros(20),
            children: vec![OpProfile {
                op: "HashJoin".into(),
                detail: Vec::new(),
                rows_out: 6,
                elapsed: Duration::from_micros(12),
                children: vec![leaf("Scan a", 5, 2)],
            }],
        };
        let text = root.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("Sort (rows=6"));
        assert!(lines[0].contains("[keys=1]"));
        assert!(lines[1].starts_with("-> HashJoin"));
        assert!(lines[2].starts_with("     -> Scan a"));
        assert!(lines[2].contains("[access=SeqScan]"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(750)), "750ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.5ms");
        assert_eq!(fmt_duration(Duration::from_nanos(2_500)), "2.5µs");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
