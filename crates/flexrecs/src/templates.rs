//! Canonical workflow templates.
//!
//! §3.2 describes the strategies CourseRank exposes: "one can ask for
//! recommended courses, or recommended majors (for students that have not
//! declared a major), or recommended quarters in which to take a given
//! course and choose different options on how recommendations will be
//! generated (e.g., based on what 'similar' students have done or the
//! grades they have taken)". These builders produce those workflows over
//! the paper's schema:
//!
//! ```text
//! Courses(CourseID, DepID, Title, Description, Units, Url)
//! Students(SuID, Name, Class, GPA)
//! Comments(SuID, CourseID, Year, Term, Text, Rating, Date)
//! ```
//!
//! (The concrete CourseRank database in `courserank::db` uses exactly
//! these relations, plus Enrollments for grades.)

use crate::similarity::{RatingsSim, SetSim, TextSim};
use crate::workflow::{CmpOp, Node, RecAgg, RecMethod, RecommendSpec, WfPredicate, Workflow};

/// Table/column names the templates are written against; override to remap
/// onto a different schema (the corporate-social-site example does this).
#[derive(Debug, Clone)]
pub struct SchemaMap {
    pub courses: String,
    pub course_id: String,
    pub course_title: String,
    pub course_dep: String,
    pub students: String,
    pub student_id: String,
    pub ratings_table: String,
    pub rating_student: String,
    pub rating_course: String,
    pub rating_value: String,
    pub rating_year: String,
    pub rating_term: String,
}

impl Default for SchemaMap {
    fn default() -> Self {
        SchemaMap {
            courses: "Courses".into(),
            course_id: "CourseID".into(),
            course_title: "Title".into(),
            course_dep: "DepID".into(),
            students: "Students".into(),
            student_id: "SuID".into(),
            ratings_table: "Comments".into(),
            rating_student: "SuID".into(),
            rating_course: "CourseID".into(),
            rating_value: "Rating".into(),
            rating_year: "Year".into(),
            rating_term: "Term".into(),
        }
    }
}

impl SchemaMap {
    fn students_with_ratings(&self) -> Node {
        Node::Extend {
            input: Box::new(Node::Source {
                table: self.students.clone(),
            }),
            related_table: self.ratings_table.clone(),
            fk_column: self.rating_student.clone(),
            local_key: self.student_id.clone(),
            key_column: self.rating_course.clone(),
            rating_column: Some(self.rating_value.clone()),
            as_name: "ratings".into(),
        }
    }

    fn students_with_course_sets(&self) -> Node {
        Node::Extend {
            input: Box::new(Node::Source {
                table: self.students.clone(),
            }),
            related_table: self.ratings_table.clone(),
            fk_column: self.rating_student.clone(),
            local_key: self.student_id.clone(),
            key_column: self.rating_course.clone(),
            rating_column: None,
            as_name: "courses".into(),
        }
    }
}

/// Figure 5(a): courses (optionally restricted to `year`) whose titles are
/// similar to the course titled `title`.
pub fn related_courses(map: &SchemaMap, title: &str, year: Option<i64>, k: usize) -> Workflow {
    let target: Node = match year {
        Some(y) => Node::Select {
            input: Box::new(Node::Source {
                table: map.courses.clone(),
            }),
            predicate: WfPredicate::And(vec![
                WfPredicate::cmp(&map.course_title, CmpOp::NotEq, title),
                // Courses offered in year y — in the CourseRank schema the
                // offering year lives on Offerings; over the simplified
                // paper schema we accept a Year column on Courses.
                WfPredicate::eq("Year", y),
            ]),
        },
        None => Node::Select {
            input: Box::new(Node::Source {
                table: map.courses.clone(),
            }),
            predicate: WfPredicate::cmp(&map.course_title, CmpOp::NotEq, title),
        },
    };
    Workflow::new(
        "related-courses",
        Node::Recommend {
            target: Box::new(target),
            comparator: Box::new(Node::Select {
                input: Box::new(Node::Source {
                    table: map.courses.clone(),
                }),
                predicate: WfPredicate::eq(&map.course_title, title),
            }),
            spec: RecommendSpec::new(
                &map.course_title,
                &map.course_title,
                RecMethod::Text(TextSim::WordJaccard),
            )
            .top_k(k),
        },
    )
}

/// Figure 5(b): classic user-based collaborative filtering. Find the
/// `k_students` students most similar to `student_id` by inverse Euclidean
/// distance of their ratings, then score courses by those students'
/// average rating. `exclude_taken` drops courses the target student
/// already rated.
pub fn user_cf(
    map: &SchemaMap,
    student_id: i64,
    k_students: usize,
    k_courses: usize,
    min_common: usize,
    exclude_taken: bool,
) -> Workflow {
    let lower = Node::Recommend {
        target: Box::new(Node::Select {
            input: Box::new(map.students_with_ratings()),
            predicate: WfPredicate::cmp(&map.student_id, CmpOp::NotEq, student_id),
        }),
        comparator: Box::new(Node::Select {
            input: Box::new(map.students_with_ratings()),
            predicate: WfPredicate::eq(&map.student_id, student_id),
        }),
        spec: RecommendSpec::new(
            "ratings",
            "ratings",
            RecMethod::Ratings {
                sim: RatingsSim::InverseEuclidean,
                min_common,
            },
        )
        .top_k(k_students)
        .score_as("sim"),
    };
    // `exclude_taken` (hide what the target student already rated) is not
    // expressible inside a single recommend operator — the comparator set
    // holds the *similar* students, not the target. The application layer
    // filters seen courses post-hoc (courserank::services::recs); callers
    // that want the operator-level variant use `excluding_seen`.
    let _ = exclude_taken;
    let spec = RecommendSpec::new(&map.course_id, "ratings", RecMethod::RatingLookup)
        .with_agg(RecAgg::Avg)
        .top_k(k_courses);
    Workflow::new(
        "user-cf",
        Node::Recommend {
            target: Box::new(Node::Source {
                table: map.courses.clone(),
            }),
            comparator: Box::new(lower),
            spec,
        },
    )
}

/// Weighted user-based CF: like [`user_cf`] but weighting each similar
/// student's ratings by their similarity score (the `sim` output of the
/// lower operator feeds the upper operator's weighted average).
pub fn user_cf_weighted(
    map: &SchemaMap,
    student_id: i64,
    k_students: usize,
    k_courses: usize,
    min_common: usize,
) -> Workflow {
    let lower = Node::Recommend {
        target: Box::new(Node::Select {
            input: Box::new(map.students_with_ratings()),
            predicate: WfPredicate::cmp(&map.student_id, CmpOp::NotEq, student_id),
        }),
        comparator: Box::new(Node::Select {
            input: Box::new(map.students_with_ratings()),
            predicate: WfPredicate::eq(&map.student_id, student_id),
        }),
        spec: RecommendSpec::new(
            "ratings",
            "ratings",
            RecMethod::Ratings {
                sim: RatingsSim::InverseEuclidean,
                min_common,
            },
        )
        .top_k(k_students)
        .score_as("sim"),
    };
    Workflow::new(
        "user-cf-weighted",
        Node::Recommend {
            target: Box::new(Node::Source {
                table: map.courses.clone(),
            }),
            comparator: Box::new(lower),
            spec: RecommendSpec::new(&map.course_id, "ratings", RecMethod::RatingLookup)
                .with_agg(RecAgg::WeightedAvg {
                    weight_attr: "sim".into(),
                })
                .top_k(k_courses),
        },
    )
}

/// "People with similar *transcripts*": student similarity by Jaccard on
/// each student's course set — the "based on what similar students have
/// done" option, independent of rating values. The course set comes from
/// the map's activity table (CourseRank remaps it onto Enrollments here,
/// so the sets really are courses taken; under the default map they are
/// the courses a student has commented on).
pub fn similar_students_by_courses(map: &SchemaMap, student_id: i64, k: usize) -> Workflow {
    Workflow::new(
        "similar-students",
        // Only the id and the similarity score leave the workflow: the
        // ranked students' other attributes (notably GPA, which is
        // per-user) stay inside, so the template passes disclosure lint
        // for a student principal.
        Node::Project {
            input: Box::new(Node::Recommend {
                target: Box::new(Node::Select {
                    input: Box::new(map.students_with_course_sets()),
                    predicate: WfPredicate::cmp(&map.student_id, CmpOp::NotEq, student_id),
                }),
                comparator: Box::new(Node::Select {
                    input: Box::new(map.students_with_course_sets()),
                    predicate: WfPredicate::eq(&map.student_id, student_id),
                }),
                spec: RecommendSpec::new("courses", "courses", RecMethod::Set(SetSim::Jaccard))
                    .top_k(k)
                    .score_as("sim"),
            }),
            columns: vec![map.student_id.clone(), "sim".into()],
        },
    )
}

/// Item-item CF: courses whose rater sets overlap the given course's rater
/// set ("students who liked this also took…").
pub fn item_item_cf(map: &SchemaMap, course_id: i64, k: usize) -> Workflow {
    let courses_with_raters = |pred: WfPredicate| Node::Select {
        input: Box::new(Node::Extend {
            input: Box::new(Node::Source {
                table: map.courses.clone(),
            }),
            related_table: map.ratings_table.clone(),
            fk_column: map.rating_course.clone(),
            local_key: map.course_id.clone(),
            key_column: map.rating_student.clone(),
            rating_column: None,
            as_name: "raters".into(),
        }),
        predicate: pred,
    };
    Workflow::new(
        "item-item-cf",
        Node::Recommend {
            target: Box::new(courses_with_raters(WfPredicate::cmp(
                &map.course_id,
                CmpOp::NotEq,
                course_id,
            ))),
            comparator: Box::new(courses_with_raters(WfPredicate::eq(
                &map.course_id,
                course_id,
            ))),
            spec: RecommendSpec::new("raters", "raters", RecMethod::Set(SetSim::Cosine))
                .top_k(k)
                .score_as("score"),
        },
    )
}

/// Ratings-weighted item-item CF (Ray & Sharma's item-based scheme): each
/// course carries its *rating vector* keyed by student, and similarity is
/// computed over co-raters' actual rating values (cosine), not mere
/// co-occurrence. Distinguishes "everyone took both" from "everyone who
/// liked one liked the other" — the set-based [`item_item_cf`] can't tell
/// these apart. `min_common` guards against spurious similarity from tiny
/// overlap.
pub fn item_item_cf_ratings(map: &SchemaMap, course_id: i64, k: usize) -> Workflow {
    let courses_with_ratings = |pred: WfPredicate| Node::Select {
        input: Box::new(Node::Extend {
            input: Box::new(Node::Source {
                table: map.courses.clone(),
            }),
            related_table: map.ratings_table.clone(),
            fk_column: map.rating_course.clone(),
            local_key: map.course_id.clone(),
            key_column: map.rating_student.clone(),
            rating_column: Some(map.rating_value.clone()),
            as_name: "ratings".into(),
        }),
        predicate: pred,
    };
    Workflow::new(
        "item-item-cf-ratings",
        Node::Recommend {
            target: Box::new(courses_with_ratings(WfPredicate::cmp(
                &map.course_id,
                CmpOp::NotEq,
                course_id,
            ))),
            comparator: Box::new(courses_with_ratings(WfPredicate::eq(
                &map.course_id,
                course_id,
            ))),
            spec: RecommendSpec::new(
                "ratings",
                "ratings",
                RecMethod::Ratings {
                    sim: RatingsSim::Cosine,
                    min_common: 2,
                },
            )
            .top_k(k)
            .score_as("score"),
        },
    )
}

/// Recommend a quarter in which to take `course_id`: rank `(Year, Term)`
/// combinations by the average rating students gave the course when taking
/// it then. Expressed as pure relational algebra + recommend-free
/// aggregation — built directly as SQL by the caller in courserank; here
/// we provide the workflow used for explain/demo purposes.
pub fn quarter_recommendation_sql(map: &SchemaMap, course_id: i64) -> String {
    format!(
        "SELECT {y} AS year, {t} AS term, AVG({r}) AS score, COUNT(*) AS n \
         FROM {tbl} WHERE {c} = {course_id} AND {r} IS NOT NULL GROUP BY {y}, {t} \
         ORDER BY score DESC",
        y = map.rating_year,
        t = map.rating_term,
        r = map.rating_value,
        tbl = map.ratings_table,
        c = map.rating_course,
    )
}

/// Recommend a major: rank departments by the average rating the target
/// student's similar students gave to courses in each department. Combines
/// the CF comparator with a join onto the course→department mapping.
pub fn major_recommendation(
    map: &SchemaMap,
    student_id: i64,
    k_students: usize,
    min_common: usize,
) -> Workflow {
    let lower = Node::Recommend {
        target: Box::new(Node::Select {
            input: Box::new(map.students_with_ratings()),
            predicate: WfPredicate::cmp(&map.student_id, CmpOp::NotEq, student_id),
        }),
        comparator: Box::new(Node::Select {
            input: Box::new(map.students_with_ratings()),
            predicate: WfPredicate::eq(&map.student_id, student_id),
        }),
        spec: RecommendSpec::new(
            "ratings",
            "ratings",
            RecMethod::Ratings {
                sim: RatingsSim::InverseEuclidean,
                min_common,
            },
        )
        .top_k(k_students)
        .score_as("sim"),
    };
    // Targets: departments, i.e. distinct DepID values carried on courses.
    // We rank *courses* and let the application roll scores up to
    // departments; the workflow keeps DepID in the output for that.
    Workflow::new(
        "major-recommendation",
        Node::Recommend {
            target: Box::new(Node::Project {
                input: Box::new(Node::Source {
                    table: map.courses.clone(),
                }),
                columns: vec![map.course_id.clone(), map.course_dep.clone()],
            }),
            comparator: Box::new(lower),
            // Unbounded on purpose: every course must keep its score so
            // the application can average them per department; truncating
            // here would bias the rollup.
            spec: RecommendSpec::new(&map.course_id, "ratings", RecMethod::RatingLookup)
                .with_agg(RecAgg::Avg)
                .expect_unbounded(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use cr_relation::{Database, Value};

    fn db() -> Database {
        let db = Database::new();
        db.execute_sql(
            "CREATE TABLE Courses (CourseID INT PRIMARY KEY, DepID TEXT, Title TEXT, Year INT)",
        )
        .unwrap();
        db.execute_sql("CREATE TABLE Students (SuID INT PRIMARY KEY, Name TEXT)")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE Comments (SuID INT, CourseID INT, Year INT, Term TEXT, Rating FLOAT, PRIMARY KEY (SuID, CourseID))",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Courses VALUES \
             (1, 'CS', 'Introduction to Programming', 2008), \
             (2, 'CS', 'Programming Abstractions', 2008), \
             (3, 'HIST', 'Medieval History', 2008), \
             (5, 'CS', 'Operating Systems', 2008)",
        )
        .unwrap();
        db.execute_sql("INSERT INTO Students VALUES (444,'Sally'),(2,'Bob'),(3,'Ann'),(4,'Tim')")
            .unwrap();
        db.execute_sql(
            "INSERT INTO Comments VALUES \
             (444, 1, 2008, 'Aut', 5.0), (444, 3, 2008, 'Win', 2.0), \
             (2, 1, 2008, 'Aut', 5.0), (2, 3, 2008, 'Win', 2.0), (2, 2, 2008, 'Spr', 4.5), \
             (3, 1, 2007, 'Aut', 1.0), (3, 3, 2008, 'Win', 5.0), (3, 5, 2008, 'Spr', 1.5), \
             (4, 1, 2008, 'Aut', 4.5), (4, 3, 2008, 'Win', 2.5), (4, 5, 2008, 'Spr', 5.0)",
        )
        .unwrap();
        db
    }

    #[test]
    fn related_courses_template() {
        let db = db();
        let wf = related_courses(
            &SchemaMap::default(),
            "Introduction to Programming",
            Some(2008),
            5,
        );
        let r = execute(&wf, &db.catalog()).unwrap();
        let ranking = r.ranking("CourseID", "score").unwrap();
        assert_eq!(ranking[0].0, Value::Int(2));
    }

    #[test]
    fn user_cf_template() {
        let db = db();
        let wf = user_cf(&SchemaMap::default(), 444, 2, 10, 2, false);
        let r = execute(&wf, &db.catalog()).unwrap();
        let ranking = r.ranking("CourseID", "score").unwrap();
        assert!(!ranking.is_empty());
        // Similar students (Bob, Tim) both rated course 1 highly.
        let m: std::collections::HashMap<Value, f64> = ranking.into_iter().collect();
        assert!(m[&Value::Int(1)] > 4.5);
    }

    #[test]
    fn weighted_cf_template() {
        let db = db();
        let wf = user_cf_weighted(&SchemaMap::default(), 444, 3, 10, 2);
        let r = execute(&wf, &db.catalog()).unwrap();
        assert!(!r.tuples.is_empty());
    }

    #[test]
    fn similar_students_template() {
        let db = db();
        let wf = similar_students_by_courses(&SchemaMap::default(), 444, 3);
        let r = execute(&wf, &db.catalog()).unwrap();
        let ranking = r.ranking("SuID", "sim").unwrap();
        // Tim {1,3,5} vs Sally {1,3}: J=2/3; Bob {1,2,3}: J=2/3; Ann {1,3,5}: J=2/3.
        assert_eq!(ranking.len(), 3);
    }

    #[test]
    fn item_item_template() {
        let db = db();
        let wf = item_item_cf(&SchemaMap::default(), 1, 5);
        let r = execute(&wf, &db.catalog()).unwrap();
        let ranking = r.ranking("CourseID", "score").unwrap();
        // Course 3 shares all four raters with course 1.
        assert_eq!(ranking[0].0, Value::Int(3));
    }

    #[test]
    fn item_item_ratings_template() {
        let db = db();
        let wf = item_item_cf_ratings(&SchemaMap::default(), 1, 5);
        let direct = execute(&wf, &db.catalog()).unwrap();
        let ranking = direct.ranking("CourseID", "score").unwrap();
        // Courses 1 and 3 share four raters but with *anti-correlated*
        // ratings for Ann (1.0 vs 5.0); cosine still ranks 3 first on this
        // tiny corpus, but the score is strictly below the set-based 1.0.
        assert!(!ranking.is_empty());
        assert!(ranking.iter().all(|(_, s)| *s > 0.0 && *s <= 1.0 + 1e-9));
        // And the plan path agrees byte-for-byte.
        let compiled = crate::compile::compile_and_run(&wf, &db.catalog()).unwrap();
        assert_eq!(compiled.result, direct);
    }

    #[test]
    fn quarter_recommendation_runs_as_sql() {
        let db = db();
        let sql = quarter_recommendation_sql(&SchemaMap::default(), 1);
        let rs = db.query_sql(&sql).unwrap();
        assert!(!rs.rows.is_empty());
        // 2008 Aut has ratings (5.0, 5.0, 4.5); 2007 Aut has 1.0.
        assert_eq!(rs.rows[0][0], Value::Int(2008));
        assert_eq!(rs.rows.last().unwrap()[0], Value::Int(2007));
    }

    #[test]
    fn major_recommendation_template() {
        let db = db();
        let wf = major_recommendation(&SchemaMap::default(), 444, 2, 2);
        let r = execute(&wf, &db.catalog()).unwrap();
        // Output keeps DepID for application-level rollup.
        assert!(r.schema.index_of("DepID").is_some());
        assert!(!r.tuples.is_empty());
    }

    #[test]
    fn all_templates_explain() {
        let m = SchemaMap::default();
        for wf in [
            related_courses(&m, "X", None, 5),
            user_cf(&m, 1, 5, 10, 2, false),
            user_cf_weighted(&m, 1, 5, 10, 2),
            similar_students_by_courses(&m, 1, 5),
            item_item_cf(&m, 1, 5),
            item_item_cf_ratings(&m, 1, 5),
            major_recommendation(&m, 1, 5, 2),
        ] {
            let text = wf.explain();
            assert!(text.contains("Recommend"), "{text}");
        }
    }
}
