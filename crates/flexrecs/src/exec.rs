//! Direct workflow executor.
//!
//! Evaluates a workflow tree straight against the relational engine's
//! tables — the reference semantics that the SQL [`crate::compile`] path is
//! equivalence-tested against (ablation A2).

use std::collections::HashMap;

use cr_relation::{Catalog, RelError, RelResult, Value};

use crate::datum::{Datum, Tuple, WfSchema};
use crate::workflow::{
    infer_schema, Node, RecAgg, RecMethod, RecommendSpec, WfPredicate, Workflow,
};

/// A workflow result: schema + tuples (score-ordered for recommend roots).
#[derive(Debug, Clone, PartialEq)]
pub struct RecResult {
    pub schema: WfSchema,
    pub tuples: Vec<Tuple>,
}

impl RecResult {
    /// Index of a column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema.index_of(name)
    }

    /// Extract `(key, score)` pairs given the key and score column names —
    /// the shape recommendation consumers want.
    pub fn ranking(&self, key: &str, score: &str) -> RelResult<Vec<(Value, f64)>> {
        let ki = self
            .column_index(key)
            .ok_or_else(|| RelError::UnknownColumn(key.to_owned()))?;
        let si = self
            .column_index(score)
            .ok_or_else(|| RelError::UnknownColumn(score.to_owned()))?;
        let mut out = Vec::with_capacity(self.tuples.len());
        for t in &self.tuples {
            let k = t[ki]
                .as_scalar()
                .ok_or_else(|| RelError::Invalid("key column not scalar".into()))?
                .clone();
            let s = match &t[si] {
                Datum::Scalar(Value::Float(f)) => *f,
                Datum::Scalar(Value::Int(i)) => *i as f64,
                other => {
                    return Err(RelError::Invalid(format!(
                        "score column not numeric: {other}"
                    )))
                }
            };
            out.push((k, s));
        }
        Ok(out)
    }

    /// Render as an aligned text table.
    pub fn to_text_table(&self) -> String {
        let headers: Vec<&str> = self
            .schema
            .columns
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let cells: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| {
                t.iter()
                    .enumerate()
                    .map(|(i, d)| {
                        let s = d.to_string();
                        let s = if s.len() > 40 {
                            format!(
                                "{}…",
                                &s[..s
                                    .char_indices()
                                    .take(39)
                                    .last()
                                    .map(|(i, c)| i + c.len_utf8())
                                    .unwrap_or(0)]
                            )
                        } else {
                            s
                        };
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, h) in headers.iter().enumerate() {
            out.push_str(&format!("| {h:<w$} ", w = widths[i]));
        }
        out.push_str("|\n");
        for (i, _) in headers.iter().enumerate() {
            out.push_str(&format!("|-{}-", "-".repeat(widths[i])));
        }
        out.push_str("|\n");
        for row in cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("| {c:<w$} ", w = widths[i]));
            }
            out.push_str("|\n");
        }
        out
    }
}

/// Execute a workflow directly.
pub fn execute(workflow: &Workflow, catalog: &Catalog) -> RelResult<RecResult> {
    let schema = infer_schema(&workflow.root, catalog)?;
    let tuples = eval(&workflow.root, catalog)?;
    Ok(RecResult { schema, tuples })
}

pub(crate) fn eval(node: &Node, catalog: &Catalog) -> RelResult<Vec<Tuple>> {
    match node {
        Node::Source { table } => catalog.with_table(table, |t| {
            t.scan()
                .map(|(_, row)| row.iter().cloned().map(Datum::Scalar).collect())
                .collect()
        }),

        Node::Select { input, predicate } => {
            let schema = infer_schema(input, catalog)?;
            let tuples = eval(input, catalog)?;
            let mut out = Vec::with_capacity(tuples.len() / 2);
            for t in tuples {
                if eval_predicate(predicate, &schema, &t)? {
                    out.push(t);
                }
            }
            Ok(out)
        }

        Node::Project { input, columns } => {
            let schema = infer_schema(input, catalog)?;
            let idx: Vec<usize> = columns
                .iter()
                .map(|c| {
                    schema
                        .index_of(c)
                        .ok_or_else(|| RelError::UnknownColumn(c.clone()))
                })
                .collect::<RelResult<_>>()?;
            let tuples = eval(input, catalog)?;
            Ok(tuples
                .into_iter()
                .map(|t| idx.iter().map(|&i| t[i].clone()).collect())
                .collect())
        }

        Node::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let ls = infer_schema(left, catalog)?;
            let rs = infer_schema(right, catalog)?;
            let li = ls
                .index_of(left_col)
                .ok_or_else(|| RelError::UnknownColumn(left_col.clone()))?;
            let ri = rs
                .index_of(right_col)
                .ok_or_else(|| RelError::UnknownColumn(right_col.clone()))?;
            let lt = eval(left, catalog)?;
            let rt = eval(right, catalog)?;
            // Build on the right.
            let mut build: HashMap<&Value, Vec<usize>> = HashMap::with_capacity(rt.len());
            for (i, t) in rt.iter().enumerate() {
                if let Some(v) = t[ri].as_scalar() {
                    if !v.is_null() {
                        build.entry(v).or_default().push(i);
                    }
                }
            }
            let mut out = Vec::new();
            for l in &lt {
                let Some(v) = l[li].as_scalar() else { continue };
                if let Some(matches) = build.get(v) {
                    for &m in matches {
                        let mut combined = l.clone();
                        combined.extend(rt[m].iter().cloned());
                        out.push(combined);
                    }
                }
            }
            Ok(out)
        }

        Node::Extend {
            input,
            related_table,
            fk_column,
            local_key,
            key_column,
            rating_column,
            ..
        } => {
            let schema = infer_schema(input, catalog)?;
            let key_idx = schema
                .index_of(local_key)
                .ok_or_else(|| RelError::UnknownColumn(local_key.clone()))?;
            // Pre-aggregate the related table by fk.
            enum Agg {
                Sets(HashMap<Value, Vec<Value>>),
                Ratings(HashMap<Value, Vec<(Value, f64)>>),
            }
            // Set semantics: one entry per related key. Duplicate keys
            // (a student commenting twice on a course) collapse — sets
            // dedup, ratings average — so the direct executor and the SQL
            // compiler (which pre-aggregates with GROUP BY) agree.
            let agg = catalog.with_table(related_table, |t| -> RelResult<Agg> {
                let fk = t.schema().index_of(fk_column)?;
                let key = t.schema().index_of(key_column)?;
                match rating_column {
                    None => {
                        let mut m: HashMap<Value, Vec<Value>> = HashMap::new();
                        for (_, row) in t.scan() {
                            if row[fk].is_null() {
                                continue;
                            }
                            m.entry(row[fk].clone()).or_default().push(row[key].clone());
                        }
                        for v in m.values_mut() {
                            v.sort();
                            v.dedup();
                        }
                        Ok(Agg::Sets(m))
                    }
                    Some(rc) => {
                        let ri = t.schema().index_of(rc)?;
                        let mut sums: HashMap<Value, HashMap<Value, (f64, u32)>> = HashMap::new();
                        for (_, row) in t.scan() {
                            if row[fk].is_null() || row[ri].is_null() {
                                continue;
                            }
                            let rating = row[ri].as_float()?;
                            let slot = sums
                                .entry(row[fk].clone())
                                .or_default()
                                .entry(row[key].clone())
                                .or_insert((0.0, 0));
                            slot.0 += rating;
                            slot.1 += 1;
                        }
                        let mut m: HashMap<Value, Vec<(Value, f64)>> =
                            HashMap::with_capacity(sums.len());
                        for (fk_val, per_key) in sums {
                            let mut v: Vec<(Value, f64)> = per_key
                                .into_iter()
                                .map(|(k, (sum, n))| (k, sum / n as f64))
                                .collect();
                            v.sort_by(|a, b| a.0.total_cmp(&b.0));
                            m.insert(fk_val, v);
                        }
                        Ok(Agg::Ratings(m))
                    }
                }
            })??;
            let tuples = eval(input, catalog)?;
            let mut out = Vec::with_capacity(tuples.len());
            for mut t in tuples {
                let key = t[key_idx]
                    .as_scalar()
                    .ok_or_else(|| RelError::Invalid("extend key not scalar".into()))?;
                let datum = match &agg {
                    Agg::Sets(m) => Datum::Set(m.get(key).cloned().unwrap_or_default()),
                    Agg::Ratings(m) => Datum::Ratings(m.get(key).cloned().unwrap_or_default()),
                };
                t.push(datum);
                out.push(t);
            }
            Ok(out)
        }

        Node::Recommend {
            target,
            comparator,
            spec,
        } => {
            let ts = infer_schema(target, catalog)?;
            let cs = infer_schema(comparator, catalog)?;
            let targets = eval(target, catalog)?;
            let comparators = eval(comparator, catalog)?;
            recommend(&ts, targets, &cs, &comparators, spec)
        }

        Node::Limit { input, k } => {
            let mut tuples = eval(input, catalog)?;
            tuples.truncate(*k);
            Ok(tuples)
        }

        Node::Union { left, right } => {
            let mut l = eval(left, catalog)?;
            l.extend(eval(right, catalog)?);
            Ok(l)
        }
    }
}

fn eval_predicate(p: &WfPredicate, schema: &WfSchema, t: &Tuple) -> RelResult<bool> {
    match p {
        WfPredicate::Cmp { column, op, value } => {
            let i = schema
                .index_of(column)
                .ok_or_else(|| RelError::UnknownColumn(column.clone()))?;
            let v = t[i]
                .as_scalar()
                .ok_or_else(|| RelError::Invalid(format!("column {column} not scalar")))?;
            if v.is_null() || value.is_null() {
                return Ok(false);
            }
            // DATE attributes compare against integer literals (days since
            // epoch), same coercion as the relational engine's expressions.
            let (a, b) = match (v, value) {
                (Value::Date(_), Value::Int(i)) => (v.clone(), Value::Date(*i as i32)),
                (Value::Int(i), Value::Date(_)) => (Value::Date(*i as i32), value.clone()),
                _ => (v.clone(), value.clone()),
            };
            Ok(op.eval(a.total_cmp(&b)))
        }
        WfPredicate::And(ps) => {
            for p in ps {
                if !eval_predicate(p, schema, t)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        WfPredicate::Or(ps) => {
            for p in ps {
                if eval_predicate(p, schema, t)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }
}

/// The recommend operator: score every target tuple against the comparator
/// set, aggregate, filter, rank, truncate.
pub(crate) fn recommend(
    target_schema: &WfSchema,
    targets: Vec<Tuple>,
    comparator_schema: &WfSchema,
    comparators: &[Tuple],
    spec: &RecommendSpec,
) -> RelResult<Vec<Tuple>> {
    let t_idx = target_schema
        .index_of(&spec.target_attr)
        .ok_or_else(|| RelError::UnknownColumn(spec.target_attr.clone()))?;
    let c_idx = comparator_schema
        .index_of(&spec.comparator_attr)
        .ok_or_else(|| RelError::UnknownColumn(spec.comparator_attr.clone()))?;
    let weight_idx = match &spec.agg {
        RecAgg::WeightedAvg { weight_attr } => Some(
            comparator_schema
                .index_of(weight_attr)
                .ok_or_else(|| RelError::UnknownColumn(weight_attr.clone()))?,
        ),
        _ => None,
    };
    let exclude = match &spec.exclude_seen {
        Some((t_attr, c_attr)) => {
            let ti = target_schema
                .index_of(t_attr)
                .ok_or_else(|| RelError::UnknownColumn(t_attr.clone()))?;
            let ci = comparator_schema
                .index_of(c_attr)
                .ok_or_else(|| RelError::UnknownColumn(c_attr.clone()))?;
            // Gather the union of seen keys across comparators.
            let mut seen: std::collections::HashSet<Value> = std::collections::HashSet::new();
            for c in comparators {
                match &c[ci] {
                    Datum::Set(s) => seen.extend(s.iter().cloned()),
                    Datum::Ratings(r) => seen.extend(r.iter().map(|(k, _)| k.clone())),
                    Datum::Scalar(_) => {}
                }
            }
            Some((ti, seen))
        }
        None => None,
    };

    // Pre-extract per-comparator rating maps for the lookup method.
    let lookup_maps: Option<Vec<HashMap<&Value, f64>>> = match spec.method {
        RecMethod::RatingLookup => Some(
            comparators
                .iter()
                .map(|c| {
                    c[c_idx]
                        .as_ratings()
                        .map(|r| r.iter().map(|(k, v)| (k, *v)).collect())
                        .unwrap_or_default()
                })
                .collect(),
        ),
        _ => None,
    };

    let mut scored: Vec<(f64, Tuple)> = Vec::with_capacity(targets.len());
    for mut t in targets {
        if let Some((ti, seen)) = &exclude {
            if let Some(v) = t[*ti].as_scalar() {
                if seen.contains(v) {
                    continue;
                }
            }
        }
        // Per-comparator scores (None = undefined, skipped by Avg).
        let mut acc_sum = 0.0f64;
        let mut acc_weight = 0.0f64;
        let mut acc_n = 0usize;
        let mut acc_max = f64::NEG_INFINITY;
        for (i, c) in comparators.iter().enumerate() {
            let score: Option<f64> = match &spec.method {
                RecMethod::Text(sim) => match (t[t_idx].as_scalar(), c[c_idx].as_scalar()) {
                    (Some(Value::Text(a)), Some(Value::Text(b))) => Some(sim.score(a, b)),
                    _ => None,
                },
                RecMethod::Set(sim) => match (t[t_idx].as_set(), c[c_idx].as_set()) {
                    (Some(a), Some(b)) => Some(sim.score(a, b)),
                    _ => None,
                },
                RecMethod::Ratings { sim, min_common } => {
                    match (t[t_idx].as_ratings(), c[c_idx].as_ratings()) {
                        (Some(a), Some(b)) => Some(sim.score(a, b, *min_common)),
                        _ => None,
                    }
                }
                RecMethod::RatingLookup => {
                    let maps = lookup_maps.as_ref().expect("built for lookup");
                    t[t_idx]
                        .as_scalar()
                        .and_then(|key| maps[i].get(key).copied())
                }
            };
            if let Some(s) = score {
                let w = match weight_idx {
                    Some(wi) => match c[wi].as_scalar() {
                        Some(Value::Float(f)) => *f,
                        Some(Value::Int(n)) => *n as f64,
                        _ => 0.0,
                    },
                    None => 1.0,
                };
                acc_sum += s * w;
                acc_weight += w;
                acc_n += 1;
                acc_max = acc_max.max(s);
            }
        }
        if acc_n == 0 {
            continue;
        }
        let final_score = match &spec.agg {
            RecAgg::Avg => acc_sum / acc_n as f64,
            RecAgg::Sum => acc_sum,
            RecAgg::Max => acc_max,
            RecAgg::WeightedAvg { .. } => {
                if acc_weight <= 0.0 {
                    continue;
                }
                acc_sum / acc_weight
            }
        };
        if final_score <= 0.0 {
            continue;
        }
        t.push(Datum::Scalar(Value::float(final_score)));
        scored.push((final_score, t));
    }
    // Deterministic order: score descending, then the first scalar
    // attribute ascending (usually the entity id). The SQL compiler emits
    // the same ORDER BY so both execution paths agree even at top-k tie
    // boundaries.
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                let ka = a.1.first().and_then(Datum::as_scalar);
                let kb = b.1.first().and_then(Datum::as_scalar);
                match (ka, kb) {
                    (Some(x), Some(y)) => x.total_cmp(y),
                    _ => std::cmp::Ordering::Equal,
                }
            })
    });
    if let Some(k) = spec.k {
        scored.truncate(k);
    }
    Ok(scored.into_iter().map(|(_, t)| t).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{RatingsSim, TextSim};
    use crate::workflow::CmpOp;
    use cr_relation::Database;

    /// A small CourseRank-shaped database (the paper's §3.2 schema:
    /// Courses / Students / Comments with ratings).
    fn db() -> Database {
        let db = Database::new();
        db.execute_sql("CREATE TABLE Courses (CourseID INT PRIMARY KEY, Title TEXT, Year INT)")
            .unwrap();
        db.execute_sql("CREATE TABLE Students (SuID INT PRIMARY KEY, Name TEXT)")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE Comments (SuID INT, CourseID INT, Rating FLOAT, PRIMARY KEY (SuID, CourseID))",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Courses VALUES \
             (1, 'Introduction to Programming', 2008), \
             (2, 'Programming Abstractions', 2008), \
             (3, 'Medieval History', 2008), \
             (4, 'Advanced Programming Topics', 2007), \
             (5, 'Operating Systems', 2008)",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Students VALUES (444, 'Sally'), (2, 'Bob'), (3, 'Ann'), (4, 'Tim')",
        )
        .unwrap();
        // Sally(444) and Bob(2) rate alike; Ann(3) is opposite; Tim(4)
        // rates course 5 highly and resembles Sally.
        db.execute_sql(
            "INSERT INTO Comments VALUES \
             (444, 1, 5.0), (444, 3, 2.0), \
             (2, 1, 5.0), (2, 3, 2.0), (2, 2, 4.5), \
             (3, 1, 1.0), (3, 3, 5.0), (3, 5, 1.5), \
             (4, 1, 4.5), (4, 3, 2.5), (4, 5, 5.0)",
        )
        .unwrap();
        db
    }

    fn extend_students() -> Node {
        Node::Extend {
            input: Box::new(Node::Source {
                table: "Students".into(),
            }),
            related_table: "Comments".into(),
            fk_column: "SuID".into(),
            local_key: "SuID".into(),
            key_column: "CourseID".into(),
            rating_column: Some("Rating".into()),
            as_name: "ratings".into(),
        }
    }

    #[test]
    fn figure_5a_related_courses() {
        let db = db();
        let wf = Workflow::new(
            "related",
            Node::Recommend {
                target: Box::new(Node::Select {
                    input: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                    predicate: WfPredicate::And(vec![
                        WfPredicate::eq("Year", 2008i64),
                        WfPredicate::cmp("CourseID", CmpOp::NotEq, 1i64),
                    ]),
                }),
                comparator: Box::new(Node::Select {
                    input: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                    predicate: WfPredicate::eq("Title", "Introduction to Programming"),
                }),
                spec: RecommendSpec::new("Title", "Title", RecMethod::Text(TextSim::WordJaccard))
                    .top_k(3),
            },
        );
        let r = execute(&wf, &db.catalog()).unwrap();
        // 'Programming Abstractions' shares a word; medieval history gets
        // score 0 and is filtered; 2007 course excluded by the select.
        let ranking = r.ranking("CourseID", "score").unwrap();
        assert_eq!(ranking[0].0, Value::Int(2));
        assert!(ranking.iter().all(|(id, _)| *id != Value::Int(3)));
        assert!(ranking.iter().all(|(id, _)| *id != Value::Int(4)));
    }

    #[test]
    fn figure_5b_collaborative_filtering() {
        let db = db();
        // Lower recommend: students similar to 444 by inverse Euclidean.
        let lower = Node::Recommend {
            target: Box::new(Node::Select {
                input: Box::new(extend_students()),
                predicate: WfPredicate::cmp("SuID", CmpOp::NotEq, 444i64),
            }),
            comparator: Box::new(Node::Select {
                input: Box::new(extend_students()),
                predicate: WfPredicate::eq("SuID", 444i64),
            }),
            spec: RecommendSpec::new(
                "ratings",
                "ratings",
                RecMethod::Ratings {
                    sim: RatingsSim::InverseEuclidean,
                    min_common: 2,
                },
            )
            .top_k(2)
            .score_as("sim"),
        };
        // Upper recommend: rank courses by avg rating of similar students,
        // excluding what 444 already took? Figure 5(b) doesn't exclude;
        // we test both paths elsewhere.
        let upper = Node::Recommend {
            target: Box::new(Node::Source {
                table: "Courses".into(),
            }),
            comparator: Box::new(lower),
            spec: RecommendSpec::new("CourseID", "ratings", RecMethod::RatingLookup)
                .with_agg(RecAgg::Avg)
                .top_k(5),
        };
        let wf = Workflow::new("cf", upper);
        let r = execute(&wf, &db.catalog()).unwrap();
        let ranking = r.ranking("CourseID", "score").unwrap();
        // Similar students = Bob (identical on courses 1,3) and Tim.
        let score_by_id: HashMap<Value, f64> = ranking.iter().cloned().collect();
        // Course 1: Bob 5.0, Tim 4.5 → 4.75.
        assert!((score_by_id[&Value::Int(1)] - 4.75).abs() < 1e-9);
        // Course 5: only Tim rated it (5.0) among the similar set.
        assert!((score_by_id[&Value::Int(5)] - 5.0).abs() < 1e-9);
        // Course 3 (both rated it low) must rank below course 1.
        assert!(score_by_id[&Value::Int(3)] < score_by_id[&Value::Int(1)]);
        // Ranking is score-descending.
        for w in ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn exclude_seen_filters_taken_courses() {
        let db = db();
        let lower = Node::Select {
            input: Box::new(extend_students()),
            predicate: WfPredicate::eq("SuID", 444i64),
        };
        let upper = Node::Recommend {
            target: Box::new(Node::Source {
                table: "Courses".into(),
            }),
            comparator: Box::new(Node::Recommend {
                target: Box::new(Node::Select {
                    input: Box::new(extend_students()),
                    predicate: WfPredicate::cmp("SuID", CmpOp::NotEq, 444i64),
                }),
                comparator: Box::new(lower),
                spec: RecommendSpec::new(
                    "ratings",
                    "ratings",
                    RecMethod::Ratings {
                        sim: RatingsSim::InverseEuclidean,
                        min_common: 2,
                    },
                )
                .top_k(2)
                .score_as("sim"),
            }),
            spec: RecommendSpec::new("CourseID", "ratings", RecMethod::RatingLookup)
                .with_agg(RecAgg::Avg)
                .excluding_seen("CourseID", "ratings"),
        };
        // exclude_seen here removes courses any *similar student* took —
        // the novelty-only variant.
        let r = execute(&Workflow::new("novel", upper), &db.catalog()).unwrap();
        let ranking = r.ranking("CourseID", "score").unwrap();
        // Bob and Tim took courses 1,2,3,5 between them → nothing new.
        assert!(ranking.is_empty());
    }

    #[test]
    fn weighted_avg_uses_similarity_weights() {
        let db = db();
        let lower = Node::Recommend {
            target: Box::new(Node::Select {
                input: Box::new(extend_students()),
                predicate: WfPredicate::cmp("SuID", CmpOp::NotEq, 444i64),
            }),
            comparator: Box::new(Node::Select {
                input: Box::new(extend_students()),
                predicate: WfPredicate::eq("SuID", 444i64),
            }),
            spec: RecommendSpec::new(
                "ratings",
                "ratings",
                RecMethod::Ratings {
                    sim: RatingsSim::InverseEuclidean,
                    min_common: 2,
                },
            )
            .score_as("sim"),
        };
        let upper = Node::Recommend {
            target: Box::new(Node::Source {
                table: "Courses".into(),
            }),
            comparator: Box::new(lower),
            spec: RecommendSpec::new("CourseID", "ratings", RecMethod::RatingLookup).with_agg(
                RecAgg::WeightedAvg {
                    weight_attr: "sim".into(),
                },
            ),
        };
        let r = execute(&Workflow::new("wcf", upper), &db.catalog()).unwrap();
        let ranking = r.ranking("CourseID", "score").unwrap();
        assert!(!ranking.is_empty());
        // Bob (sim 1.0) rates course 1 at 5.0; Ann (low sim) at 1.0; Tim in
        // between. The weighted average must stay close to Bob's rating.
        let m: HashMap<Value, f64> = ranking.iter().cloned().collect();
        assert!(m[&Value::Int(1)] > 4.0, "{m:?}");
    }

    #[test]
    fn join_and_project() {
        let db = db();
        let wf = Workflow::new(
            "join",
            Node::Project {
                input: Box::new(Node::Join {
                    left: Box::new(Node::Source {
                        table: "Comments".into(),
                    }),
                    right: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                    left_col: "CourseID".into(),
                    right_col: "CourseID".into(),
                }),
                // Ambiguity note: projection picks the first "CourseID".
                columns: vec!["SuID".into(), "Title".into(), "Rating".into()],
            },
        );
        let r = execute(&wf, &db.catalog()).unwrap();
        assert_eq!(r.tuples.len(), 11);
        assert_eq!(r.schema.len(), 3);
    }

    #[test]
    fn set_extend_and_set_similarity() {
        let db = db();
        // Extend students with the *set* of courses they commented on.
        let extended = Node::Extend {
            input: Box::new(Node::Source {
                table: "Students".into(),
            }),
            related_table: "Comments".into(),
            fk_column: "SuID".into(),
            local_key: "SuID".into(),
            key_column: "CourseID".into(),
            rating_column: None,
            as_name: "courses".into(),
        };
        let wf = Workflow::new(
            "set_sim",
            Node::Recommend {
                target: Box::new(Node::Select {
                    input: Box::new(extended.clone()),
                    predicate: WfPredicate::cmp("SuID", CmpOp::NotEq, 444i64),
                }),
                comparator: Box::new(Node::Select {
                    input: Box::new(extended),
                    predicate: WfPredicate::eq("SuID", 444i64),
                }),
                spec: RecommendSpec::new(
                    "courses",
                    "courses",
                    RecMethod::Set(crate::similarity::SetSim::Jaccard),
                ),
            },
        );
        let r = execute(&wf, &db.catalog()).unwrap();
        let ranking = r.ranking("SuID", "score").unwrap();
        // Bob shares {1,3} of his {1,2,3} with Sally's {1,3}: J = 2/3.
        assert_eq!(ranking[0].0, Value::Int(2));
        assert!((ranking[0].1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn limit_and_union() {
        let db = db();
        let wf = Workflow::new(
            "lu",
            Node::Limit {
                input: Box::new(Node::Union {
                    left: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                    right: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                }),
                k: 7,
            },
        );
        let r = execute(&wf, &db.catalog()).unwrap();
        assert_eq!(r.tuples.len(), 7);
    }

    #[test]
    fn result_table_renders() {
        let db = db();
        let wf = Workflow::new(
            "t",
            Node::Source {
                table: "Courses".into(),
            },
        );
        let r = execute(&wf, &db.catalog()).unwrap();
        let text = r.to_text_table();
        assert!(text.contains("Title"));
        assert!(text.contains("Introduction to Programming"));
    }

    #[test]
    fn ranking_errors_on_missing_columns() {
        let db = db();
        let wf = Workflow::new(
            "t",
            Node::Source {
                table: "Courses".into(),
            },
        );
        let r = execute(&wf, &db.catalog()).unwrap();
        assert!(r.ranking("Nope", "score").is_err());
    }
}
