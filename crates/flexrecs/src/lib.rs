//! # cr-flexrecs — declarative recommendation workflows
//!
//! Implements FlexRecs from §3.2 of *Social Systems: Can We Do More Than
//! Just Poke Friends?* (CIDR 2009):
//!
//! > "At the heart of FlexRecs lies a special **recommend operator**, which
//! > takes as input a set of tuples and ranks them by comparing them to
//! > another set of tuples. The operator may call upon functions in a
//! > library that implement common tasks for recommendations, such as
//! > computing the Jaccard or Pearson similarity of two sets of objects.
//! > The operator may be combined with other recommend operators and
//! > traditional relational operators […] The engine executes a workflow by
//! > 'compiling' it into a sequence of SQL calls, which are executed by a
//! > conventional DBMS."
//!
//! * [`datum`] — set-valued tuples: the **extend** operator (ε in Figure
//!   5b) nests related tuples as a set/ratings attribute "irrespective of
//!   the database schema";
//! * [`similarity`] — the function library (Jaccard, Dice, overlap,
//!   cosine, Pearson, inverse Euclidean, text similarity);
//! * [`workflow`] — the operator DAG (source, select, project, join,
//!   extend, recommend, limit, union) with schema validation and a
//!   Figure-5-style textual rendering;
//! * [`exec`] — the direct executor over a [`cr_relation::Database`];
//! * [`compile`] — the SQL compiler: workflows whose recommend steps are
//!   expressible relationally (rating lookups, inverse-Euclidean rating
//!   distance) become actual SQL strings run by the engine; others fall
//!   back to "external functions called by the SQL statements" (hybrid);
//! * [`templates`] — the paper's two Figure 5 workflows plus the
//!   course/major/quarter recommenders §3.2 describes CourseRank shipping.

#![forbid(unsafe_code)]

pub mod compile;
pub mod datum;
pub mod exec;
pub mod lint;
pub mod templates;
pub mod workflow;

/// The similarity function library now lives in `cr_relation` (the plan's
/// Recommend operator calls it directly); re-exported here so workflow
/// authors keep one import root.
pub use cr_relation::similarity;

pub use compile::{compile_and_run, CompiledRun, StepTiming};
pub use datum::{Datum, Tuple, WfSchema, WfType};
pub use exec::{execute, RecResult};
pub use lint::{lint, lint_for, LintReport};
pub use similarity::{RatingsSim, SetSim, TextSim};
pub use workflow::{CmpOp, Node, RecAgg, RecMethod, RecommendSpec, WfPredicate, Workflow};
