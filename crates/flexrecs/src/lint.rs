//! The workflow linter: static analysis for FlexRecs workflows.
//!
//! The paper's pitch for declarative workflows is that they are *checkable*
//! artifacts — "site managers can define recommendations declaratively" —
//! which only pays off if a bad workflow is caught at definition time, not
//! as a wrong result at serving time. `lint` compiles a workflow onto the
//! unified [`LogicalPlan`] IR and runs the plan validator plus the dataflow
//! analyses over the result, surfacing everything as coded diagnostics:
//!
//! * `E…` — the workflow cannot run (failed to compile, or lowering
//!   produced an ill-formed plan);
//! * `W…` — the workflow runs but is suspicious (contradictory filter,
//!   unbounded recommend, extend whose nested column is never used, …).
//!
//! Linting never fails and never panics: a workflow that cannot even be
//! compiled yields an [`E_COMPILE`] diagnostic instead of an error.

use std::fmt;

use cr_relation::catalog::Catalog;
use cr_relation::plan::flow::{self, Principal};
use cr_relation::plan::validate::{self, Diagnostic};

use crate::compile::compile;
use crate::workflow::Workflow;

/// The workflow failed to compile onto the plan IR (unknown table or
/// attribute, recommend type mismatch, …).
pub const E_COMPILE: &str = "E100";

/// Result of linting one workflow.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Name of the linted workflow.
    pub workflow: String,
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// No errors (warnings are allowed — a clean workflow may still warn).
    pub fn is_clean(&self) -> bool {
        !self.diagnostics.iter().any(Diagnostic::is_error)
    }

    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }

    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.is_error())
    }

    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// One rendered line per diagnostic: `W106 warning at Recommend: …`.
    pub fn lines(&self) -> Vec<String> {
        self.diagnostics.iter().map(Diagnostic::to_string).collect()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "{}: clean", self.workflow);
        }
        writeln!(
            f,
            "{}: {} error(s), {} warning(s)",
            self.workflow,
            self.errors().count(),
            self.warnings().count()
        )?;
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Lint a workflow against a catalog. Infallible: compile failures become
/// an [`E_COMPILE`] diagnostic, not an error.
///
/// Disclosure is checked for the *template student* ([`Principal::Student`]
/// `(None)`): workflows are defined once and then selected by arbitrary
/// student sessions, so define-time lint must prove the plan safe for the
/// least-privileged principal that will run it. Use [`lint_for`] to lint
/// for a different principal (e.g. a staff-only reporting workflow).
pub fn lint(workflow: &Workflow, catalog: &Catalog) -> LintReport {
    lint_for(workflow, catalog, &Principal::Student(None))
}

/// [`lint`] for an explicit principal: structural analysis plus
/// [`flow::check_disclosure`] against `principal`'s clearance.
pub fn lint_for(workflow: &Workflow, catalog: &Catalog, principal: &Principal) -> LintReport {
    let diagnostics = match compile(workflow, catalog) {
        // Analyze the *unoptimized* lowered plan: operator paths then map
        // 1:1 onto the workflow the author wrote, and warnings the
        // optimizer would mask (e.g. a contradictory filter folded away)
        // still surface.
        Ok(plan) => {
            let mut diags = validate::analyze(&plan, Some(catalog)).diagnostics;
            diags.extend(flow::check_disclosure(&plan, catalog, principal).diagnostics);
            diags
        }
        Err(e) => vec![Diagnostic::error(
            E_COMPILE,
            "workflow",
            format!("workflow failed to compile: {e}"),
        )],
    };
    LintReport {
        workflow: workflow.name.clone(),
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates;
    use crate::workflow::{CmpOp, Node, WfPredicate};
    use cr_relation::catalog::Database;

    fn campus() -> Database {
        let db = Database::new();
        for stmt in [
            "CREATE TABLE Courses (CourseID INT PRIMARY KEY, Title TEXT, Year INT)",
            "CREATE TABLE Students (SuID INT PRIMARY KEY, Name TEXT)",
            "CREATE TABLE Comments (SuID INT, CourseID INT, Rating FLOAT, \
             PRIMARY KEY (SuID, CourseID))",
            "INSERT INTO Courses VALUES (1, 'Intro Programming', 2008), (2, 'Systems', 2008)",
            "INSERT INTO Students VALUES (1, 'Ada'), (2, 'Grace')",
            "INSERT INTO Comments VALUES (1, 1, 5.0), (2, 1, 4.0), (2, 2, 3.0)",
        ] {
            db.execute_sql(stmt).unwrap();
        }
        db
    }

    #[test]
    fn valid_template_lints_clean() {
        let db = campus();
        let wf = templates::user_cf(&templates::SchemaMap::default(), 1, 5, 5, 1, true);
        let report = lint(&wf, &db.catalog());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn uncompilable_workflow_yields_e100_not_panic() {
        let db = campus();
        let wf = Workflow::new(
            "broken",
            Node::Source {
                table: "NoSuchTable".into(),
            },
        );
        let report = lint(&wf, &db.catalog());
        assert!(!report.is_clean());
        assert!(report.has_code(E_COMPILE), "{report}");
    }

    #[test]
    fn contradictory_select_warns() {
        let db = campus();
        let wf = Workflow::new(
            "contradiction",
            Node::Select {
                input: Box::new(Node::Select {
                    input: Box::new(Node::Source {
                        table: "Students".into(),
                    }),
                    predicate: WfPredicate::cmp("SuID", CmpOp::Eq, 1i64),
                }),
                predicate: WfPredicate::cmp("SuID", CmpOp::Eq, 2i64),
            },
        );
        let report = lint(&wf, &db.catalog());
        assert!(report.is_clean(), "contradiction is a warning: {report}");
        assert!(
            report.has_code(cr_relation::plan::validate::W_CONTRADICTION),
            "{report}"
        );
    }

    #[test]
    fn workflow_lint_method_delegates() {
        let db = campus();
        let wf = templates::related_courses(&templates::SchemaMap::default(), "Systems", None, 5);
        let report = wf.lint(&db.catalog());
        assert!(report.is_clean(), "{report}");
    }
}
