//! The workflow algebra.
//!
//! A workflow is a tree of operators over set-valued tuples. The two
//! workflows of Figure 5 look like this in our algebra (see
//! [`crate::templates`] for the runnable versions):
//!
//! ```text
//! (a)  Recommend[title ~ title, WordJaccard]
//!        target:     σ(Year=2008)(Courses)
//!        comparator: σ(Title='Introduction to Programming')(Courses)
//!
//! (b)  Recommend[rating lookup, avg]               ← upper triangle
//!        target:     Courses
//!        comparator: Limit k (
//!          Recommend[ratings ~ ratings, InverseEuclidean]   ← lower
//!            target:     ε_ratings(Students)     ← extend
//!            comparator: σ(SuID=444) ε_ratings(Students)
//!        )
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

use cr_relation::Value;

use crate::datum::{WfSchema, WfType};

/// Comparison operators for workflow predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    pub fn sql(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        }
    }

    pub fn eval(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::NotEq => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::LtEq => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::GtEq => ord != Less,
        }
    }
}

/// Predicates over scalar workflow attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WfPredicate {
    Cmp {
        column: String,
        op: CmpOp,
        value: Value,
    },
    And(Vec<WfPredicate>),
    Or(Vec<WfPredicate>),
}

impl WfPredicate {
    pub fn eq(column: &str, value: impl Into<Value>) -> Self {
        WfPredicate::Cmp {
            column: column.to_owned(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    pub fn cmp(column: &str, op: CmpOp, value: impl Into<Value>) -> Self {
        WfPredicate::Cmp {
            column: column.to_owned(),
            op,
            value: value.into(),
        }
    }

    /// Columns referenced (for validation).
    pub fn columns(&self, out: &mut Vec<String>) {
        match self {
            WfPredicate::Cmp { column, .. } => out.push(column.clone()),
            WfPredicate::And(ps) | WfPredicate::Or(ps) => {
                for p in ps {
                    p.columns(out);
                }
            }
        }
    }
}

impl fmt::Display for WfPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WfPredicate::Cmp { column, op, value } => match value {
                Value::Text(s) => write!(f, "{column} {} '{s}'", op.sql()),
                other => write!(f, "{column} {} {other}", op.sql()),
            },
            WfPredicate::And(ps) => {
                let parts: Vec<String> = ps.iter().map(ToString::to_string).collect();
                write!(f, "({})", parts.join(" AND "))
            }
            WfPredicate::Or(ps) => {
                let parts: Vec<String> = ps.iter().map(ToString::to_string).collect();
                write!(f, "({})", parts.join(" OR "))
            }
        }
    }
}

/// How the recommend operator scores a target tuple against one comparator
/// tuple. This is the plan layer's [`cr_relation::plan::RecMethod`] —
/// workflows share the type with the plan's `Recommend` operator so
/// compilation carries the method through unchanged.
pub use cr_relation::plan::RecMethod;

/// How per-comparator scores combine into the target's final score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecAgg {
    /// Average of non-missing per-comparator scores.
    Avg,
    Sum,
    Max,
    /// Weighted average, weights drawn from a comparator scalar attribute
    /// (typically the similarity score produced by a lower recommend
    /// operator — classic weighted CF).
    WeightedAvg {
        weight_attr: String,
    },
}

impl fmt::Display for RecAgg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecAgg::Avg => write!(f, "avg"),
            RecAgg::Sum => write!(f, "sum"),
            RecAgg::Max => write!(f, "max"),
            RecAgg::WeightedAvg { weight_attr } => write!(f, "wavg[{weight_attr}]"),
        }
    }
}

/// Full parameterization of a recommend operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendSpec {
    /// Attribute of the target tuples to compare (or the key attribute
    /// for [`RecMethod::RatingLookup`]).
    pub target_attr: String,
    /// Attribute of the comparator tuples.
    pub comparator_attr: String,
    pub method: RecMethod,
    pub agg: RecAgg,
    /// Keep only the top-k scored targets (None = all with score > 0).
    pub k: Option<usize>,
    /// Acknowledge an unbounded output (see
    /// [`RecommendSpec::expect_unbounded`]); suppresses lint W106.
    pub unbounded_ok: bool,
    /// Name of the appended score column.
    pub score_name: String,
    /// Drop targets whose key equals a comparator key attribute value
    /// (e.g. don't recommend courses the student already took). Pair of
    /// (target_attr, comparator set attr).
    pub exclude_seen: Option<(String, String)>,
}

impl RecommendSpec {
    pub fn new(target_attr: &str, comparator_attr: &str, method: RecMethod) -> Self {
        RecommendSpec {
            target_attr: target_attr.to_owned(),
            comparator_attr: comparator_attr.to_owned(),
            method,
            agg: RecAgg::Max,
            k: None,
            unbounded_ok: false,
            score_name: "score".to_owned(),
            exclude_seen: None,
        }
    }

    pub fn with_agg(mut self, agg: RecAgg) -> Self {
        self.agg = agg;
        self
    }

    pub fn top_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Vouch that an unbounded recommend (no [`RecommendSpec::top_k`]) is
    /// intentional — the consumer aggregates or truncates the scored rows
    /// downstream (e.g. the department rollup over per-course scores).
    /// Suppresses the linter's W106 warning for this operator only.
    pub fn expect_unbounded(mut self) -> Self {
        self.unbounded_ok = true;
        self
    }

    pub fn score_as(mut self, name: &str) -> Self {
        self.score_name = name.to_owned();
        self
    }

    pub fn excluding_seen(mut self, target_attr: &str, comparator_set_attr: &str) -> Self {
        self.exclude_seen = Some((target_attr.to_owned(), comparator_set_attr.to_owned()));
        self
    }
}

/// A workflow node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Scan a relation; all columns become scalar attributes.
    Source { table: String },
    /// Filter.
    Select {
        input: Box<Node>,
        predicate: WfPredicate,
    },
    /// Keep named attributes.
    Project {
        input: Box<Node>,
        columns: Vec<String>,
    },
    /// Equi-join on scalar attributes.
    Join {
        left: Box<Node>,
        right: Box<Node>,
        left_col: String,
        right_col: String,
    },
    /// The ε operator: nest related tuples as a set/ratings attribute.
    /// For each input tuple, rows of `related_table` with
    /// `related_table.fk_column == tuple[local_key]` are collected; if
    /// `rating_column` is given the result is a Ratings attribute of
    /// (related key, rating), otherwise a Set of the related key values.
    Extend {
        input: Box<Node>,
        related_table: String,
        fk_column: String,
        local_key: String,
        key_column: String,
        rating_column: Option<String>,
        as_name: String,
    },
    /// The recommend operator (▷ in Figure 5).
    Recommend {
        target: Box<Node>,
        comparator: Box<Node>,
        spec: RecommendSpec,
    },
    /// Keep the first k tuples.
    Limit { input: Box<Node>, k: usize },
    /// Bag union.
    Union { left: Box<Node>, right: Box<Node> },
}

/// A workflow: a root node plus a human-readable name (shown by the
/// CourseRank admin interface the paper describes — "this tool lets the
/// administrator quickly define recommendation strategies").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    pub name: String,
    pub root: Node,
}

impl Workflow {
    pub fn new(name: &str, root: Node) -> Self {
        Workflow {
            name: name.to_owned(),
            root,
        }
    }

    /// Render the workflow tree (Figure 5 in ASCII).
    pub fn explain(&self) -> String {
        let mut out = format!("workflow: {}\n", self.name);
        explain_node(&self.root, 1, &mut out);
        out
    }

    /// Statically check this workflow against a catalog: compile it onto
    /// the plan IR and run the plan validator plus dataflow analyses.
    /// Infallible — see [`crate::lint::lint`].
    pub fn lint(&self, catalog: &cr_relation::catalog::Catalog) -> crate::lint::LintReport {
        crate::lint::lint(self, catalog)
    }

    /// [`Workflow::lint`] for an explicit principal (disclosure is checked
    /// against that principal's clearance instead of the template student).
    pub fn lint_for(
        &self,
        catalog: &cr_relation::catalog::Catalog,
        principal: &cr_relation::plan::flow::Principal,
    ) -> crate::lint::LintReport {
        crate::lint::lint_for(self, catalog, principal)
    }
}

fn explain_node(node: &Node, depth: usize, out: &mut String) {
    use std::fmt::Write;
    let pad = "  ".repeat(depth);
    match node {
        Node::Source { table } => {
            let _ = writeln!(out, "{pad}Source {table}");
        }
        Node::Select { input, predicate } => {
            let _ = writeln!(out, "{pad}Select σ[{predicate}]");
            explain_node(input, depth + 1, out);
        }
        Node::Project { input, columns } => {
            let _ = writeln!(out, "{pad}Project π[{}]", columns.join(", "));
            explain_node(input, depth + 1, out);
        }
        Node::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let _ = writeln!(out, "{pad}Join ⋈[{left_col} = {right_col}]");
            explain_node(left, depth + 1, out);
            explain_node(right, depth + 1, out);
        }
        Node::Extend {
            input,
            related_table,
            as_name,
            rating_column,
            ..
        } => {
            let kind = if rating_column.is_some() {
                "ratings"
            } else {
                "set"
            };
            let _ = writeln!(
                out,
                "{pad}Extend ε[{as_name} := {kind} from {related_table}]"
            );
            explain_node(input, depth + 1, out);
        }
        Node::Recommend {
            target,
            comparator,
            spec,
        } => {
            let k = spec.k.map(|k| format!(", top {k}")).unwrap_or_default();
            let _ = writeln!(
                out,
                "{pad}Recommend ▷[{} ~ {}, {}, agg={}{}]",
                spec.target_attr,
                spec.comparator_attr,
                spec.method.name(),
                spec.agg,
                k
            );
            let _ = writeln!(out, "{pad}  target:");
            explain_node(target, depth + 2, out);
            let _ = writeln!(out, "{pad}  comparator:");
            explain_node(comparator, depth + 2, out);
        }
        Node::Limit { input, k } => {
            let _ = writeln!(out, "{pad}Limit {k}");
            explain_node(input, depth + 1, out);
        }
        Node::Union { left, right } => {
            let _ = writeln!(out, "{pad}Union ∪");
            explain_node(left, depth + 1, out);
            explain_node(right, depth + 1, out);
        }
    }
}

/// Compute the output schema of a node against a database, validating
/// attribute references along the way.
pub fn infer_schema(
    node: &Node,
    catalog: &cr_relation::Catalog,
) -> cr_relation::RelResult<WfSchema> {
    use cr_relation::RelError;
    match node {
        Node::Source { table } => {
            let schema = catalog.table_schema(table)?;
            Ok(WfSchema {
                columns: schema
                    .columns()
                    .iter()
                    .map(|c| (c.name.clone(), WfType::Scalar))
                    .collect(),
            })
        }
        Node::Select { input, predicate } => {
            let s = infer_schema(input, catalog)?;
            let mut cols = Vec::new();
            predicate.columns(&mut cols);
            for c in cols {
                let idx = s
                    .index_of(&c)
                    .ok_or_else(|| RelError::UnknownColumn(c.clone()))?;
                if s.columns[idx].1 != WfType::Scalar {
                    return Err(RelError::Invalid(format!(
                        "predicate column {c} is not scalar"
                    )));
                }
            }
            Ok(s)
        }
        Node::Project { input, columns } => {
            let s = infer_schema(input, catalog)?;
            let mut out = WfSchema::default();
            for c in columns {
                let idx = s
                    .index_of(c)
                    .ok_or_else(|| RelError::UnknownColumn(c.clone()))?;
                out.columns.push(s.columns[idx].clone());
            }
            Ok(out)
        }
        Node::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let ls = infer_schema(left, catalog)?;
            let rs = infer_schema(right, catalog)?;
            ls.index_of(left_col)
                .ok_or_else(|| RelError::UnknownColumn(left_col.clone()))?;
            rs.index_of(right_col)
                .ok_or_else(|| RelError::UnknownColumn(right_col.clone()))?;
            Ok(ls.join(&rs))
        }
        Node::Extend {
            input,
            related_table,
            fk_column,
            local_key,
            key_column,
            rating_column,
            as_name,
        } => {
            let mut s = infer_schema(input, catalog)?;
            s.index_of(local_key)
                .ok_or_else(|| RelError::UnknownColumn(local_key.clone()))?;
            let rel = catalog.table_schema(related_table)?;
            rel.index_of(fk_column)?;
            rel.index_of(key_column)?;
            if let Some(rc) = rating_column {
                rel.index_of(rc)?;
                s.push(as_name.clone(), WfType::Ratings);
            } else {
                s.push(as_name.clone(), WfType::Set);
            }
            Ok(s)
        }
        Node::Recommend {
            target,
            comparator,
            spec,
        } => {
            let ts = infer_schema(target, catalog)?;
            let cs = infer_schema(comparator, catalog)?;
            let t_idx = ts
                .index_of(&spec.target_attr)
                .ok_or_else(|| RelError::UnknownColumn(spec.target_attr.clone()))?;
            let c_idx = cs
                .index_of(&spec.comparator_attr)
                .ok_or_else(|| RelError::UnknownColumn(spec.comparator_attr.clone()))?;
            // Type discipline per method.
            let (t_ty, c_ty) = (ts.columns[t_idx].1, cs.columns[c_idx].1);
            let ok = match &spec.method {
                RecMethod::Text(_) => t_ty == WfType::Scalar && c_ty == WfType::Scalar,
                RecMethod::Set(_) => t_ty == WfType::Set && c_ty == WfType::Set,
                RecMethod::Ratings { .. } => t_ty == WfType::Ratings && c_ty == WfType::Ratings,
                RecMethod::RatingLookup => t_ty == WfType::Scalar && c_ty == WfType::Ratings,
            };
            if !ok {
                return Err(RelError::Invalid(format!(
                    "recommend method {} incompatible with attribute types {t_ty:?}/{c_ty:?}",
                    spec.method.name()
                )));
            }
            if let RecAgg::WeightedAvg { weight_attr } = &spec.agg {
                let w = cs
                    .index_of(weight_attr)
                    .ok_or_else(|| RelError::UnknownColumn(weight_attr.clone()))?;
                if cs.columns[w].1 != WfType::Scalar {
                    return Err(RelError::Invalid(format!(
                        "weight attribute {weight_attr} is not scalar"
                    )));
                }
            }
            if let Some((t_attr, c_attr)) = &spec.exclude_seen {
                ts.index_of(t_attr)
                    .ok_or_else(|| RelError::UnknownColumn(t_attr.clone()))?;
                let ci = cs
                    .index_of(c_attr)
                    .ok_or_else(|| RelError::UnknownColumn(c_attr.clone()))?;
                if cs.columns[ci].1 == WfType::Scalar {
                    return Err(RelError::Invalid(format!(
                        "exclude_seen comparator attribute {c_attr} must be set/ratings"
                    )));
                }
            }
            let mut out = ts;
            out.push(spec.score_name.clone(), WfType::Scalar);
            Ok(out)
        }
        Node::Limit { input, .. } => infer_schema(input, catalog),
        Node::Union { left, right } => {
            let ls = infer_schema(left, catalog)?;
            let rs = infer_schema(right, catalog)?;
            if ls.len() != rs.len() {
                return Err(RelError::Invalid(format!(
                    "union arity mismatch: {} vs {}",
                    ls.len(),
                    rs.len()
                )));
            }
            Ok(ls)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{RatingsSim, TextSim};
    use cr_relation::Database;

    fn db() -> Database {
        let db = Database::new();
        db.execute_sql("CREATE TABLE Courses (CourseID INT PRIMARY KEY, Title TEXT, Year INT)")
            .unwrap();
        db.execute_sql("CREATE TABLE Students (SuID INT PRIMARY KEY, Name TEXT)")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE Comments (SuID INT, CourseID INT, Rating FLOAT, PRIMARY KEY (SuID, CourseID))",
        )
        .unwrap();
        db
    }

    fn students_with_ratings() -> Node {
        Node::Extend {
            input: Box::new(Node::Source {
                table: "Students".into(),
            }),
            related_table: "Comments".into(),
            fk_column: "SuID".into(),
            local_key: "SuID".into(),
            key_column: "CourseID".into(),
            rating_column: Some("Rating".into()),
            as_name: "ratings".into(),
        }
    }

    #[test]
    fn source_schema() {
        let db = db();
        let s = infer_schema(
            &Node::Source {
                table: "Courses".into(),
            },
            &db.catalog(),
        )
        .unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.columns[1], ("Title".to_owned(), WfType::Scalar));
    }

    #[test]
    fn extend_adds_ratings_attr() {
        let db = db();
        let s = infer_schema(&students_with_ratings(), &db.catalog()).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.columns[2], ("ratings".to_owned(), WfType::Ratings));
    }

    #[test]
    fn recommend_type_checking() {
        let db = db();
        // ratings ~ ratings with inverse Euclidean: OK.
        let ok = Node::Recommend {
            target: Box::new(students_with_ratings()),
            comparator: Box::new(students_with_ratings()),
            spec: RecommendSpec::new(
                "ratings",
                "ratings",
                RecMethod::Ratings {
                    sim: RatingsSim::InverseEuclidean,
                    min_common: 1,
                },
            ),
        };
        let s = infer_schema(&ok, &db.catalog()).unwrap();
        assert_eq!(
            s.columns.last().unwrap(),
            &("score".to_owned(), WfType::Scalar)
        );

        // text similarity on a ratings attribute: rejected.
        let bad = Node::Recommend {
            target: Box::new(students_with_ratings()),
            comparator: Box::new(students_with_ratings()),
            spec: RecommendSpec::new("ratings", "ratings", RecMethod::Text(TextSim::WordJaccard)),
        };
        assert!(infer_schema(&bad, &db.catalog()).is_err());
    }

    #[test]
    fn unknown_column_in_predicate_rejected() {
        let db = db();
        let n = Node::Select {
            input: Box::new(Node::Source {
                table: "Courses".into(),
            }),
            predicate: WfPredicate::eq("Nope", 1i64),
        };
        assert!(infer_schema(&n, &db.catalog()).is_err());
    }

    #[test]
    fn weighted_avg_requires_scalar_weight() {
        let db = db();
        let n = Node::Recommend {
            target: Box::new(Node::Source {
                table: "Courses".into(),
            }),
            comparator: Box::new(students_with_ratings()),
            spec: RecommendSpec::new("CourseID", "ratings", RecMethod::RatingLookup).with_agg(
                RecAgg::WeightedAvg {
                    weight_attr: "ratings".into(), // not scalar!
                },
            ),
        };
        assert!(infer_schema(&n, &db.catalog()).is_err());
        let ok = Node::Recommend {
            target: Box::new(Node::Source {
                table: "Courses".into(),
            }),
            comparator: Box::new(students_with_ratings()),
            spec: RecommendSpec::new("CourseID", "ratings", RecMethod::RatingLookup).with_agg(
                RecAgg::WeightedAvg {
                    weight_attr: "SuID".into(),
                },
            ),
        };
        assert!(infer_schema(&ok, &db.catalog()).is_ok());
    }

    #[test]
    fn explain_renders_figure5_shape() {
        let wf = Workflow::new(
            "cf",
            Node::Recommend {
                target: Box::new(Node::Source {
                    table: "Courses".into(),
                }),
                comparator: Box::new(Node::Limit {
                    input: Box::new(Node::Recommend {
                        target: Box::new(students_with_ratings()),
                        comparator: Box::new(Node::Select {
                            input: Box::new(students_with_ratings()),
                            predicate: WfPredicate::eq("SuID", 444i64),
                        }),
                        spec: RecommendSpec::new(
                            "ratings",
                            "ratings",
                            RecMethod::Ratings {
                                sim: RatingsSim::InverseEuclidean,
                                min_common: 1,
                            },
                        ),
                    }),
                    k: 10,
                }),
                spec: RecommendSpec::new("CourseID", "ratings", RecMethod::RatingLookup)
                    .with_agg(RecAgg::Avg),
            },
        );
        let text = wf.explain();
        assert!(text.contains("Recommend ▷"));
        assert!(text.contains("inverse_euclidean"));
        assert!(text.contains("Extend ε"));
        assert!(text.contains("SuID = 444"));
        // Two recommend operators, like Figure 5(b).
        assert_eq!(text.matches("Recommend ▷").count(), 2);
    }
}
