//! Set-valued tuples.
//!
//! The paper's **extend** operator "allows the recommend operator to view
//! the set of ratings for each student as another attribute of the
//! student irrespective of the database schema". Relational rows hold only
//! scalars, so FlexRecs executes over its own tuple type whose attributes
//! may be scalars, sets of values, or rating maps (key → numeric rating).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use cr_relation::Value;

/// The type of a workflow attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WfType {
    Scalar,
    /// Set of values (e.g. the set of CourseIDs a student has taken).
    Set,
    /// Map key → rating (e.g. CourseID → rating the student gave).
    Ratings,
}

/// A workflow attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Datum {
    Scalar(Value),
    Set(Vec<Value>),
    Ratings(Vec<(Value, f64)>),
}

impl Datum {
    pub fn wf_type(&self) -> WfType {
        match self {
            Datum::Scalar(_) => WfType::Scalar,
            Datum::Set(_) => WfType::Set,
            Datum::Ratings(_) => WfType::Ratings,
        }
    }

    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            Datum::Scalar(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_set(&self) -> Option<&[Value]> {
        match self {
            Datum::Set(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_ratings(&self) -> Option<&[(Value, f64)]> {
        match self {
            Datum::Ratings(r) => Some(r),
            _ => None,
        }
    }

    /// Ratings as a map for similarity computation.
    pub fn ratings_map(&self) -> Option<HashMap<&Value, f64>> {
        self.as_ratings()
            .map(|r| r.iter().map(|(k, v)| (k, *v)).collect())
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Scalar(v) => write!(f, "{v}"),
            Datum::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Datum::Ratings(r) => {
                write!(f, "{{")?;
                for (i, (k, v)) in r.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}:{v:.1}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// A workflow tuple: named attributes in schema order.
pub type Tuple = Vec<Datum>;

/// A workflow schema: attribute names and types.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WfSchema {
    pub columns: Vec<(String, WfType)>,
}

impl WfSchema {
    pub fn scalar(names: &[&str]) -> Self {
        WfSchema {
            columns: names
                .iter()
                .map(|n| ((*n).to_owned(), WfType::Scalar))
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by name (case-insensitive, as in the SQL layer).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|(n, _)| n.eq_ignore_ascii_case(name))
    }

    pub fn push(&mut self, name: impl Into<String>, ty: WfType) {
        self.columns.push((name.into(), ty));
    }

    /// Concatenate (join output).
    pub fn join(&self, other: &WfSchema) -> WfSchema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        WfSchema { columns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datum_accessors() {
        let s = Datum::Scalar(Value::Int(1));
        assert_eq!(s.as_scalar(), Some(&Value::Int(1)));
        assert!(s.as_set().is_none());
        assert_eq!(s.wf_type(), WfType::Scalar);

        let set = Datum::Set(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(set.as_set().unwrap().len(), 2);

        let r = Datum::Ratings(vec![(Value::Int(1), 4.0), (Value::Int(2), 3.5)]);
        let map = r.ratings_map().unwrap();
        assert_eq!(map[&Value::Int(1)], 4.0);
    }

    #[test]
    fn schema_lookup_case_insensitive() {
        let s = WfSchema::scalar(&["CourseID", "Title"]);
        assert_eq!(s.index_of("courseid"), Some(0));
        assert_eq!(s.index_of("TITLE"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn schema_join_concatenates() {
        let mut a = WfSchema::scalar(&["x"]);
        a.push("ratings", WfType::Ratings);
        let b = WfSchema::scalar(&["y"]);
        let j = a.join(&b);
        assert_eq!(j.len(), 3);
        assert_eq!(j.columns[1].1, WfType::Ratings);
    }

    #[test]
    fn datum_display() {
        assert_eq!(Datum::Scalar(Value::text("x")).to_string(), "x");
        assert_eq!(
            Datum::Set(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "{1, 2}"
        );
        assert_eq!(
            Datum::Ratings(vec![(Value::Int(1), 4.0)]).to_string(),
            "{1:4.0}"
        );
    }
}
