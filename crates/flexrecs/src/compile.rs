//! Workflow → logical-plan compilation.
//!
//! §3.2: "The engine executes a workflow by 'compiling' it into a sequence
//! of SQL calls, which are executed by a conventional DBMS." Our engine
//! *is* the DBMS, so compilation targets its query IR directly: every
//! workflow operator lowers to a [`LogicalPlan`] node — relational
//! operators to scans/filters/projections/joins, the ε extend and ▷
//! recommend operators to the plan's first-class `Extend`/`Recommend`
//! nodes — and the whole plan then flows through the same optimizer and
//! (parallel) executor as SQL queries. One IR, one optimizer, one
//! executor.
//!
//! The direct interpreter in [`crate::exec`] survives as the reference
//! semantics; `tests/flexrecs_plan_equivalence.rs` property-tests that the
//! compiled plan returns byte-identical results.
//!
//! Lowering is purely structural:
//!
//! * names resolve positionally, first case-insensitive match — the same
//!   rule as the interpreter's `WfSchema::index_of`;
//! * predicates lower to two-valued expressions
//!   (`col IS NOT NULL AND col op lit`) so NULL comparisons behave as
//!   `false` inside `OR`, exactly like the interpreter;
//! * the extend operator's related table becomes a projected sub-plan
//!   `[fk, key(, rating)]`, so the optimizer can treat it like any other
//!   input.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use cr_relation::plan::{optimizer, JoinKind, LogicalPlan, RecAggPlan, RecSpec};
use cr_relation::{
    Catalog, Column, DataType, ExecOptions, Expr, RelError, RelResult, Schema, Value,
};

use crate::datum::Datum;
use crate::exec::RecResult;
use crate::workflow::{infer_schema, CmpOp, Node, RecAgg, WfPredicate, Workflow};

struct FrMetrics {
    compiled_runs: Arc<cr_obs::Counter>,
    run_ns: Arc<cr_obs::Histogram>,
    step_ns: Arc<cr_obs::Histogram>,
}

fn metrics() -> &'static FrMetrics {
    static M: OnceLock<FrMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = cr_obs::Registry::global();
        FrMetrics {
            compiled_runs: r.counter("flexrecs.compiled_runs"),
            run_ns: r.histogram("flexrecs.run_ns"),
            step_ns: r.histogram("flexrecs.step_ns"),
        }
    })
}

/// One timed phase of a compiled run, in execution order — what lets a
/// recommendation's latency be broken down step by step.
#[derive(Debug, Clone)]
pub struct StepTiming {
    /// Phase name: `"Lower"`, `"Optimize"`, or `"Execute"`.
    pub label: String,
    /// Rows the phase produced (0 for the plan-only phases).
    pub rows: usize,
    pub elapsed: Duration,
}

/// Result of a compiled run.
#[derive(Debug, Clone)]
pub struct CompiledRun {
    pub result: RecResult,
    /// The optimized plan that was executed.
    pub plan: LogicalPlan,
    /// Fingerprint of the optimized plan (cache key material).
    pub fingerprint: u64,
    /// Wall-clock timing per phase (lower, optimize, execute).
    pub step_timings: Vec<StepTiming>,
}

impl CompiledRun {
    /// Render the phase-by-phase timing breakdown as an aligned table.
    pub fn timing_breakdown(&self) -> String {
        use cr_relation::profile::fmt_duration;
        use std::fmt::Write as _;
        let mut out = String::from("step               rows       time\n");
        let mut total = Duration::ZERO;
        for s in &self.step_timings {
            total += s.elapsed;
            let _ = writeln!(
                out,
                "{:<18} {:<10} {}",
                s.label,
                s.rows,
                fmt_duration(s.elapsed)
            );
        }
        let _ = writeln!(out, "{:<18} {:<10} {}", "total", "", fmt_duration(total));
        out
    }
}

/// Compile a workflow to an (unoptimized) logical plan, validating it
/// first. Feed the result through the shared optimizer before execution —
/// [`compile_and_run`] does both.
pub fn compile(workflow: &Workflow, catalog: &Catalog) -> RelResult<LogicalPlan> {
    // Full workflow validation (attribute existence, recommend type
    // discipline) before lowering, so errors carry workflow-level names.
    infer_schema(&workflow.root, catalog)?;
    let plan = lower(&workflow.root, catalog)?;
    // The plan validator re-checks the lowered output (single tree walk,
    // well under the 5% compile budget): any error here is a lowering bug,
    // not a user mistake — surface it before it becomes a wrong answer.
    // Catalog-backed scan checks are skipped on this hot path: lowering
    // itself just resolved every table against the same catalog, so they
    // cannot fail here. The lint entry points run the full catalog-backed
    // analysis.
    let report = cr_relation::plan::validate::validate(&plan);
    if let Some(first) = report.first_error() {
        return Err(RelError::Invalid(format!(
            "internal: lowering produced an invalid plan for workflow `{}`: {first}",
            workflow.name
        )));
    }
    Ok(plan)
}

/// Compile and run a workflow on the plan pipeline with default execution
/// options.
pub fn compile_and_run(workflow: &Workflow, catalog: &Catalog) -> RelResult<CompiledRun> {
    compile_and_run_with(workflow, catalog, &ExecOptions::default())
}

/// [`compile_and_run`] with explicit execution options (parallelism).
pub fn compile_and_run_with(
    workflow: &Workflow,
    catalog: &Catalog,
    opts: &ExecOptions,
) -> RelResult<CompiledRun> {
    let mut run_span = cr_obs::trace::TraceSpan::child("flexrecs.run");
    if run_span.is_recording() {
        run_span.attr("workflow", workflow.name.to_string());
    }
    let started = Instant::now();
    let mut steps = Vec::with_capacity(3);
    let mut phase = |label: &str, rows: usize, elapsed: Duration| {
        if cr_obs::enabled() {
            metrics().step_ns.record_duration(elapsed);
        }
        steps.push(StepTiming {
            label: label.to_owned(),
            rows,
            elapsed,
        });
    };

    let t0 = Instant::now();
    let (out_schema, plan) = {
        let _stage = cr_obs::trace::TraceSpan::child("flexrecs.lower");
        let out_schema = infer_schema(&workflow.root, catalog)?;
        (out_schema, lower(&workflow.root, catalog)?)
    };
    phase("Lower", 0, t0.elapsed());

    let t0 = Instant::now();
    let plan = {
        let _stage = cr_obs::trace::TraceSpan::child("flexrecs.optimize");
        optimizer::optimize(plan)
    };
    phase("Optimize", 0, t0.elapsed());

    let t0 = Instant::now();
    let rs = {
        let _stage = cr_obs::trace::TraceSpan::child("flexrecs.execute");
        cr_relation::exec::execute_with(&plan, catalog, opts)?
    };
    phase("Execute", rs.rows.len(), t0.elapsed());

    let tuples = rs
        .rows
        .into_iter()
        .map(|r| r.into_iter().map(value_to_datum).collect())
        .collect();
    if cr_obs::enabled() {
        let m = metrics();
        m.compiled_runs.inc();
        m.run_ns.record_duration(started.elapsed());
    }
    let fingerprint = plan.fingerprint();
    Ok(CompiledRun {
        result: RecResult {
            schema: out_schema,
            tuples,
        },
        plan,
        fingerprint,
        step_timings: steps,
    })
}

/// Pretty-print the optimized plan a workflow compiles to, one operator
/// per line (indented children). Historically this returned the compiled
/// SQL step list; it now renders the plan the unified pipeline executes.
pub fn explain_sql(workflow: &Workflow, catalog: &Catalog) -> RelResult<Vec<String>> {
    let plan = optimizer::optimize(compile(workflow, catalog)?);
    Ok(plan.explain().lines().map(str::to_owned).collect())
}

fn value_to_datum(v: Value) -> Datum {
    match v {
        Value::Set(items) => Datum::Set(items),
        Value::Ratings(r) => Datum::Ratings(r),
        other => Datum::Scalar(other),
    }
}

/// Positional name resolution: first case-insensitive match, qualifiers
/// ignored — the workflow layer's `WfSchema::index_of` rule (NOT the SQL
/// binder's ambiguity-rejecting `Schema::resolve`).
fn resolve(schema: &Schema, name: &str) -> RelResult<usize> {
    (0..schema.len())
        .find(|&i| schema.column(i).name.eq_ignore_ascii_case(name))
        .ok_or_else(|| RelError::UnknownColumn(name.to_owned()))
}

fn lower(node: &Node, catalog: &Catalog) -> RelResult<LogicalPlan> {
    match node {
        Node::Source { table } => {
            let schema = catalog.table_schema(table)?;
            Ok(LogicalPlan::Scan {
                table: table.clone(),
                alias: None,
                projection: None,
                filter: None,
                schema,
            })
        }

        Node::Select { input, predicate } => {
            let input = lower(input, catalog)?;
            let predicate = lower_predicate(predicate, input.schema())?;
            Ok(LogicalPlan::Filter {
                input: Box::new(input),
                predicate,
            })
        }

        Node::Project { input, columns } => {
            let input = lower(input, catalog)?;
            let mut exprs = Vec::with_capacity(columns.len());
            let mut schema = Schema::default();
            for c in columns {
                let i = resolve(input.schema(), c)?;
                let col = input.schema().column(i);
                schema.push(
                    Column {
                        name: c.clone(),
                        data_type: col.data_type,
                        nullable: col.nullable,
                    },
                    None,
                );
                exprs.push((Expr::col_idx(i), c.clone()));
            }
            Ok(LogicalPlan::Project {
                input: Box::new(input),
                exprs,
                schema,
            })
        }

        Node::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let l = lower(left, catalog)?;
            let r = lower(right, catalog)?;
            let li = resolve(l.schema(), left_col)?;
            let ri = resolve(r.schema(), right_col)?;
            for (schema, idx, name) in [(l.schema(), li, left_col), (r.schema(), ri, right_col)] {
                if matches!(
                    schema.column(idx).data_type,
                    DataType::Set | DataType::Ratings
                ) {
                    return Err(RelError::Invalid(format!(
                        "join column {name} is not scalar"
                    )));
                }
            }
            let left_w = l.schema().len();
            let schema = l.schema().join(r.schema());
            Ok(LogicalPlan::Join {
                left: Box::new(l),
                right: Box::new(r),
                kind: JoinKind::Inner,
                on: Expr::col_idx(li).eq(Expr::col_idx(left_w + ri)),
                schema,
            })
        }

        Node::Extend {
            input,
            related_table,
            fk_column,
            local_key,
            key_column,
            rating_column,
            as_name,
        } => {
            let input = lower(input, catalog)?;
            let key_col = resolve(input.schema(), local_key)?;
            let rel_schema = catalog.table_schema(related_table)?;
            let mut proj = vec![
                rel_schema.index_of(fk_column)?,
                rel_schema.index_of(key_column)?,
            ];
            let rating = rating_column.is_some();
            if let Some(rc) = rating_column {
                proj.push(rel_schema.index_of(rc)?);
            }
            let related_out = LogicalPlan::scan_output_schema(&rel_schema, &Some(proj.clone()));
            let related = LogicalPlan::Scan {
                table: related_table.clone(),
                alias: None,
                projection: Some(proj),
                filter: None,
                schema: related_out,
            };
            let mut schema = input.schema().clone();
            schema.push(
                Column::new(
                    as_name,
                    if rating {
                        DataType::Ratings
                    } else {
                        DataType::Set
                    },
                ),
                None,
            );
            Ok(LogicalPlan::Extend {
                input: Box::new(input),
                related: Box::new(related),
                key_col,
                rating,
                as_name: as_name.clone(),
                schema,
            })
        }

        Node::Recommend {
            target,
            comparator,
            spec,
        } => {
            let t = lower(target, catalog)?;
            let c = lower(comparator, catalog)?;
            let target_col = resolve(t.schema(), &spec.target_attr)?;
            let comparator_col = resolve(c.schema(), &spec.comparator_attr)?;
            let agg = match &spec.agg {
                RecAgg::Avg => RecAggPlan::Avg,
                RecAgg::Sum => RecAggPlan::Sum,
                RecAgg::Max => RecAggPlan::Max,
                RecAgg::WeightedAvg { weight_attr } => RecAggPlan::WeightedAvg {
                    weight_col: resolve(c.schema(), weight_attr)?,
                },
            };
            let exclude_seen = match &spec.exclude_seen {
                Some((ta, ca)) => Some((resolve(t.schema(), ta)?, resolve(c.schema(), ca)?)),
                None => None,
            };
            let plan_spec = RecSpec {
                target_col,
                comparator_col,
                method: spec.method.clone(),
                agg,
                k: spec.k,
                unbounded_ok: spec.unbounded_ok,
                score_name: spec.score_name.clone(),
                exclude_seen,
            };
            let mut schema = t.schema().clone();
            schema.push(Column::new(&spec.score_name, DataType::Float), None);
            Ok(LogicalPlan::Recommend {
                target: Box::new(t),
                comparator: Box::new(c),
                spec: plan_spec,
                schema,
            })
        }

        Node::Limit { input, k } => Ok(LogicalPlan::Limit {
            input: Box::new(lower(input, catalog)?),
            limit: Some(*k),
            offset: 0,
        }),

        Node::Union { left, right } => Ok(LogicalPlan::Union {
            left: Box::new(lower(left, catalog)?),
            right: Box::new(lower(right, catalog)?),
        }),
    }
}

/// Lower a workflow predicate to a **two-valued** expression. The
/// interpreter treats a NULL comparison as plain `false` (so `NULL > 3 OR
/// x = 1` can still pass); SQL three-valued logic would yield NULL. Guard
/// every comparison with `IS NOT NULL` so both paths agree.
fn lower_predicate(p: &WfPredicate, schema: &Schema) -> RelResult<Expr> {
    Ok(match p {
        WfPredicate::Cmp { column, op, value } => {
            let i = resolve(schema, column)?;
            if value.is_null() {
                // The interpreter's NULL-literal comparison is always false.
                return Ok(Expr::lit(false));
            }
            let cmp = {
                let col = Expr::col_idx(i);
                let lit = Expr::lit(value.clone());
                match op {
                    CmpOp::Eq => col.eq(lit),
                    CmpOp::NotEq => col.not_eq(lit),
                    CmpOp::Lt => col.lt(lit),
                    CmpOp::LtEq => col.lt_eq(lit),
                    CmpOp::Gt => col.gt(lit),
                    CmpOp::GtEq => col.gt_eq(lit),
                }
            };
            Expr::IsNull {
                expr: Box::new(Expr::col_idx(i)),
                negated: true,
            }
            .and(cmp)
        }
        WfPredicate::And(ps) => {
            let parts = ps
                .iter()
                .map(|p| lower_predicate(p, schema))
                .collect::<RelResult<Vec<_>>>()?;
            Expr::conjoin(parts)
        }
        WfPredicate::Or(ps) => {
            let parts = ps
                .iter()
                .map(|p| lower_predicate(p, schema))
                .collect::<RelResult<Vec<_>>>()?;
            parts
                .into_iter()
                .reduce(|a, b| a.or(b))
                .unwrap_or_else(|| Expr::lit(false))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec;
    use crate::similarity::{RatingsSim, TextSim};
    use crate::workflow::{RecMethod, RecommendSpec};
    use cr_relation::Database;
    use std::collections::HashMap;

    fn db() -> Database {
        let db = Database::new();
        db.execute_sql("CREATE TABLE Courses (CourseID INT PRIMARY KEY, Title TEXT, Year INT)")
            .unwrap();
        db.execute_sql("CREATE TABLE Students (SuID INT PRIMARY KEY, Name TEXT)")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE Comments (SuID INT, CourseID INT, Rating FLOAT, PRIMARY KEY (SuID, CourseID))",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Courses VALUES \
             (1, 'Introduction to Programming', 2008), \
             (2, 'Programming Abstractions', 2008), \
             (3, 'Medieval History', 2008), \
             (5, 'Operating Systems', 2008)",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Students VALUES (444, 'Sally'), (2, 'Bob'), (3, 'Ann'), (4, 'Tim')",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Comments VALUES \
             (444, 1, 5.0), (444, 3, 2.0), \
             (2, 1, 5.0), (2, 3, 2.0), (2, 2, 4.5), \
             (3, 1, 1.0), (3, 3, 5.0), (3, 5, 1.5), \
             (4, 1, 4.5), (4, 3, 2.5), (4, 5, 5.0)",
        )
        .unwrap();
        db
    }

    fn extend_students() -> Node {
        Node::Extend {
            input: Box::new(Node::Source {
                table: "Students".into(),
            }),
            related_table: "Comments".into(),
            fk_column: "SuID".into(),
            local_key: "SuID".into(),
            key_column: "CourseID".into(),
            rating_column: Some("Rating".into()),
            as_name: "ratings".into(),
        }
    }

    fn cf_workflow() -> Workflow {
        let lower = Node::Recommend {
            target: Box::new(Node::Select {
                input: Box::new(extend_students()),
                predicate: WfPredicate::cmp("SuID", CmpOp::NotEq, 444i64),
            }),
            comparator: Box::new(Node::Select {
                input: Box::new(extend_students()),
                predicate: WfPredicate::eq("SuID", 444i64),
            }),
            spec: RecommendSpec::new(
                "ratings",
                "ratings",
                RecMethod::Ratings {
                    sim: RatingsSim::InverseEuclidean,
                    min_common: 2,
                },
            )
            .top_k(2)
            .score_as("sim"),
        };
        Workflow::new(
            "cf",
            Node::Recommend {
                target: Box::new(Node::Source {
                    table: "Courses".into(),
                }),
                comparator: Box::new(lower),
                spec: RecommendSpec::new("CourseID", "ratings", RecMethod::RatingLookup)
                    .with_agg(RecAgg::Avg),
            },
        )
    }

    #[test]
    fn cf_workflow_lowers_to_plan() {
        let db = db();
        let plan = compile(&cf_workflow(), &db.catalog()).unwrap();
        let text = plan.explain();
        // Two Recommend operators (Figure 5b) and two ratings extends.
        assert_eq!(text.matches("Recommend").count(), 2, "{text}");
        assert_eq!(text.matches("Extend ratings").count(), 2, "{text}");
        assert!(text.contains("rating_lookup"), "{text}");
        assert!(text.contains("inverse_euclidean"), "{text}");
    }

    #[test]
    fn compiled_matches_interpreter_for_cf() {
        let db = db();
        let wf = cf_workflow();
        let direct = exec::execute(&wf, &db.catalog()).unwrap();
        let compiled = compile_and_run(&wf, &db.catalog()).unwrap();
        assert_eq!(compiled.result, direct);
    }

    #[test]
    fn compiled_matches_interpreter_in_parallel() {
        let db = db();
        let wf = cf_workflow();
        let direct = exec::execute(&wf, &db.catalog()).unwrap();
        for n in [2, 4] {
            let opts = ExecOptions {
                parallelism: n,
                min_partition_rows: 1,
                adaptive: false,
                batch_size: 0,
            };
            let compiled = compile_and_run_with(&wf, &db.catalog(), &opts).unwrap();
            assert_eq!(compiled.result, direct, "parallelism={n}");
        }
    }

    #[test]
    fn cf_scores_are_correct() {
        let db = db();
        let run = compile_and_run(&cf_workflow(), &db.catalog()).unwrap();
        let m: HashMap<Value, f64> = run
            .result
            .ranking("CourseID", "score")
            .unwrap()
            .into_iter()
            .collect();
        // Similar students = Bob (identical on 1,3) and Tim.
        // Course 1: Bob 5.0, Tim 4.5 → 4.75.
        assert!((m[&Value::Int(1)] - 4.75).abs() < 1e-9, "{m:?}");
        assert!((m[&Value::Int(5)] - 5.0).abs() < 1e-9, "{m:?}");
    }

    #[test]
    fn step_timings_cover_all_phases() {
        let db = db();
        let run = compile_and_run(&cf_workflow(), &db.catalog()).unwrap();
        let labels: Vec<&str> = run.step_timings.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["Lower", "Optimize", "Execute"]);
        assert_eq!(run.step_timings[2].rows, run.result.tuples.len());
        let breakdown = run.timing_breakdown();
        assert!(breakdown.contains("Execute"));
        assert!(breakdown.contains("total"));
    }

    #[test]
    fn fingerprint_is_stable_and_structural() {
        let db = db();
        let a = compile_and_run(&cf_workflow(), &db.catalog()).unwrap();
        let b = compile_and_run(&cf_workflow(), &db.catalog()).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        // A different workflow fingerprints differently.
        let other = Workflow::new(
            "src",
            Node::Source {
                table: "Courses".into(),
            },
        );
        let c = compile_and_run(&other, &db.catalog()).unwrap();
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn explain_sql_renders_plan_lines() {
        let db = db();
        let lines = explain_sql(&cf_workflow(), &db.catalog()).unwrap();
        assert!(lines
            .iter()
            .any(|l| l.trim_start().starts_with("Recommend")));
        assert!(lines.iter().any(|l| l.trim_start().starts_with("Scan")));
        // Children are indented below their parents.
        assert!(lines[1].starts_with("  "), "{lines:?}");
    }

    #[test]
    fn exclude_seen_compiles_and_matches() {
        let db = db();
        let mut wf = cf_workflow();
        if let Node::Recommend { spec, .. } = &mut wf.root {
            spec.exclude_seen = Some(("CourseID".into(), "ratings".into()));
        }
        let direct = exec::execute(&wf, &db.catalog()).unwrap();
        let compiled = compile_and_run(&wf, &db.catalog()).unwrap();
        assert_eq!(compiled.result, direct);
    }

    #[test]
    fn null_comparison_in_or_matches_interpreter() {
        let db = db();
        db.execute_sql("CREATE TABLE n (id INT PRIMARY KEY, x INT)")
            .unwrap();
        db.execute_sql("INSERT INTO n VALUES (1, NULL), (2, 7), (3, 0)")
            .unwrap();
        // x > 5 is NULL-false for id=1, but id < 2 rescues it through OR.
        let wf = Workflow::new(
            "nulls",
            Node::Select {
                input: Box::new(Node::Source { table: "n".into() }),
                predicate: WfPredicate::Or(vec![
                    WfPredicate::cmp("x", CmpOp::Gt, 5i64),
                    WfPredicate::cmp("id", CmpOp::Lt, 2i64),
                ]),
            },
        );
        let direct = exec::execute(&wf, &db.catalog()).unwrap();
        let compiled = compile_and_run(&wf, &db.catalog()).unwrap();
        assert_eq!(compiled.result, direct);
        assert_eq!(compiled.result.tuples.len(), 2); // ids 1 and 2
    }

    #[test]
    fn join_on_nested_column_rejected() {
        let db = db();
        let wf = Workflow::new(
            "bad",
            Node::Join {
                left: Box::new(extend_students()),
                right: Box::new(extend_students()),
                left_col: "ratings".into(),
                right_col: "SuID".into(),
            },
        );
        let err = compile(&wf, &db.catalog()).unwrap_err();
        assert!(err.to_string().contains("not scalar"), "{err}");
    }

    #[test]
    fn relational_only_workflow_matches_interpreter() {
        let db = db();
        let wf = Workflow::new(
            "rel",
            Node::Limit {
                input: Box::new(Node::Join {
                    left: Box::new(Node::Source {
                        table: "Comments".into(),
                    }),
                    right: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                    left_col: "CourseID".into(),
                    right_col: "CourseID".into(),
                }),
                k: 5,
            },
        );
        let direct = exec::execute(&wf, &db.catalog()).unwrap();
        let compiled = compile_and_run(&wf, &db.catalog()).unwrap();
        assert_eq!(compiled.result, direct);
        assert_eq!(compiled.result.tuples.len(), 5);
    }

    #[test]
    fn union_and_projection_match_interpreter() {
        let db = db();
        let wf = Workflow::new(
            "u",
            Node::Project {
                input: Box::new(Node::Union {
                    left: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                    right: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                }),
                columns: vec!["Title".into()],
            },
        );
        let direct = exec::execute(&wf, &db.catalog()).unwrap();
        let compiled = compile_and_run(&wf, &db.catalog()).unwrap();
        assert_eq!(compiled.result, direct);
        assert_eq!(compiled.result.tuples.len(), 8);
    }

    #[test]
    fn text_similarity_matches_interpreter() {
        let db = db();
        let wf = Workflow::new(
            "related",
            Node::Recommend {
                target: Box::new(Node::Select {
                    input: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                    predicate: WfPredicate::cmp("CourseID", CmpOp::NotEq, 1i64),
                }),
                comparator: Box::new(Node::Select {
                    input: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                    predicate: WfPredicate::eq("CourseID", 1i64),
                }),
                spec: RecommendSpec::new("Title", "Title", RecMethod::Text(TextSim::WordJaccard))
                    .top_k(3),
            },
        );
        let direct = exec::execute(&wf, &db.catalog()).unwrap();
        let compiled = compile_and_run(&wf, &db.catalog()).unwrap();
        assert_eq!(compiled.result, direct);
        let ranking = compiled.result.ranking("CourseID", "score").unwrap();
        assert_eq!(ranking[0].0, Value::Int(2));
    }
}
