//! Workflow → SQL compilation.
//!
//! §3.2: "The engine executes a workflow by 'compiling' it into a sequence
//! of SQL calls, which are executed by a conventional DBMS. When possible,
//! library functions are compiled into the SQL statements themselves; in
//! other cases we can rely on external functions that are called by the
//! SQL statements."
//!
//! Concretely:
//!
//! * relational operators (source, select, project, join, limit, union)
//!   compile to `SELECT`s whose results materialize into temp tables —
//!   the "sequence of SQL calls";
//! * a recommend with [`RecMethod::RatingLookup`] compiles to a
//!   join + `GROUP BY` aggregation (`AVG`/`SUM`/`MAX`/weighted average);
//! * a recommend with inverse-Euclidean ratings similarity against a
//!   *single* comparator compiles to a self-join with
//!   `1/(1+SQRT(SUM((ra−rb)²)))` — the library function *in* the SQL;
//! * text-similarity recommends run as **external functions** over
//!   SQL-materialized inputs (the paper's fallback);
//! * anything else (multi-comparator similarity, `exclude_seen`, joins
//!   over set-valued inputs) falls back to the direct executor for the
//!   whole workflow — reported in [`CompiledRun::fallback_reason`].
//!
//! The A2 ablation benchmarks compiled vs. direct execution, and
//! `tests/flexrecs_equivalence.rs` checks they return the same rankings.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use cr_relation::{Catalog, RelError, RelResult, ResultSet, Value};

use crate::datum::{Datum, WfSchema, WfType};
use crate::exec::{self, RecResult};
use crate::workflow::{
    infer_schema, Node, RecAgg, RecMethod, RecommendSpec, WfPredicate, Workflow,
};

struct FrMetrics {
    compiled_runs: Arc<cr_obs::Counter>,
    fallbacks: Arc<cr_obs::Counter>,
    run_ns: Arc<cr_obs::Histogram>,
    step_ns: Arc<cr_obs::Histogram>,
}

fn metrics() -> &'static FrMetrics {
    static M: OnceLock<FrMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = cr_obs::Registry::global();
        FrMetrics {
            compiled_runs: r.counter("flexrecs.compiled_runs"),
            fallbacks: r.counter("flexrecs.fallbacks"),
            run_ns: r.histogram("flexrecs.run_ns"),
            step_ns: r.histogram("flexrecs.step_ns"),
        }
    })
}

/// One timed step of a compiled run: a SQL call or an external function,
/// in execution order. The per-step wall-clock times are what let a
/// recommendation's latency be broken down step by step.
#[derive(Debug, Clone)]
pub struct StepTiming {
    /// Which operator produced the step, e.g. `"Select"`, `"RatingLookup"`.
    pub label: String,
    /// Rows the step produced (0 for external steps with no row output).
    pub rows: usize,
    pub elapsed: Duration,
}

/// Result of a compiled run.
#[derive(Debug, Clone)]
pub struct CompiledRun {
    pub result: RecResult,
    /// Every SQL statement executed, in order.
    pub sql_log: Vec<String>,
    /// Human description of external (non-SQL) steps.
    pub external_steps: Vec<String>,
    /// Wall-clock timing per step (SQL calls and external functions).
    pub step_timings: Vec<StepTiming>,
    /// Set when the workflow could not be compiled at all and ran on the
    /// direct executor instead.
    pub fallback_reason: Option<String>,
}

impl CompiledRun {
    /// Render the step-by-step timing breakdown as an aligned table.
    pub fn timing_breakdown(&self) -> String {
        use cr_relation::profile::fmt_duration;
        use std::fmt::Write as _;
        let mut out = String::from("step               rows       time\n");
        let mut total = Duration::ZERO;
        for s in &self.step_timings {
            total += s.elapsed;
            let _ = writeln!(
                out,
                "{:<18} {:<10} {}",
                s.label,
                s.rows,
                fmt_duration(s.elapsed)
            );
        }
        let _ = writeln!(out, "{:<18} {:<10} {}", "total", "", fmt_duration(total));
        out
    }
}

/// A compiled relation: a (temp or base) table plus bookkeeping.
#[derive(Debug, Clone)]
struct Rel {
    table: String,
    /// Scalar column names, in order, as stored in `table`.
    columns: Vec<String>,
    /// Pending ε-extension (set-valued attribute not materialized in SQL).
    extend: Option<ExtendInfo>,
}

#[derive(Debug, Clone)]
struct ExtendInfo {
    related_table: String,
    fk_column: String,
    /// Column *in the compiled relation* holding the join key.
    local_key: String,
    key_column: String,
    rating_column: Option<String>,
    as_name: String,
}

/// Process-wide temp-table counter: concurrent compiled runs over the
/// same catalog must not collide on temp names.
static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

struct Ctx<'a> {
    catalog: &'a Catalog,
    sql_log: Vec<String>,
    external: Vec<String>,
    steps: Vec<StepTiming>,
    temps: Vec<String>,
}

/// Raised internally to trigger whole-workflow fallback.
struct Unsupported(String);

impl<'a> Ctx<'a> {
    /// Run one compiled SQL step, recording it in the log and its timing
    /// (and the `flexrecs.step_ns` histogram when metrics are enabled)
    /// under `label`.
    fn run_sql(&mut self, label: &str, sql: &str) -> RelResult<ResultSet> {
        self.sql_log.push(sql.to_owned());
        let t0 = Instant::now();
        let result = cr_relation::sql::query(sql, self.catalog);
        let elapsed = t0.elapsed();
        if cr_obs::enabled() {
            metrics().step_ns.record_duration(elapsed);
        }
        self.steps.push(StepTiming {
            label: label.to_owned(),
            rows: result.as_ref().map(|rs| rs.rows.len()).unwrap_or(0),
            elapsed,
        });
        result
    }

    /// Materialize a result set into a fresh temp table; returns its name.
    fn materialize(&mut self, rs: &ResultSet, columns: &[String]) -> RelResult<String> {
        let id = TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let name = format!("flexrecs_tmp_{id}");
        let mut cols = Vec::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            cols.push(cr_relation::Column::new(
                c.clone(),
                rs.schema.column(i).data_type,
            ));
        }
        self.catalog
            .create_table(&name, cr_relation::Schema::qualified(&name, cols), vec![])?;
        self.catalog.with_table_mut(&name, |t| -> RelResult<()> {
            for row in &rs.rows {
                t.insert(row.clone())?;
            }
            Ok(())
        })??;
        self.temps.push(name.clone());
        Ok(name)
    }

    fn cleanup(&mut self) {
        for t in self.temps.drain(..) {
            let _ = self.catalog.drop_table(&t);
        }
    }
}

/// Compile and run a workflow; falls back to direct execution when the
/// workflow uses constructs outside the compilable subset.
pub fn compile_and_run(workflow: &Workflow, catalog: &Catalog) -> RelResult<CompiledRun> {
    let started = Instant::now();
    let run = compile_and_run_inner(workflow, catalog);
    if cr_obs::enabled() {
        let m = metrics();
        m.compiled_runs.inc();
        if let Ok(r) = &run {
            if r.fallback_reason.is_some() {
                m.fallbacks.inc();
            }
        }
        m.run_ns.record_duration(started.elapsed());
    }
    run
}

fn compile_and_run_inner(workflow: &Workflow, catalog: &Catalog) -> RelResult<CompiledRun> {
    let mut ctx = Ctx {
        catalog,
        sql_log: Vec::new(),
        external: Vec::new(),
        steps: Vec::new(),
        temps: Vec::new(),
    };
    let schema = infer_schema(&workflow.root, catalog)?;
    let outcome = compile_node(&workflow.root, &mut ctx);
    match outcome {
        Ok(rel) => {
            // Read the final relation back out as workflow tuples. Only
            // scalar columns are materialized; a pending extend at the
            // root would mean the schema has a set attribute we cannot
            // reproduce — fall back in that case.
            if schema.columns.iter().any(|(_, t)| *t != WfType::Scalar) {
                ctx.cleanup();
                return fallback(
                    workflow,
                    catalog,
                    ctx,
                    "root schema has set-valued attributes",
                );
            }
            let sql = format!("SELECT * FROM {}", rel.table);
            let rs = ctx.run_sql("ReadBack", &sql)?;
            let tuples = rs
                .rows
                .into_iter()
                .map(|r| r.into_iter().map(Datum::Scalar).collect())
                .collect();
            let out_schema = WfSchema {
                columns: rel
                    .columns
                    .iter()
                    .map(|c| (c.clone(), WfType::Scalar))
                    .collect(),
            };
            let (sql_log, external_steps, step_timings) =
                (ctx.sql_log.clone(), ctx.external.clone(), ctx.steps.clone());
            ctx.cleanup();
            Ok(CompiledRun {
                result: RecResult {
                    schema: out_schema,
                    tuples,
                },
                sql_log,
                external_steps,
                step_timings,
                fallback_reason: None,
            })
        }
        Err(CompileError::Rel(e)) => {
            ctx.cleanup();
            Err(e)
        }
        Err(CompileError::Unsupported(Unsupported(reason))) => {
            ctx.cleanup();
            fallback(workflow, catalog, ctx, &reason)
        }
    }
}

fn fallback(
    workflow: &Workflow,
    catalog: &Catalog,
    mut ctx: Ctx<'_>,
    reason: &str,
) -> RelResult<CompiledRun> {
    let t0 = Instant::now();
    let result = exec::execute(workflow, catalog)?;
    ctx.steps.push(StepTiming {
        label: "DirectFallback".to_owned(),
        rows: result.tuples.len(),
        elapsed: t0.elapsed(),
    });
    Ok(CompiledRun {
        result,
        sql_log: ctx.sql_log,
        external_steps: ctx.external,
        step_timings: ctx.steps,
        fallback_reason: Some(reason.to_owned()),
    })
}

enum CompileError {
    Rel(RelError),
    Unsupported(Unsupported),
}

impl From<RelError> for CompileError {
    fn from(e: RelError) -> Self {
        CompileError::Rel(e)
    }
}

impl From<Unsupported> for CompileError {
    fn from(u: Unsupported) -> Self {
        CompileError::Unsupported(u)
    }
}

type CResult<T> = Result<T, CompileError>;

fn unsupported<T>(msg: impl Into<String>) -> CResult<T> {
    Err(CompileError::Unsupported(Unsupported(msg.into())))
}

fn quote_value(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.to_string(),
    }
}

fn predicate_sql(p: &WfPredicate) -> String {
    match p {
        WfPredicate::Cmp { column, op, value } => {
            format!("{column} {} {}", op.sql(), quote_value(value))
        }
        WfPredicate::And(ps) => {
            let parts: Vec<String> = ps.iter().map(predicate_sql).collect();
            format!("({})", parts.join(" AND "))
        }
        WfPredicate::Or(ps) => {
            let parts: Vec<String> = ps.iter().map(predicate_sql).collect();
            format!("({})", parts.join(" OR "))
        }
    }
}

fn compile_node(node: &Node, ctx: &mut Ctx<'_>) -> CResult<Rel> {
    match node {
        Node::Source { table } => {
            let schema = ctx.catalog.table_schema(table)?;
            Ok(Rel {
                table: table.clone(),
                columns: schema.columns().iter().map(|c| c.name.clone()).collect(),
                extend: None,
            })
        }

        Node::Select { input, predicate } => {
            let rel = compile_node(input, ctx)?;
            let sql = format!(
                "SELECT * FROM {} WHERE {}",
                rel.table,
                predicate_sql(predicate)
            );
            let rs = ctx.run_sql("Select", &sql)?;
            let table = ctx.materialize(&rs, &rel.columns)?;
            Ok(Rel {
                table,
                columns: rel.columns,
                extend: rel.extend,
            })
        }

        Node::Project { input, columns } => {
            let rel = compile_node(input, ctx)?;
            // Virtual (extended) attributes survive only if both the key
            // and the attribute name are kept.
            let scalar_cols: Vec<String> = columns
                .iter()
                .filter(|c| rel.columns.iter().any(|rc| rc.eq_ignore_ascii_case(c)))
                .cloned()
                .collect();
            let keep_extend = match &rel.extend {
                Some(e) => {
                    columns.iter().any(|c| c.eq_ignore_ascii_case(&e.as_name))
                        && scalar_cols
                            .iter()
                            .any(|c| c.eq_ignore_ascii_case(&e.local_key))
                }
                None => false,
            };
            let sql = format!("SELECT {} FROM {}", scalar_cols.join(", "), rel.table);
            let rs = ctx.run_sql("Project", &sql)?;
            let table = ctx.materialize(&rs, &scalar_cols)?;
            Ok(Rel {
                table,
                columns: scalar_cols,
                extend: if keep_extend { rel.extend } else { None },
            })
        }

        Node::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let l = compile_node(left, ctx)?;
            let r = compile_node(right, ctx)?;
            if l.extend.is_some() || r.extend.is_some() {
                return unsupported("join over set-valued inputs");
            }
            // Dedup output column names.
            let mut out_cols: Vec<String> = Vec::with_capacity(l.columns.len() + r.columns.len());
            let mut select_items: Vec<String> = Vec::new();
            for c in &l.columns {
                out_cols.push(c.clone());
                select_items.push(format!("a.{c} AS {c}"));
            }
            for c in &r.columns {
                let mut name = c.clone();
                let mut suffix = 2;
                while out_cols.iter().any(|o| o.eq_ignore_ascii_case(&name)) {
                    name = format!("{c}_{suffix}");
                    suffix += 1;
                }
                select_items.push(format!("b.{c} AS {name}"));
                out_cols.push(name);
            }
            let sql = format!(
                "SELECT {} FROM {} a JOIN {} b ON a.{} = b.{}",
                select_items.join(", "),
                l.table,
                r.table,
                left_col,
                right_col
            );
            let rs = ctx.run_sql("Join", &sql)?;
            let table = ctx.materialize(&rs, &out_cols)?;
            Ok(Rel {
                table,
                columns: out_cols,
                extend: None,
            })
        }

        Node::Extend {
            input,
            related_table,
            fk_column,
            local_key,
            key_column,
            rating_column,
            as_name,
        } => {
            let rel = compile_node(input, ctx)?;
            if rel.extend.is_some() {
                return unsupported("multiple pending extends");
            }
            // Pre-aggregate the related table to one (mean) rating per
            // (fk, key) — the extend operator's set semantics — so the
            // downstream similarity/lookup SQL matches the direct
            // executor exactly.
            let related = match rating_column {
                Some(rc) => {
                    let sql = format!(
                        "SELECT {fk} AS {fk}, {key} AS {key}, AVG({rc}) AS {rc} \
                         FROM {tbl} WHERE {rc} IS NOT NULL GROUP BY {fk}, {key}",
                        fk = fk_column,
                        key = key_column,
                        rc = rc,
                        tbl = related_table,
                    );
                    let rs = ctx.run_sql("Extend", &sql)?;
                    ctx.materialize(&rs, &[fk_column.clone(), key_column.clone(), rc.clone()])?
                }
                None => related_table.clone(),
            };
            Ok(Rel {
                extend: Some(ExtendInfo {
                    related_table: related,
                    fk_column: fk_column.clone(),
                    local_key: local_key.clone(),
                    key_column: key_column.clone(),
                    rating_column: rating_column.clone(),
                    as_name: as_name.clone(),
                }),
                ..rel
            })
        }

        Node::Limit { input, k } => {
            let rel = compile_node(input, ctx)?;
            let sql = format!("SELECT * FROM {} LIMIT {k}", rel.table);
            let rs = ctx.run_sql("Limit", &sql)?;
            let table = ctx.materialize(&rs, &rel.columns)?;
            Ok(Rel {
                table,
                columns: rel.columns,
                extend: rel.extend,
            })
        }

        Node::Union { left, right } => {
            let l = compile_node(left, ctx)?;
            let r = compile_node(right, ctx)?;
            if l.extend.is_some() || r.extend.is_some() {
                return unsupported("union over set-valued inputs");
            }
            let sql = format!(
                "SELECT * FROM {} UNION ALL SELECT * FROM {}",
                l.table, r.table
            );
            let rs = ctx.run_sql("Union", &sql)?;
            let table = ctx.materialize(&rs, &l.columns)?;
            Ok(Rel {
                table,
                columns: l.columns,
                extend: None,
            })
        }

        Node::Recommend {
            target,
            comparator,
            spec,
        } => compile_recommend(target, comparator, spec, ctx),
    }
}

fn compile_recommend(
    target: &Node,
    comparator: &Node,
    spec: &RecommendSpec,
    ctx: &mut Ctx<'_>,
) -> CResult<Rel> {
    if spec.exclude_seen.is_some() {
        return unsupported("exclude_seen requires anti-join support");
    }
    let t = compile_node(target, ctx)?;
    let c = compile_node(comparator, ctx)?;

    match &spec.method {
        RecMethod::RatingLookup => {
            let Some(ce) = &c.extend else {
                return unsupported("rating lookup needs a ratings-extended comparator");
            };
            let Some(rating_col) = &ce.rating_column else {
                return unsupported("rating lookup needs a ratings (not set) extension");
            };
            if t.extend.is_some() {
                return unsupported("rating-lookup target with pending extend");
            }
            let group_cols: Vec<String> = t.columns.iter().map(|col| format!("t.{col}")).collect();
            let select_cols: Vec<String> = t
                .columns
                .iter()
                .map(|col| format!("t.{col} AS {col}"))
                .collect();
            let score_expr = match &spec.agg {
                RecAgg::Avg => format!("AVG(r.{rating_col})"),
                RecAgg::Sum => format!("SUM(r.{rating_col})"),
                RecAgg::Max => format!("MAX(r.{rating_col})"),
                RecAgg::WeightedAvg { weight_attr } => {
                    format!("SUM(r.{rating_col} * c.{weight_attr}) / SUM(c.{weight_attr})")
                }
            };
            let limit = spec.k.map(|k| format!(" LIMIT {k}")).unwrap_or_default();
            let sql = format!(
                "SELECT {}, {} AS {} FROM {} t \
                 JOIN {} r ON r.{} = t.{} \
                 JOIN {} c ON r.{} = c.{} \
                 GROUP BY {} HAVING {} > 0 ORDER BY {} DESC, {}{}",
                select_cols.join(", "),
                score_expr,
                spec.score_name,
                t.table,
                ce.related_table,
                ce.key_column,
                spec.target_attr,
                c.table,
                ce.fk_column,
                ce.local_key,
                group_cols.join(", "),
                score_expr,
                spec.score_name,
                t.columns[0],
                limit,
            );
            let rs = ctx.run_sql("RatingLookup", &sql)?;
            let mut out_cols = t.columns.clone();
            out_cols.push(spec.score_name.clone());
            let table = ctx.materialize(&rs, &out_cols)?;
            Ok(Rel {
                table,
                columns: out_cols,
                extend: None, // lookup targets are plain relations
            })
        }

        RecMethod::Ratings { sim, min_common } => {
            use crate::similarity::RatingsSim;
            if !matches!(sim, RatingsSim::InverseEuclidean) {
                // Pearson in pure SQL needs correlated means — external.
                return unsupported(format!("{} not compiled to SQL", sim.name()));
            }
            let (Some(te), Some(ce)) = (&t.extend, &c.extend) else {
                return unsupported("ratings similarity needs extended inputs");
            };
            let (Some(t_rating), Some(c_rating)) = (&te.rating_column, &ce.rating_column) else {
                return unsupported("ratings similarity over set extensions");
            };
            // Single-comparator restriction (the personalization case).
            let c_count = ctx.catalog.table_len(&c.table)?;
            if c_count != 1 {
                return unsupported(format!(
                    "SQL ratings similarity supports exactly one comparator tuple, got {c_count}"
                ));
            }
            let select_cols: Vec<String> = t
                .columns
                .iter()
                .map(|col| format!("t.{col} AS {col}"))
                .collect();
            let group_cols: Vec<String> = t.columns.iter().map(|col| format!("t.{col}")).collect();
            let dist = format!(
                "SQRT(SUM((rt.{t_rating} - rc.{c_rating}) * (rt.{t_rating} - rc.{c_rating})))"
            );
            let score_expr = format!("1.0 / (1.0 + {dist})");
            let limit = spec.k.map(|k| format!(" LIMIT {k}")).unwrap_or_default();
            let sql = format!(
                "SELECT {}, {} AS {} FROM {} t \
                 JOIN {} rt ON rt.{} = t.{} \
                 JOIN {} c ON 1 = 1 \
                 JOIN {} rc ON rc.{} = c.{} AND rc.{} = rt.{} \
                 GROUP BY {} HAVING COUNT(*) >= {} ORDER BY {} DESC, {}{}",
                select_cols.join(", "),
                score_expr,
                spec.score_name,
                t.table,
                te.related_table,
                te.fk_column,
                te.local_key,
                c.table,
                ce.related_table,
                ce.fk_column,
                ce.local_key,
                ce.key_column,
                te.key_column,
                group_cols.join(", "),
                min_common.max(&1),
                spec.score_name,
                t.columns[0],
                limit,
            );
            let rs = ctx.run_sql("RatingsSim", &sql)?;
            let mut out_cols = t.columns.clone();
            out_cols.push(spec.score_name.clone());
            let table = ctx.materialize(&rs, &out_cols)?;
            // The target's ratings extension survives (re-keyed onto the
            // materialized output) so an upper rating-lookup can use it.
            Ok(Rel {
                table,
                columns: out_cols,
                extend: Some(te.clone()),
            })
        }

        RecMethod::Text(text_sim) => {
            // External function over SQL-materialized inputs.
            if t.extend.is_some() || c.extend.is_some() {
                return unsupported("text similarity over extended inputs");
            }
            ctx.external.push(format!(
                "text similarity {} between {}.{} and {}.{}",
                text_sim.name(),
                t.table,
                spec.target_attr,
                c.table,
                spec.comparator_attr
            ));
            let t_tuples = load_tuples(ctx, &t)?;
            let c_tuples = load_tuples(ctx, &c)?;
            let t_schema = WfSchema {
                columns: t
                    .columns
                    .iter()
                    .map(|n| (n.clone(), WfType::Scalar))
                    .collect(),
            };
            let c_schema = WfSchema {
                columns: c
                    .columns
                    .iter()
                    .map(|n| (n.clone(), WfType::Scalar))
                    .collect(),
            };
            let t0 = Instant::now();
            let scored = exec::recommend(&t_schema, t_tuples, &c_schema, &c_tuples, spec)
                .map_err(CompileError::Rel)?;
            let elapsed = t0.elapsed();
            if cr_obs::enabled() {
                metrics().step_ns.record_duration(elapsed);
            }
            ctx.steps.push(StepTiming {
                label: "TextSim(ext)".to_owned(),
                rows: scored.len(),
                elapsed,
            });
            // Materialize the external result so parents keep composing.
            let mut out_cols = t.columns.clone();
            out_cols.push(spec.score_name.clone());
            let rows: Vec<Vec<Value>> = scored
                .iter()
                .map(|tu| {
                    tu.iter()
                        .map(|d| d.as_scalar().cloned().unwrap_or(Value::Null))
                        .collect()
                })
                .collect();
            let rs = synthetic_result(&out_cols, rows);
            let table = ctx.materialize(&rs, &out_cols)?;
            Ok(Rel {
                table,
                columns: out_cols,
                extend: None,
            })
        }

        RecMethod::Set(_) => unsupported("set similarity runs on the direct executor"),
    }
}

fn load_tuples(ctx: &mut Ctx<'_>, rel: &Rel) -> CResult<Vec<crate::datum::Tuple>> {
    let sql = format!("SELECT * FROM {}", rel.table);
    let rs = ctx.run_sql("LoadInput", &sql)?;
    Ok(rs
        .rows
        .into_iter()
        .map(|r| r.into_iter().map(Datum::Scalar).collect())
        .collect())
}

fn synthetic_result(columns: &[String], rows: Vec<Vec<Value>>) -> ResultSet {
    let cols: Vec<cr_relation::Column> = columns
        .iter()
        .enumerate()
        .map(|(i, name)| {
            // Infer column type from the first non-null value.
            let dt = rows
                .iter()
                .filter_map(|r| r[i].data_type())
                .next()
                .unwrap_or(cr_relation::DataType::Text);
            cr_relation::Column::new(name.clone(), dt)
        })
        .collect();
    ResultSet {
        schema: cr_relation::Schema::new(cols),
        rows,
    }
}

/// Compile a workflow to its SQL step list without executing the final
/// read-back (dry run): useful for EXPLAIN-style tooling and tests.
pub fn explain_sql(workflow: &Workflow, catalog: &Catalog) -> RelResult<Vec<String>> {
    let run = compile_and_run(workflow, catalog)?;
    Ok(run.sql_log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{RatingsSim, TextSim};
    use crate::workflow::CmpOp;
    use cr_relation::Database;
    use std::collections::HashMap;

    fn db() -> Database {
        let db = Database::new();
        db.execute_sql("CREATE TABLE Courses (CourseID INT PRIMARY KEY, Title TEXT, Year INT)")
            .unwrap();
        db.execute_sql("CREATE TABLE Students (SuID INT PRIMARY KEY, Name TEXT)")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE Comments (SuID INT, CourseID INT, Rating FLOAT, PRIMARY KEY (SuID, CourseID))",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Courses VALUES \
             (1, 'Introduction to Programming', 2008), \
             (2, 'Programming Abstractions', 2008), \
             (3, 'Medieval History', 2008), \
             (5, 'Operating Systems', 2008)",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Students VALUES (444, 'Sally'), (2, 'Bob'), (3, 'Ann'), (4, 'Tim')",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Comments VALUES \
             (444, 1, 5.0), (444, 3, 2.0), \
             (2, 1, 5.0), (2, 3, 2.0), (2, 2, 4.5), \
             (3, 1, 1.0), (3, 3, 5.0), (3, 5, 1.5), \
             (4, 1, 4.5), (4, 3, 2.5), (4, 5, 5.0)",
        )
        .unwrap();
        db
    }

    fn extend_students() -> Node {
        Node::Extend {
            input: Box::new(Node::Source {
                table: "Students".into(),
            }),
            related_table: "Comments".into(),
            fk_column: "SuID".into(),
            local_key: "SuID".into(),
            key_column: "CourseID".into(),
            rating_column: Some("Rating".into()),
            as_name: "ratings".into(),
        }
    }

    fn cf_workflow() -> Workflow {
        let lower = Node::Recommend {
            target: Box::new(Node::Select {
                input: Box::new(extend_students()),
                predicate: WfPredicate::cmp("SuID", CmpOp::NotEq, 444i64),
            }),
            comparator: Box::new(Node::Select {
                input: Box::new(extend_students()),
                predicate: WfPredicate::eq("SuID", 444i64),
            }),
            spec: RecommendSpec::new(
                "ratings",
                "ratings",
                RecMethod::Ratings {
                    sim: RatingsSim::InverseEuclidean,
                    min_common: 2,
                },
            )
            .top_k(2)
            .score_as("sim"),
        };
        Workflow::new(
            "cf",
            Node::Recommend {
                target: Box::new(Node::Source {
                    table: "Courses".into(),
                }),
                comparator: Box::new(lower),
                spec: RecommendSpec::new("CourseID", "ratings", RecMethod::RatingLookup)
                    .with_agg(RecAgg::Avg),
            },
        )
    }

    #[test]
    fn cf_workflow_compiles_fully_to_sql() {
        let db = db();
        let wf = cf_workflow();
        let run = compile_and_run(&wf, &db.catalog()).unwrap();
        assert!(run.fallback_reason.is_none(), "{:?}", run.fallback_reason);
        assert!(run.external_steps.is_empty());
        // Both the similarity self-join and the lookup aggregation are in
        // the log.
        let joined = run.sql_log.join("\n");
        assert!(joined.contains("SQRT(SUM("), "{joined}");
        assert!(joined.contains("AVG(r.Rating)"), "{joined}");
        assert!(joined.contains("HAVING COUNT(*) >= 2"), "{joined}");
    }

    #[test]
    fn compiled_equals_direct_for_cf() {
        let db = db();
        let wf = cf_workflow();
        let direct = exec::execute(&wf, &db.catalog()).unwrap();
        let compiled = compile_and_run(&wf, &db.catalog()).unwrap();
        let d: HashMap<Value, f64> = direct
            .ranking("CourseID", "score")
            .unwrap()
            .into_iter()
            .collect();
        let c: HashMap<Value, f64> = compiled
            .result
            .ranking("CourseID", "score")
            .unwrap()
            .into_iter()
            .collect();
        assert_eq!(d.len(), c.len(), "direct {d:?} vs compiled {c:?}");
        for (k, v) in &d {
            assert!((c[k] - v).abs() < 1e-9, "score mismatch for {k}");
        }
    }

    #[test]
    fn step_timings_cover_every_sql_call() {
        let db = db();
        let wf = cf_workflow();
        let run = compile_and_run(&wf, &db.catalog()).unwrap();
        // One timed step per SQL call (no external steps in pure CF).
        assert_eq!(run.step_timings.len(), run.sql_log.len());
        let labels: Vec<&str> = run.step_timings.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"RatingsSim"), "{labels:?}");
        assert!(labels.contains(&"RatingLookup"), "{labels:?}");
        assert!(labels.contains(&"ReadBack"), "{labels:?}");
        // Read-back rows equal the result tuple count.
        let readback = run
            .step_timings
            .iter()
            .find(|s| s.label == "ReadBack")
            .unwrap();
        assert_eq!(readback.rows, run.result.tuples.len());
        let breakdown = run.timing_breakdown();
        assert!(breakdown.contains("RatingLookup"));
        assert!(breakdown.contains("total"));
    }

    #[test]
    fn external_text_step_is_timed() {
        let db = db();
        let wf = Workflow::new(
            "related",
            Node::Recommend {
                target: Box::new(Node::Source {
                    table: "Courses".into(),
                }),
                comparator: Box::new(Node::Select {
                    input: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                    predicate: WfPredicate::eq("CourseID", 1i64),
                }),
                spec: RecommendSpec::new("Title", "Title", RecMethod::Text(TextSim::WordJaccard)),
            },
        );
        let run = compile_and_run(&wf, &db.catalog()).unwrap();
        assert!(run.step_timings.iter().any(|s| s.label == "TextSim(ext)"));
    }

    #[test]
    fn temp_tables_are_dropped() {
        let db = db();
        let wf = cf_workflow();
        compile_and_run(&wf, &db.catalog()).unwrap();
        assert!(
            !db.catalog()
                .table_names()
                .iter()
                .any(|t| t.starts_with("flexrecs_tmp")),
            "{:?}",
            db.catalog().table_names()
        );
    }

    #[test]
    fn text_recommend_is_hybrid() {
        let db = db();
        let wf = Workflow::new(
            "related",
            Node::Recommend {
                target: Box::new(Node::Select {
                    input: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                    predicate: WfPredicate::cmp("CourseID", CmpOp::NotEq, 1i64),
                }),
                comparator: Box::new(Node::Select {
                    input: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                    predicate: WfPredicate::eq("CourseID", 1i64),
                }),
                spec: RecommendSpec::new("Title", "Title", RecMethod::Text(TextSim::WordJaccard))
                    .top_k(3),
            },
        );
        let run = compile_and_run(&wf, &db.catalog()).unwrap();
        assert!(run.fallback_reason.is_none());
        assert_eq!(run.external_steps.len(), 1);
        assert!(!run.sql_log.is_empty());
        let ranking = run.result.ranking("CourseID", "score").unwrap();
        assert_eq!(ranking[0].0, Value::Int(2));
    }

    #[test]
    fn multi_comparator_similarity_falls_back() {
        let db = db();
        let wf = Workflow::new(
            "multi",
            Node::Recommend {
                target: Box::new(extend_students()),
                comparator: Box::new(extend_students()), // 4 comparators
                spec: RecommendSpec::new(
                    "ratings",
                    "ratings",
                    RecMethod::Ratings {
                        sim: RatingsSim::InverseEuclidean,
                        min_common: 1,
                    },
                ),
            },
        );
        let run = compile_and_run(&wf, &db.catalog()).unwrap();
        assert!(run.fallback_reason.is_some());
        // Fallback still returns correct results.
        let direct = exec::execute(&wf, &db.catalog()).unwrap();
        assert_eq!(run.result.tuples.len(), direct.tuples.len());
    }

    #[test]
    fn exclude_seen_falls_back() {
        let db = db();
        let mut wf = cf_workflow();
        if let Node::Recommend { spec, .. } = &mut wf.root {
            spec.exclude_seen = Some(("CourseID".into(), "ratings".into()));
        }
        let run = compile_and_run(&wf, &db.catalog()).unwrap();
        assert!(run.fallback_reason.is_some());
    }

    #[test]
    fn relational_only_workflow_compiles() {
        let db = db();
        let wf = Workflow::new(
            "rel",
            Node::Limit {
                input: Box::new(Node::Join {
                    left: Box::new(Node::Source {
                        table: "Comments".into(),
                    }),
                    right: Box::new(Node::Source {
                        table: "Courses".into(),
                    }),
                    left_col: "CourseID".into(),
                    right_col: "CourseID".into(),
                }),
                k: 5,
            },
        );
        let run = compile_and_run(&wf, &db.catalog()).unwrap();
        assert!(run.fallback_reason.is_none());
        assert_eq!(run.result.tuples.len(), 5);
        // Joined duplicate column got a suffix.
        assert!(run
            .result
            .schema
            .columns
            .iter()
            .any(|(n, _)| n == "CourseID_2"));
    }
}
