//! Data clouds (§3.1).
//!
//! "The data cloud contains the most significant or representative terms
//! within the currently found set of entities. The terms are aggregated
//! over all parts that make a course entity […] How do we find and rank
//! terms in the results of a search and how can we dynamically and
//! efficiently compute their data cloud?"
//!
//! This module answers with two scorers and two aggregation strategies:
//!
//! * [`TermScorer::LogLikelihood`] (default) — Dunning's log-likelihood
//!   ratio comparing each term's frequency inside the result set against
//!   the rest of the corpus; surfaces terms *characteristic of the result
//!   set*, not merely frequent ones.
//! * [`TermScorer::TfIdf`] — aggregate tf × idf; cheaper, more
//!   frequency-driven.
//! * Exact aggregation over the full result set, or a sampled
//!   approximation over the top-K scored documents (the "efficiently"
//!   half of the question; ablation A1 in DESIGN.md benchmarks the
//!   trade-off).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::index::{DocId, InvertedIndex};
use crate::score::idf;

/// Below this many result docs, sharded aggregation is pure overhead.
const PARALLEL_CLOUD_MIN_DOCS: usize = 256;

/// One aggregation shard's output: term → (tf, df), plus the shard's
/// total token count.
type TermAgg<'a> = (HashMap<&'a str, (u64, usize)>, u64);

fn cloud_shard_counter() -> &'static Arc<cr_obs::Counter> {
    static C: OnceLock<Arc<cr_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| cr_obs::Registry::global().counter("textsearch.shards_spawned"))
}

/// Which statistic ranks cloud terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TermScorer {
    /// Dunning log-likelihood ratio vs. the background corpus.
    #[default]
    LogLikelihood,
    /// Σ tf in results × idf in corpus.
    TfIdf,
}

/// Cloud computation settings.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// How many terms the cloud shows. CourseRank's UI shows a few dozen.
    pub max_terms: usize,
    /// Rank terms with this scorer.
    pub scorer: TermScorer,
    /// If set, aggregate only over the top-K documents of the result list
    /// (the sampled approximation) instead of the whole result set.
    pub sample_top_k: Option<usize>,
    /// Minimum number of result documents a term must appear in.
    pub min_doc_freq: usize,
    /// Prefer bigrams when a bigram subsumes its parts (e.g. show
    /// "latin american" and suppress a bare "latin" that only ever occurs
    /// inside it).
    pub collapse_subterms: bool,
    /// Minimum cohesion for a bigram to enter the cloud:
    /// corpus_tf(bigram) / min(corpus_tf(w1), corpus_tf(w2)). Random
    /// adjacencies ("hour american") score near zero; real phrases
    /// ("latin american") score high.
    pub bigram_cohesion: f64,
    /// Score multiplier for (cohesive) bigrams — multi-word cloud terms
    /// are the paper's best refinements ("African American") and deserve
    /// prominence over their constituent unigrams.
    pub bigram_boost: f64,
    /// Guarantee this many bigram slots in the cloud (when cohesive
    /// bigrams exist), displacing the lowest-scored unigrams — Figure 3's
    /// cloud always shows phrases ("Latin American", "African American").
    pub min_bigrams: usize,
    /// Worker threads for sharding term aggregation over large result
    /// sets (1 = serial). Per-shard tallies merge with integer adds, so
    /// the cloud is identical either way.
    pub parallelism: usize,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            max_terms: 30,
            scorer: TermScorer::default(),
            sample_top_k: None,
            min_doc_freq: 2,
            collapse_subterms: true,
            bigram_cohesion: 0.03,
            bigram_boost: 2.0,
            min_bigrams: 4,
            parallelism: 1,
        }
    }
}

/// One term in the cloud.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudTerm {
    /// The index term (stemmed) — what refinement queries use.
    pub term: String,
    /// The display form ("politics" for the stem "politic").
    pub display: String,
    pub score: f64,
    /// In how many result documents the term occurs.
    pub result_doc_freq: usize,
    /// Total occurrences within the result set.
    pub result_tf: u64,
    /// Display size bucket 1..=5 (tag-cloud font size).
    pub bucket: u8,
}

/// A computed data cloud.
#[derive(Debug, Clone, Default)]
pub struct DataCloud {
    pub terms: Vec<CloudTerm>,
    /// How many documents were aggregated (≤ result size when sampling).
    pub docs_aggregated: usize,
}

impl DataCloud {
    /// Render the cloud as text, size indicated by repetition of `*`
    /// markers — the terminal stand-in for font size in Figure 3.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in &self.terms {
            out.push_str(&format!(
                "{:<28} {}\n",
                t.display,
                "█".repeat(t.bucket as usize)
            ));
        }
        out
    }

    /// Term list (for refinement pickers).
    pub fn term_strings(&self) -> Vec<&str> {
        self.terms.iter().map(|t| t.term.as_str()).collect()
    }
}

/// Owned term aggregates over a (sampled) result set: everything cloud
/// scoring needs besides the corpus statistics. The counts are plain
/// integers, so they can be maintained incrementally when one document is
/// reindexed — [`CloudAgg::apply_reindex_delta`] — and the maintained
/// aggregates are exactly equal to a recomputation (integer adds are
/// order-independent); re-scoring from them via [`cloud_from_agg`]
/// reproduces [`compute_cloud`] bit for bit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CloudAgg {
    /// term → (tf across result docs, number of result docs containing it).
    pub terms: HashMap<String, (u64, usize)>,
    /// Σ tf — total tokens (incl. bigrams) across the aggregated docs.
    pub token_total: u64,
    /// How many documents were aggregated (≤ result size when sampling).
    pub docs_aggregated: usize,
}

impl CloudAgg {
    /// Fold one document's reindex into the aggregates: `old`/`new` are
    /// the doc's term-frequency maps before and after. Returns `false`
    /// when the shift is inconsistent with the stored counts (underflow)
    /// — the caller must discard the aggregates and recompute.
    pub fn apply_reindex_delta(
        &mut self,
        old: &HashMap<String, u32>,
        new: &HashMap<String, u32>,
    ) -> bool {
        for (term, &otf) in old {
            let ntf = new.get(term).copied().unwrap_or(0);
            if !self.shift_term(term, otf, ntf) {
                return false;
            }
        }
        for (term, &ntf) in new {
            if !old.contains_key(term) && !self.shift_term(term, 0, ntf) {
                return false;
            }
        }
        true
    }

    fn shift_term(&mut self, term: &str, old_tf: u32, new_tf: u32) -> bool {
        if old_tf == new_tf {
            return true;
        }
        let slot = self.terms.entry(term.to_owned()).or_insert((0, 0));
        let shifted = slot
            .0
            .checked_add(new_tf as u64)
            .and_then(|v| v.checked_sub(old_tf as u64));
        let total = self
            .token_total
            .checked_add(new_tf as u64)
            .and_then(|v| v.checked_sub(old_tf as u64));
        let df = match (old_tf > 0, new_tf > 0) {
            (false, true) => slot.1.checked_add(1),
            (true, false) => slot.1.checked_sub(1),
            _ => Some(slot.1),
        };
        match (shifted, total, df) {
            (Some(tf), Some(tok), Some(df)) => {
                slot.0 = tf;
                slot.1 = df;
                self.token_total = tok;
                // A fresh aggregation has no zero entries; keep parity.
                if tf == 0 && df == 0 {
                    self.terms.remove(term);
                }
                true
            }
            _ => false,
        }
    }
}

/// Sample per config: cloud aggregation runs over the top-K scored docs
/// when `sample_top_k` is set, else the whole result list.
fn sample<'a>(results: &'a [DocId], config: &CloudConfig) -> &'a [DocId] {
    match config.sample_top_k {
        Some(k) if k < results.len() => &results[..k],
        _ => results,
    }
}

/// Aggregate term frequencies across `docs` from the forward index,
/// sharding large sets across worker threads.
fn aggregate<'a>(index: &'a InvertedIndex, docs: &[DocId], config: &CloudConfig) -> TermAgg<'a> {
    let shards = if config.parallelism > 1 && docs.len() >= PARALLEL_CLOUD_MIN_DOCS {
        config.parallelism
    } else {
        1
    };
    if shards <= 1 {
        return aggregate_terms(index, docs);
    }
    let parts: Vec<TermAgg> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..shards)
            .map(|p| {
                let lo = p * docs.len() / shards;
                let hi = (p + 1) * docs.len() / shards;
                let chunk = &docs[lo..hi];
                s.spawn(move |_| aggregate_terms(index, chunk))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cloud shard panicked"))
            .collect()
    })
    .expect("cloud shard scope");
    if cr_obs::enabled() {
        cloud_shard_counter().add(shards as u64);
    }
    let mut it = parts.into_iter();
    let (mut agg, mut total) = it.next().expect("at least one shard");
    for (part, part_total) in it {
        total += part_total;
        for (term, (tf, df)) in part {
            let slot = agg.entry(term).or_insert((0, 0));
            slot.0 += tf;
            slot.1 += df;
        }
    }
    (agg, total)
}

/// The aggregation half of [`compute_cloud`], with owned terms — the
/// cacheable/maintainable intermediate.
pub fn aggregate_cloud(index: &InvertedIndex, results: &[DocId], config: &CloudConfig) -> CloudAgg {
    let docs = sample(results, config);
    let (agg, token_total) = aggregate(index, docs, config);
    CloudAgg {
        terms: agg.into_iter().map(|(t, v)| (t.to_owned(), v)).collect(),
        token_total,
        docs_aggregated: docs.len(),
    }
}

/// The scoring half of [`compute_cloud`]: rank a (possibly cached and
/// delta-maintained) aggregate against the *current* corpus statistics.
/// `compute_cloud(ix, r, x, c) == cloud_from_agg(ix, &aggregate_cloud(ix, r, c), x, c)`
/// bit for bit.
pub fn cloud_from_agg(
    index: &InvertedIndex,
    agg: &CloudAgg,
    exclude_terms: &[String],
    config: &CloudConfig,
) -> DataCloud {
    score_with_fallback(
        index,
        &agg.terms,
        agg.token_total,
        agg.docs_aggregated,
        exclude_terms,
        config,
    )
}

/// Compute a data cloud over `results` (doc ids ordered by search score).
///
/// `exclude_terms` removes the query's own terms — a cloud for the query
/// "american" should suggest *refinements*, not echo "american" back.
pub fn compute_cloud(
    index: &InvertedIndex,
    results: &[DocId],
    exclude_terms: &[String],
    config: &CloudConfig,
) -> DataCloud {
    let docs = sample(results, config);
    if docs.is_empty() {
        return DataCloud::default();
    }
    let (agg, result_token_total) = aggregate(index, docs, config);
    score_with_fallback(
        index,
        &agg,
        result_token_total,
        docs.len(),
        exclude_terms,
        config,
    )
}

/// Score with the configured scorer; on a degenerate LLR outcome (the
/// result set ≈ the whole corpus, so nothing is *over*represented and the
/// cloud comes out empty) fall back to TF-IDF, which still ranks the
/// set's frequent-but-rare terms. Aggregation is scorer-independent, so
/// the fallback reuses the aggregates.
fn score_with_fallback<K: std::borrow::Borrow<str> + Eq + std::hash::Hash>(
    index: &InvertedIndex,
    agg: &HashMap<K, (u64, usize)>,
    result_token_total: u64,
    docs_aggregated: usize,
    exclude_terms: &[String],
    config: &CloudConfig,
) -> DataCloud {
    let cloud = score_cloud(
        index,
        agg,
        result_token_total,
        docs_aggregated,
        exclude_terms,
        config,
    );
    if cloud.terms.is_empty() && docs_aggregated > 0 && config.scorer == TermScorer::LogLikelihood {
        return score_cloud(
            index,
            agg,
            result_token_total,
            docs_aggregated,
            exclude_terms,
            &CloudConfig {
                scorer: TermScorer::TfIdf,
                ..config.clone()
            },
        );
    }
    cloud
}

fn score_cloud<K: std::borrow::Borrow<str> + Eq + std::hash::Hash>(
    index: &InvertedIndex,
    agg: &HashMap<K, (u64, usize)>,
    result_token_total: u64,
    docs_aggregated: usize,
    exclude_terms: &[String],
    config: &CloudConfig,
) -> DataCloud {
    if docs_aggregated == 0 {
        return DataCloud::default();
    }
    let corpus_docs = index.num_docs().max(1);
    let corpus_token_total = (index.corpus_tokens() as f64).max(result_token_total as f64 + 1.0);

    let excluded: Vec<&str> = exclude_terms.iter().map(String::as_str).collect();
    let mut scored: Vec<CloudTerm> = Vec::with_capacity(agg.len() / 4);
    for (term, (tf, df)) in agg {
        let term: &str = term.borrow();
        if *df < config.min_doc_freq {
            continue;
        }
        if excluded.contains(&term) || term.split(' ').all(|part| excluded.contains(&part)) {
            continue;
        }
        let corpus_df = index.doc_freq(term);
        let score = match config.scorer {
            TermScorer::TfIdf => *tf as f64 * idf(corpus_docs, corpus_df),
            TermScorer::LogLikelihood => {
                // Exact 2×2 contingency: term occurrences inside vs
                // outside the result set.
                let k1 = *tf as f64;
                let n1 = result_token_total as f64;
                let k2 = (index.corpus_tf(term) as f64 - k1).max(0.0) + 0.5;
                let n2 = (corpus_token_total - n1).max(1.0);
                log_likelihood_ratio(k1, n1, k2, n2)
            }
        };
        let mut score = score;
        if let Some((w1, w2)) = term.split_once(' ') {
            let pair_tf = index.corpus_tf(term) as f64;
            let min_part = index.corpus_tf(w1).min(index.corpus_tf(w2)).max(1) as f64;
            if pair_tf / min_part < config.bigram_cohesion {
                continue; // incidental adjacency, not a phrase
            }
            score *= config.bigram_boost;
        }
        if score <= 0.0 {
            continue;
        }
        scored.push(CloudTerm {
            term: (*term).to_owned(),
            display: index.display_form(term).to_owned(),
            score,
            result_doc_freq: *df,
            result_tf: *tf,
            bucket: 1,
        });
    }

    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.term.cmp(&b.term))
    });

    if config.collapse_subterms {
        collapse_subterms(&mut scored);
    }
    // Reserve slots for the best bigrams before truncating.
    if scored.len() > config.max_terms && config.min_bigrams > 0 {
        let in_window = scored[..config.max_terms]
            .iter()
            .filter(|t| t.term.contains(' '))
            .count();
        if in_window < config.min_bigrams {
            let mut promote: Vec<CloudTerm> = scored[config.max_terms..]
                .iter()
                .filter(|t| t.term.contains(' '))
                .take(config.min_bigrams - in_window)
                .cloned()
                .collect();
            if !promote.is_empty() {
                // Drop the lowest-scored unigrams from the window.
                let mut kept = Vec::with_capacity(config.max_terms);
                let drop_n = promote.len();
                let mut unigrams_to_drop = drop_n;
                for t in scored[..config.max_terms].iter().rev() {
                    if unigrams_to_drop > 0 && !t.term.contains(' ') {
                        unigrams_to_drop -= 1;
                    } else {
                        kept.push(t.clone());
                    }
                }
                kept.reverse();
                kept.append(&mut promote);
                kept.sort_by(|a, b| {
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                scored = kept;
            }
        }
    }
    scored.truncate(config.max_terms);
    assign_buckets(&mut scored);
    DataCloud {
        terms: scored,
        docs_aggregated,
    }
}

/// Tally term → (tf, df) plus the total token count over `docs` from the
/// forward index.
fn aggregate_terms<'a>(index: &'a InvertedIndex, docs: &[DocId]) -> TermAgg<'a> {
    let mut agg: HashMap<&str, (u64, usize)> = HashMap::new();
    let mut token_total: u64 = 0;
    for &d in docs {
        if let Some(entry) = index.doc(d) {
            for (term, tf) in &entry.term_freqs {
                let slot = agg.entry(term.as_str()).or_insert((0, 0));
                slot.0 += *tf as u64;
                slot.1 += 1;
                token_total += *tf as u64;
            }
        }
    }
    (agg, token_total)
}

/// Dunning's G² statistic for a 2×2 contingency of term occurrence inside
/// vs. outside the result set.
pub fn log_likelihood_ratio(k1: f64, n1: f64, k2: f64, n2: f64) -> f64 {
    if k1 <= 0.0 || n1 <= 0.0 || n2 <= 0.0 {
        return 0.0;
    }
    let p1 = k1 / n1;
    let p2 = k2 / n2;
    let p = (k1 + k2) / (n1 + n2);
    let ll = |k: f64, q: f64| {
        if k <= 0.0 || q <= 0.0 {
            0.0
        } else {
            k * q.ln()
        }
    };
    let num = ll(k1, p1) + ll(n1 - k1, 1.0 - p1) + ll(k2, p2) + ll(n2 - k2, 1.0 - p2);
    let den = ll(k1, p) + ll(n1 - k1, 1.0 - p) + ll(k2, p) + ll(n2 - k2, 1.0 - p);
    let g2 = 2.0 * (num - den);
    // One-sided: only overrepresentation in the result set counts.
    if p1 > p2 {
        g2.max(0.0)
    } else {
        0.0
    }
}

/// Suppress a unigram when a retained higher-scoring bigram contains it
/// and accounts for most (≥80%) of its occurrences.
fn collapse_subterms(scored: &mut Vec<CloudTerm>) {
    let bigrams: Vec<(String, u64, usize)> = scored
        .iter()
        .filter(|t| t.term.contains(' '))
        .map(|t| (t.term.clone(), t.result_tf, t.result_doc_freq))
        .collect();
    if bigrams.is_empty() {
        return;
    }
    let mut rank: HashMap<&str, usize> = HashMap::new();
    for (i, t) in scored.iter().enumerate() {
        rank.insert(t.term.as_str(), i);
    }
    let mut dead = vec![false; scored.len()];
    for (bigram, btf, _) in &bigrams {
        let brank = rank[bigram.as_str()];
        for part in bigram.split(' ') {
            if let Some(&pi) = rank.get(part) {
                let parent = &scored[pi];
                if brank < pi && *btf as f64 >= 0.8 * parent.result_tf as f64 {
                    dead[pi] = true;
                }
            }
        }
    }
    let mut i = 0;
    scored.retain(|_| {
        let keep = !dead[i];
        i += 1;
        keep
    });
}

/// Map scores to display buckets 1..=5 on a log scale.
fn assign_buckets(terms: &mut [CloudTerm]) {
    if terms.is_empty() {
        return;
    }
    let max = terms.iter().map(|t| t.score).fold(f64::MIN, f64::max);
    let min = terms.iter().map(|t| t.score).fold(f64::MAX, f64::min);
    let span = (max.ln() - min.ln()).max(1e-9);
    for t in terms {
        let rel = (t.score.ln() - min.ln()) / span;
        t.bucket = 1 + (rel * 4.0).round() as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::index::FieldSpec;

    fn build_corpus() -> (InvertedIndex, Vec<DocId>) {
        let mut ix = InvertedIndex::new(
            Analyzer::new(),
            vec![FieldSpec {
                name: "body".into(),
                weight: 1.0,
            }],
        );
        let b = ix.field_id("body").unwrap();
        let mut american = Vec::new();
        // 10 "american" docs that also discuss politics.
        for i in 0..10 {
            let text = format!("american politics and government debate {i} federal policy");
            american.push(ix.add_document(&[(b, text.as_str())]));
        }
        // 40 background docs about databases.
        for i in 0..40 {
            let text = format!("database systems storage query optimization {i}");
            ix.add_document(&[(b, text.as_str())]);
        }
        (ix, american)
    }

    #[test]
    fn cloud_surfaces_result_characteristic_terms() {
        let (ix, results) = build_corpus();
        let cloud = compute_cloud(&ix, &results, &["american".into()], &CloudConfig::default());
        let terms = cloud.term_strings();
        assert!(
            terms.iter().any(|t| t.contains("politic")),
            "expected politics in cloud, got {terms:?}"
        );
        // Background-corpus terms must not appear.
        assert!(!terms.iter().any(|t| t.contains("database")), "{terms:?}");
        // The query term itself is excluded.
        assert!(!terms.contains(&"american"), "{terms:?}");
    }

    #[test]
    fn excluded_bigrams_containing_query_terms() {
        let (ix, results) = build_corpus();
        let cloud = compute_cloud(
            &ix,
            &results,
            &["american".into(), "politic".into()],
            &CloudConfig::default(),
        );
        assert!(!cloud.term_strings().contains(&"american politic"));
    }

    #[test]
    fn sampling_reduces_docs_aggregated() {
        let (ix, results) = build_corpus();
        let cfg = CloudConfig {
            sample_top_k: Some(3),
            min_doc_freq: 1,
            ..CloudConfig::default()
        };
        let cloud = compute_cloud(&ix, &results, &[], &cfg);
        assert_eq!(cloud.docs_aggregated, 3);
    }

    #[test]
    fn sampled_cloud_approximates_exact() {
        let (ix, results) = build_corpus();
        let exact = compute_cloud(&ix, &results, &[], &CloudConfig::default());
        let approx = compute_cloud(
            &ix,
            &results,
            &[],
            &CloudConfig {
                sample_top_k: Some(5),
                ..CloudConfig::default()
            },
        );
        // Top-3 overlap should be substantial on this homogeneous corpus.
        let top_exact: Vec<&str> = exact.term_strings().into_iter().take(3).collect();
        let overlap = approx
            .term_strings()
            .iter()
            .take(5)
            .filter(|t| top_exact.contains(t))
            .count();
        assert!(
            overlap >= 2,
            "exact {top_exact:?} vs approx {:?}",
            approx.term_strings()
        );
    }

    #[test]
    fn empty_results_empty_cloud() {
        let (ix, _) = build_corpus();
        let cloud = compute_cloud(&ix, &[], &[], &CloudConfig::default());
        assert!(cloud.terms.is_empty());
        assert_eq!(cloud.docs_aggregated, 0);
    }

    #[test]
    fn buckets_span_one_to_five() {
        let (ix, results) = build_corpus();
        let cloud = compute_cloud(
            &ix,
            &results,
            &[],
            &CloudConfig {
                min_doc_freq: 1,
                ..CloudConfig::default()
            },
        );
        assert!(!cloud.terms.is_empty());
        assert!(cloud.terms.iter().all(|t| (1..=5).contains(&t.bucket)));
        // Highest-scored term gets the largest bucket present.
        let max_bucket = cloud.terms.iter().map(|t| t.bucket).max().unwrap();
        assert_eq!(cloud.terms[0].bucket, max_bucket);
    }

    #[test]
    fn llr_properties() {
        // Overrepresented term scores positive.
        assert!(log_likelihood_ratio(10.0, 100.0, 10.0, 10_000.0) > 0.0);
        // Underrepresented term clamps to zero.
        assert_eq!(log_likelihood_ratio(1.0, 1000.0, 500.0, 1000.0), 0.0);
        // Equal rates ≈ 0.
        assert!(log_likelihood_ratio(10.0, 100.0, 100.0, 1000.0) < 1e-9);
        // Degenerate inputs are safe.
        assert_eq!(log_likelihood_ratio(0.0, 0.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn tfidf_scorer_runs() {
        let (ix, results) = build_corpus();
        let cloud = compute_cloud(
            &ix,
            &results,
            &[],
            &CloudConfig {
                scorer: TermScorer::TfIdf,
                ..CloudConfig::default()
            },
        );
        assert!(!cloud.terms.is_empty());
    }

    #[test]
    fn sharded_aggregation_matches_serial() {
        let mut ix = InvertedIndex::new(
            Analyzer::new(),
            vec![FieldSpec {
                name: "body".into(),
                weight: 1.0,
            }],
        );
        let b = ix.field_id("body").unwrap();
        let mut results = Vec::new();
        for i in 0..400 {
            let text = format!(
                "american politics seminar {} federal policy topic{}",
                i,
                i % 7
            );
            results.push(ix.add_document(&[(b, text.as_str())]));
        }
        let serial = compute_cloud(&ix, &results, &[], &CloudConfig::default());
        let sharded = compute_cloud(
            &ix,
            &results,
            &[],
            &CloudConfig {
                parallelism: 4,
                ..CloudConfig::default()
            },
        );
        assert_eq!(serial.docs_aggregated, sharded.docs_aggregated);
        assert_eq!(serial.terms.len(), sharded.terms.len());
        for (a, b) in serial.terms.iter().zip(&sharded.terms) {
            assert_eq!(a.term, b.term);
            assert_eq!(a.result_tf, b.result_tf);
            assert_eq!(a.result_doc_freq, b.result_doc_freq);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn aggregate_then_score_equals_compute_cloud() {
        let (ix, results) = build_corpus();
        let cfg = CloudConfig {
            min_doc_freq: 1,
            ..CloudConfig::default()
        };
        let exclude = vec!["american".to_owned()];
        let direct = compute_cloud(&ix, &results, &exclude, &cfg);
        let agg = aggregate_cloud(&ix, &results, &cfg);
        let split = cloud_from_agg(&ix, &agg, &exclude, &cfg);
        assert_eq!(direct.docs_aggregated, split.docs_aggregated);
        assert_eq!(direct.terms.len(), split.terms.len());
        for (a, b) in direct.terms.iter().zip(&split.terms) {
            assert_eq!(a.term, b.term);
            assert_eq!(a.result_tf, b.result_tf);
            assert_eq!(a.result_doc_freq, b.result_doc_freq);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn reindex_delta_matches_recomputed_aggregates() {
        let (mut ix, mut results) = build_corpus();
        let cfg = CloudConfig::default();
        let mut maintained = aggregate_cloud(&ix, &results, &cfg);
        // Reindex the first result doc with changed text (remove + re-add,
        // as the entity layer does): some terms vanish, some appear, some
        // change frequency.
        let victim = results[0];
        let old_tf = ix.doc(victim).unwrap().term_freqs.clone();
        ix.remove_document(victim);
        let b = ix.field_id("body").unwrap();
        let fresh_doc = ix.add_document(&[(b, "american climate debate debate seminar")]);
        let new_tf = ix.doc(fresh_doc).unwrap().term_freqs.clone();
        assert!(maintained.apply_reindex_delta(&old_tf, &new_tf));
        results[0] = fresh_doc;
        let recomputed = aggregate_cloud(&ix, &results, &cfg);
        assert_eq!(maintained, recomputed);
        // And scoring the maintained aggregates equals a cold cloud.
        let cold = compute_cloud(&ix, &results, &[], &cfg);
        let warm = cloud_from_agg(&ix, &maintained, &[], &cfg);
        assert_eq!(cold.terms.len(), warm.terms.len());
        for (a, w) in cold.terms.iter().zip(&warm.terms) {
            assert_eq!(a.term, w.term);
            assert_eq!(a.score.to_bits(), w.score.to_bits());
        }
    }

    #[test]
    fn reindex_delta_underflow_reports_unmaintainable() {
        let mut agg = CloudAgg::default();
        let mut old = HashMap::new();
        old.insert("ghost".to_owned(), 3u32);
        let new = HashMap::new();
        // The aggregates never saw "ghost": subtracting must fail loudly
        // rather than wrap.
        assert!(!agg.clone().apply_reindex_delta(&old, &new));
        // Consistent shifts still work on the same starting point.
        old.clear();
        let mut added = HashMap::new();
        added.insert("new term".to_owned(), 2u32);
        assert!(agg.apply_reindex_delta(&old, &added));
        assert_eq!(agg.terms.get("new term"), Some(&(2, 1)));
        assert_eq!(agg.token_total, 2);
    }

    #[test]
    fn render_shows_bars() {
        let (ix, results) = build_corpus();
        let cloud = compute_cloud(&ix, &results, &[], &CloudConfig::default());
        let text = cloud.render();
        assert!(text.contains('█'));
    }
}
