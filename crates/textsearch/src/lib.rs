//! # cr-textsearch — entity search and Data Clouds
//!
//! Implements §3.1 of *Social Systems: Can We Do More Than Just Poke
//! Friends?* (CIDR 2009): keyword search over **entities that span multiple
//! relations**, and **data clouds** — the most significant terms in the
//! current result set, used for iterative refinement.
//!
//! Components:
//!
//! * [`analysis`] — tokenizer, stopwords, a light stemmer;
//! * [`index`] — an inverted index with per-field postings (title,
//!   description, comments, ... with different weights) plus a forward
//!   index of per-document term frequencies (the cloud's raw material);
//! * [`score`] — BM25F-style ranking, answering the paper's question "if we
//!   search for *Java*, should a course that mentions Java in its title
//!   score the same as one that mentions it in student comments?" (no — the
//!   title field carries a higher weight);
//! * [`entity`] — assembles *entity documents* from several relations of a
//!   [`cr_relation`] database (a course entity includes its title,
//!   description, instructor names and every student comment);
//! * [`cloud`] — data-cloud term scoring (log-likelihood ratio against the
//!   background corpus, or TF-IDF), unigrams + bigrams ("Latin American"),
//!   exact and sampled variants;
//! * [`engine`] — the search-refine loop of Figures 3 and 4.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod cloud;
pub mod engine;
pub mod entity;
pub mod highlight;
pub mod index;
pub mod score;

pub use analysis::Analyzer;
pub use cloud::{CloudConfig, CloudTerm, DataCloud, TermScorer};
pub use engine::{SearchEngine, SearchHit, SearchResults};
pub use entity::{EntitySpec, FieldSource};
pub use highlight::{snippet, Snippet};
pub use index::{DocId, FieldId, InvertedIndex};
